//! A community "What's New" service: fixed collections (§8.2) plus
//! server-side tracking (§8.3).
//!
//! Run with: `cargo run -p aide --example whats_new_service`
//!
//! A departmental AIDE server archives a fixed set of documentation pages
//! automatically as they change, publishes a community What's New page,
//! and centrally tracks a Virtual-Library hub so that one poll serves
//! every interested user.

use aide::fixed::FixedCollection;
use aide::tracking::ServerTracker;
use aide_rcs::repo::MemRepository;
use aide_simweb::net::Web;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 12, 1, 0, 0, 0));
    let web = Web::new(clock.clone());

    // The documentation site.
    web.set_page(
        "http://docs.att.com/guide.html",
        "<HTML><H1>User Guide</H1><P>Version 1.0 of the guide.</HTML>",
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://docs.att.com/faq.html",
        "<HTML><H1>FAQ</H1><P>Ten questions answered.</HTML>",
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://docs.att.com/release.html",
        "<HTML><H1>Releases</H1><P>Current release is 2.3.</HTML>",
        clock.now(),
    )
    .unwrap();

    // A Virtual-Library-style hub elsewhere.
    web.set_page(
        "http://vlib.org/networking.html",
        r#"<HTML><H1>VL: Networking</H1><UL>
           <LI><A HREF="http://site-a.org/rfc-index.html">RFC index</A>
           <LI><A HREF="http://site-b.org/tools.html">Tools</A></UL></HTML>"#,
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://site-a.org/rfc-index.html",
        "<HTML>RFCs through 1850.</HTML>",
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://site-b.org/tools.html",
        "<HTML>tcpdump, traceroute.</HTML>",
        clock.now(),
    )
    .unwrap();

    let snapshot = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock.clone(),
        128,
        Duration::hours(8),
    ));

    // Fixed collection over the docs.
    let docs = FixedCollection::new("AT&T Documentation", web.clone(), snapshot.clone());
    docs.add("User Guide", "http://docs.att.com/guide.html");
    docs.add("FAQ", "http://docs.att.com/faq.html");
    docs.add("Release Notes", "http://docs.att.com/release.html");

    // Server tracker over the hub, for two users.
    let tracker = ServerTracker::new(web.clone(), snapshot.clone());
    let alice = UserId::new("alice@att.com");
    let bob = UserId::new("bob@att.com");
    let regs = tracker
        .register_hub(&alice, "http://vlib.org/networking.html", 1, false)
        .unwrap();
    for url in &regs {
        tracker.register(&bob, url);
    }
    println!("hub registration tracked {} pages", regs.len());

    // Two weeks of nightly polls with some edits along the way.
    for day in 1..=14u64 {
        clock.advance(Duration::days(1));
        if day == 3 {
            web.touch_page(
                "http://docs.att.com/release.html",
                "<HTML><H1>Releases</H1><P>Current release is 2.4!</HTML>",
                clock.now(),
            )
            .unwrap();
        }
        if day == 7 {
            web.touch_page(
                "http://docs.att.com/guide.html",
                "<HTML><H1>User Guide</H1><P>Version 1.1 of the guide. Now with an index.</HTML>",
                clock.now(),
            )
            .unwrap();
            web.touch_page(
                "http://site-a.org/rfc-index.html",
                "<HTML>RFCs through 1883 (IPv6!).</HTML>",
                clock.now(),
            )
            .unwrap();
        }
        let archived = docs.poll();
        let summary = tracker.poll_all();
        if archived > 0 || summary.changed > 0 || summary.new_archives > 0 {
            println!(
                "day {day:>2}: docs archived {archived} change(s); tracker: {} checked, {} changed, {} new",
                summary.checked, summary.changed, summary.new_archives
            );
        }
    }

    // The community What's New page.
    println!("\n===== community what's new =====");
    println!("{}", docs.render_whats_new("/cgi-bin/snapshot").unwrap());

    // Personalized server-side reports.
    for (name, user) in [("alice", &alice), ("bob", &bob)] {
        let fresh: Vec<String> = tracker
            .whats_new(user)
            .unwrap()
            .into_iter()
            .filter(|s| s.changed_for_user)
            .map(|s| s.url)
            .collect();
        println!("{name} has {} unseen page(s): {fresh:?}", fresh.len());
        if name == "alice" {
            for url in &fresh {
                tracker.mark_seen(user, url).unwrap();
            }
            println!(
                "alice catches up; unseen now: {}",
                tracker
                    .whats_new(user)
                    .unwrap()
                    .iter()
                    .filter(|s| s.changed_for_user)
                    .count()
            );
        }
    }

    let stats = snapshot.storage().unwrap();
    println!(
        "\nserver archive: {} URLs, {} revisions, {} bytes ({:.1} KB/URL)",
        stats.archives,
        stats.revisions,
        stats.bytes,
        stats.bytes_per_archive() / 1024.0
    );
}
