//! Power user: the implemented future-work features, together.
//!
//! Run with: `cargo run -p aide --example power_user`
//!
//! A user with hundreds of URLs exercises the extensions the paper
//! sketched but never built: Tapestry-style priorities over the report
//! (§7), the semantic junk filter for noisy pages (§3.1), entity
//! checksums catching an image swap behind a stable URL (§5.3), a stored
//! form tracking a POST search service (§8.4), a recursive diff over
//! a hub page (§8.3) — and, tying them together, a tracked sweep through
//! the [`AideEngine`] with its deployment-wide network-health readout.

use aide::engine::AideEngine;
use aide::entities::EntityChecker;
use aide::forms::FormRegistry;
use aide::junk::classify;
use aide::recursive::RecursiveDiffer;
use aide_htmldiff::Options as DiffOptions;
use aide_rcs::repo::MemRepository;
use aide_simweb::net::Web;
use aide_simweb::resource::Resource;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use std::sync::Arc;

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1996, 1, 15, 9, 0, 0));
    let web = Web::new(clock.clone());
    let user = UserId::new("poweruser@research.att.com");
    let snapshot = Arc::new(SnapshotService::new(
        MemRepository::new(),
        clock.clone(),
        128,
        Duration::hours(8),
    ));

    // --- §3.1: the junk filter ------------------------------------------
    web.set_resource(
        "http://stats.example/counter",
        Resource::hit_counter("<HTML><P>You are visitor {HITS} since 1995.</HTML>"),
    )
    .unwrap();
    let before = web
        .request(&aide_simweb::http::Request::get(
            "http://stats.example/counter",
        ))
        .unwrap()
        .body;
    let after = web
        .request(&aide_simweb::http::Request::get(
            "http://stats.example/counter",
        ))
        .unwrap()
        .body;
    let verdict = classify(&before, &after);
    println!(
        "junk filter: counter page change junk={} (changed words: {:?})",
        verdict.junk, verdict.changed_words
    );

    // --- §5.3: entity checksums ------------------------------------------
    web.set_page(
        "http://news.example/front.html",
        r#"<HTML><IMG SRC="/today.gif"> Front page.</HTML>"#,
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://news.example/today.gif",
        "GIF-bytes-monday",
        clock.now(),
    )
    .unwrap();
    let checker = EntityChecker::new(web.clone());
    let page_body = r#"<HTML><IMG SRC="/today.gif"> Front page.</HTML>"#;
    checker.check_entities("http://news.example/front.html", page_body);
    clock.advance(Duration::days(1));
    web.touch_page(
        "http://news.example/today.gif",
        "GIF-bytes-tuesday",
        clock.now(),
    )
    .unwrap();
    let reports = checker.check_entities("http://news.example/front.html", page_body);
    println!(
        "entity checksums: {} — {:?}",
        reports[0].url, reports[0].status
    );

    // --- §8.4: a stored form over a POST service -------------------------
    web.set_resource(
        "http://search.example/cgi-bin/find",
        Resource::Cgi {
            template: "<HTML>Results for [{INPUT}]: 12 documents.</HTML>".to_string(),
            hits: 0,
        },
    )
    .unwrap();
    let forms = FormRegistry::new(web.clone());
    forms.register(
        "mobile-search",
        "http://search.example/cgi-bin/find",
        "q=mobile+computing",
    );
    let (status, body) = forms.poll("mobile-search").unwrap();
    println!("stored form: first poll {status:?}");
    snapshot
        .remember(&user, "aide-form:mobile-search", &body)
        .unwrap();
    web.set_resource(
        "http://search.example/cgi-bin/find",
        Resource::Cgi {
            template: "<HTML>Results for [{INPUT}]: 14 documents, two new!</HTML>".to_string(),
            hits: 0,
        },
    )
    .unwrap();
    let (status, body) = forms.poll("mobile-search").unwrap();
    println!("stored form: service output now {status:?}");
    let diff = snapshot
        .diff_since_last(
            &user,
            "aide-form:mobile-search",
            &body,
            &DiffOptions::default(),
        )
        .unwrap();
    println!("stored form: diff rendered ({} -> {})", diff.from, diff.to);

    // --- §8.3: recursive diff over a hub ---------------------------------
    web.set_page(
        "http://vlib.example/os.html",
        r#"<HTML><H1>VL: Operating Systems</H1>
           <UL><LI><A HREF="/sprite.html">Sprite</A>
               <LI><A HREF="/plan9.html">Plan 9</A></UL></HTML>"#,
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://vlib.example/sprite.html",
        "<HTML><P>Sprite overview v1.</HTML>",
        clock.now(),
    )
    .unwrap();
    web.set_page(
        "http://vlib.example/plan9.html",
        "<HTML><P>Plan 9 overview v1.</HTML>",
        clock.now(),
    )
    .unwrap();
    let differ = RecursiveDiffer::new(web.clone(), snapshot.clone());
    differ
        .diff_hub(
            &user,
            "http://vlib.example/os.html",
            true,
            &DiffOptions::default(),
        )
        .unwrap();
    clock.advance(Duration::days(2));
    web.touch_page(
        "http://vlib.example/plan9.html",
        "<HTML><P>Plan 9 overview v2 — new release!</HTML>",
        clock.now(),
    )
    .unwrap();
    let sweep = differ
        .diff_hub(
            &user,
            "http://vlib.example/os.html",
            true,
            &DiffOptions::default(),
        )
        .unwrap();
    println!("recursive diff: changed pages = {:?}", sweep.changed_urls());

    // --- §7: prioritized report ------------------------------------------
    use aide_w3newer::checker::{CheckSource, RunReport, UrlReport, UrlStatus};
    use aide_w3newer::priority::{Priority, PriorityConfig};
    use aide_w3newer::report::{render_prioritized_report, ReportOptions};
    let priorities = PriorityConfig::default()
        .rule(r"http://.*\.att\.com/.*", Priority::Urgent)
        .unwrap()
        .rule(r"http://stats\..*", Priority::Suppress)
        .unwrap();
    let report = RunReport {
        entries: vec![
            UrlReport {
                url: "http://fun.example/comics.html".to_string(),
                title: "Comics".to_string(),
                status: UrlStatus::Changed {
                    modified: Some(clock.now()),
                    source: CheckSource::Head,
                },
                last_visited: None,
            },
            UrlReport {
                url: "http://www.att.com/quarterly.html".to_string(),
                title: "Quarterly results".to_string(),
                status: UrlStatus::Changed {
                    modified: Some(clock.now() - Duration::days(2)),
                    source: CheckSource::Head,
                },
                last_visited: None,
            },
            UrlReport {
                url: "http://stats.example/counter".to_string(),
                title: "Hit counter".to_string(),
                status: UrlStatus::Changed {
                    modified: None,
                    source: CheckSource::GetChecksum,
                },
                last_visited: None,
            },
        ],
        started: clock.now(),
        aborted: false,
        net: aide_w3newer::retry::RetrySnapshot::default(),
    };
    let html = render_prioritized_report(&report, &priorities, &ReportOptions::default());
    println!("\nprioritized report:\n");
    for line in html
        .lines()
        .filter(|l| l.starts_with("<H2>") || l.starts_with("<LI>") || l.starts_with("<P><SMALL>"))
    {
        println!("  {line}");
    }

    // --- §6/§7: an engine-backed sweep with network-health accounting ----
    use aide_w3newer::breaker::BreakerConfig;
    use aide_w3newer::config::ThresholdConfig;
    use aide_w3newer::retry::RetryPolicy;
    let engine = AideEngine::new(web.clone());
    engine.enable_robustness(RetryPolicy::standard(9), BreakerConfig::default());
    let browser = engine.register_user("poweruser@research.att.com", ThresholdConfig::default());
    browser.add_bookmark("VL: Operating Systems", "http://vlib.example/os.html");
    browser.add_bookmark("Front page", "http://news.example/front.html");
    let sweep = engine.run_tracker("poweruser@research.att.com").unwrap();
    let health = engine.net_health();
    println!(
        "\nengine sweep: {} URL(s) checked; net health: {} attempt(s), \
         {} retried, {} recovered, {} denied by open circuits",
        sweep.entries.len(),
        health.retries.attempts,
        health.retries.retries,
        health.retries.recovered,
        health.breaker.denials
    );
}
