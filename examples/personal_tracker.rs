//! Personal tracker: a month of daily w3newer runs over the Table 1 world.
//!
//! Run with: `cargo run -p aide --example personal_tracker`
//!
//! Reproduces the daily-crontab usage of §3/§6: the Table 1 hotlist and
//! threshold configuration, pages evolving on their own schedules, the
//! user occasionally reading pages, and a printed end-of-month report —
//! plus the polling-traffic statistics that motivate the thresholds and
//! the deployment-wide network-health accounting.

use aide::engine::AideEngine;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::breaker::BreakerConfig;
use aide_w3newer::config::ThresholdConfig;
use aide_w3newer::retry::RetryPolicy;
use aide_workloads::evolve::tick_all;
use aide_workloads::rng::Rng;
use aide_workloads::sites::table1_scenario;

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 7, 30, 0));
    let web = Web::new(clock.clone());
    let mut scenario = table1_scenario(&web, 42);

    let engine = AideEngine::new(web.clone()).with_proxy(Duration::hours(6));
    // A crontab tracker should ride out flaky mornings: retries with
    // backoff plus a shared circuit breaker, accounted in the report's
    // Network-health footer and in `net_health()` below.
    engine.enable_robustness(RetryPolicy::standard(7), BreakerConfig::default());
    let user = "douglis@research.att.com";
    let browser = engine.register_user(user, ThresholdConfig::table1());
    for mark in &scenario.hotlist {
        browser.add_bookmark(&mark.title, &mark.url);
    }

    let mut rng = Rng::new(7);
    println!("day | changed | unchanged | skipped | errors");
    println!("----+---------+-----------+---------+-------");
    for day in 1..=30u64 {
        clock.advance(Duration::days(1));
        tick_all(&mut scenario.pages, &web);

        let report = engine.run_tracker(user).unwrap();
        let mut changed = 0;
        let mut unchanged = 0;
        let mut skipped = 0;
        let mut errors = 0;
        for e in &report.entries {
            use aide_w3newer::checker::UrlStatus::*;
            match &e.status {
                Changed { .. } => changed += 1,
                Unchanged { .. } => unchanged += 1,
                NotChecked { .. } | RobotExcluded => skipped += 1,
                Error { .. } | Degraded { .. } => errors += 1,
            }
            // The user follows up on some changed pages by visiting them.
            if e.status.is_changed() && rng.chance(0.5) {
                let _ = browser.visit(&e.url);
            }
        }
        println!("{day:>3} | {changed:>7} | {unchanged:>9} | {skipped:>7} | {errors:>6}");
    }

    let stats = web.stats();
    println!("\n30-day network traffic with Table 1 thresholds:");
    println!("  HEAD requests: {}", stats.heads);
    println!("  GET requests:  {}", stats.gets);
    println!("  file: stats:   {} (free)", stats.file_stats);
    println!("\nFinal report:\n");
    let html = engine.tracker_report_html(user).unwrap();
    // Print just the headings and list items for terminal readability.
    for line in html.lines() {
        if line.starts_with("<H") || line.starts_with("<LI>") || line.starts_with("<P>") {
            println!("  {line}");
        }
    }

    let health = engine.net_health();
    println!("\n30-day network health:");
    println!(
        "  {} fetch attempt(s), {} retried, {} recovered, {} exhausted",
        health.retries.attempts,
        health.retries.retries,
        health.retries.recovered,
        health.retries.exhausted
    );
    println!(
        "  breaker: {} circuit(s) opened, {} request(s) denied",
        health.breaker.opened, health.breaker.denials
    );
}
