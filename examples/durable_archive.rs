//! Durable archive: the engine over the persistent `aide-store` backend.
//!
//! Run with: `cargo run -p aide --example durable_archive`
//!
//! Everything in the other examples runs over the in-memory reference
//! repository and forgets on exit. This one plugs `DiskRepository` —
//! write-ahead log, segment files, crash recovery — into the same
//! `AideEngine`, remembers a page across an edit, *drops the whole
//! engine*, reopens the store from its files, and shows the history and
//! diff still there. The §6 promise ("archive versions of interesting
//! pages, then view the differences") survives a process restart.

use aide::engine::AideEngine;
use aide_htmldiff::Options as DiffOptions;
use aide_rcs::repo::Repository;
use aide_simweb::net::Web;
use aide_store::{spawn_compactor, DiskRepository, StoreOptions};
use aide_util::time::{Clock, Duration, Timestamp};
use aide_util::vfs::Vfs;
use aide_w3newer::config::ThresholdConfig;
use std::sync::Arc;

const URL: &str = "http://www.example.org/status.html";

fn open_store(dir: &std::path::Path) -> Arc<DiskRepository> {
    let vfs: Arc<dyn Vfs> = Arc::new(aide_store::RealVfs::new(dir));
    Arc::new(DiskRepository::open(vfs, "", StoreOptions::default()).expect("open store"))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("aide-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    println!("archive directory: {}", dir.display());

    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0));
    let web = Web::new(clock.clone());
    web.set_page(
        URL,
        "<HTML><TITLE>Project Status</TITLE>\
         <P>The parser is finished. Release is planned for October.</HTML>",
        clock.now(),
    )
    .unwrap();

    // First process lifetime: a durable repository behind the engine,
    // with the background compactor keeping segments tidy.
    {
        let repo = open_store(&dir);
        let _compactor = spawn_compactor(&repo);
        let engine = AideEngine::with_repository(web.clone(), repo);
        engine.register_user("you@example.org", ThresholdConfig::default());

        let first = engine.remember("you@example.org", URL).unwrap();
        println!("remembered revision {}", first.rev);

        clock.advance(Duration::days(14));
        web.touch_page(
            URL,
            "<HTML><TITLE>Project Status</TITLE>\
             <P>The parser is finished. The backend is finished too! \
             Release is planned for October.</HTML>",
            clock.now(),
        )
        .unwrap();
        let second = engine.remember("you@example.org", URL).unwrap();
        println!("remembered revision {}", second.rev);
    } // engine, compactor, repository: all dropped. Only the files remain.

    // Second process lifetime: recover the store from its files.
    let repo = open_store(&dir);
    let stats = repo.stats().unwrap();
    println!(
        "\nreopened: {} archive(s), {} revision(s), {} bytes of `,v` text",
        stats.archives, stats.revisions, stats.bytes
    );

    let engine = AideEngine::with_repository(web, repo);
    engine.register_user("you@example.org", ThresholdConfig::default());
    println!("\nhistory of {URL}:");
    for (meta, seen) in engine.history("you@example.org", URL).unwrap() {
        println!(
            "  rev {} at {}{}",
            meta.id,
            meta.date,
            if seen { "  (seen)" } else { "" }
        );
    }

    // Per-user "last seen" state lives with the service, not the
    // archive; what the store recovers is every *version*. Diff them.
    use aide_rcs::archive::RevId;
    let diff = engine
        .diff_versions(URL, RevId(1), RevId(2), &DiffOptions::default())
        .expect("diff against the recovered archive");
    assert!(diff.html.contains("finished too"), "the addition survives");
    println!(
        "\nHtmlDiff against the recovered archive renders {} bytes ({} -> {}) ✔",
        diff.html.len(),
        diff.from,
        diff.to
    );

    let _ = std::fs::remove_dir_all(&dir);
}
