//! Quickstart: track a page, remember it, see what changed.
//!
//! Run with: `cargo run -p aide --example quickstart`
//!
//! This is the paper's core loop in 40 lines: a page exists, a user
//! remembers it, the page changes, and HtmlDiff renders a merged page
//! with the deletion struck out and the addition emphasized.

use aide::engine::AideEngine;
use aide_htmldiff::Options as DiffOptions;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::config::ThresholdConfig;

fn main() {
    // A simulated 1995: one web server, one page, a virtual clock.
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 9, 29, 12, 0, 0));
    let web = Web::new(clock.clone());
    web.set_page(
        "http://www.example.org/status.html",
        "<HTML><TITLE>Project Status</TITLE>\
         <H1>Project Status</H1>\
         <P>The parser is finished. The backend is in progress. \
         Release is planned for October.</HTML>",
        clock.now(),
    )
    .expect("valid URL");

    // AIDE, with one registered user.
    let engine = AideEngine::new(web.clone());
    let browser = engine.register_user("you@example.org", ThresholdConfig::default());
    browser.add_bookmark("Project status", "http://www.example.org/status.html");

    // Remember today's version.
    let saved = engine
        .remember("you@example.org", "http://www.example.org/status.html")
        .unwrap();
    println!("remembered as revision {}", saved.rev);

    // Two weeks pass; the page is edited: one sentence replaced, one added.
    clock.advance(Duration::days(14));
    web.touch_page(
        "http://www.example.org/status.html",
        "<HTML><TITLE>Project Status</TITLE>\
         <H1>Project Status</H1>\
         <P>The parser is finished. The backend is finished too! \
         Release is planned for October. Beta binaries are available now.</HTML>",
        clock.now(),
    )
    .expect("valid URL");

    // w3newer notices.
    let report = engine.run_tracker("you@example.org").unwrap();
    println!(
        "w3newer: {} of {} pages changed",
        report.changed_count(),
        report.entries.len()
    );

    // HtmlDiff shows how.
    let diff = engine
        .diff(
            "you@example.org",
            "http://www.example.org/status.html",
            &DiffOptions::default(),
        )
        .unwrap();
    println!(
        "\n===== merged page ({} -> {}) =====\n{}",
        diff.from, diff.to, diff.html
    );
}
