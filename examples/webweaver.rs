//! WebWeaver: the collaborative-editing use case of §1.
//!
//! Run with: `cargo run -p aide --example webweaver`
//!
//! "Within AT&T, a clone of WikiWikiWeb, called WebWeaver, stores its own
//! version archive and uses HtmlDiff to show users the differences from
//! earlier versions of a page." Two authors edit a shared page; each can
//! ask "what changed since *my* last edit?" — the per-user personalized
//! view the paper calls a natural extension — and a RecentChanges page
//! sorts documents by modification date.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};

fn main() {
    let clock = Clock::starting_at(Timestamp::from_ymd_hms(1996, 1, 8, 9, 0, 0));
    let wiki = SnapshotService::new(MemRepository::new(), clock.clone(), 64, Duration::hours(8));
    let alice = UserId::new("alice@research.att.com");
    let bob = UserId::new("bob@research.att.com");

    let page = "http://webweaver.att.com/wiki/DesignNotes.html";

    // Alice writes the first version.
    wiki.remember(
        &alice,
        page,
        "<HTML><H1>Design Notes</H1>\
         <P>The cache layer needs a write-back policy. \
         We agreed to use per-URL locks.</HTML>",
    )
    .unwrap();
    println!("alice created {page} as 1.1");

    // Bob appends (the common wiki pattern) and edits in place (the
    // subtle one).
    clock.advance(Duration::hours(3));
    wiki.remember(
        &bob,
        page,
        "<HTML><H1>Design Notes</H1>\
         <P>The cache layer needs a write-through policy. \
         We agreed to use per-URL locks. \
         Bob: benchmarks suggest write-through is simpler and fast enough.</HTML>",
    )
    .unwrap();
    println!("bob edited {page} -> 1.2");

    // A second page, for RecentChanges.
    clock.advance(Duration::hours(1));
    wiki.remember(
        &alice,
        "http://webweaver.att.com/wiki/MeetingMinutes.html",
        "<HTML><H1>Meeting Minutes</H1><P>Next meeting Friday.</HTML>",
    )
    .unwrap();

    // Alice asks: what changed in DesignNotes since my last edit?
    let head = wiki.head(page).unwrap().expect("archived").0;
    let mine = wiki.last_seen(&alice, page).expect("alice has history");
    let diff = wiki
        .diff_versions(page, mine, head, &DiffOptions::default())
        .unwrap();
    println!("\n===== changes since alice's last edit ({mine} -> {head}) =====");
    println!("{}", diff.html);

    // RecentChanges: all wiki pages, newest head first.
    println!("===== RecentChanges =====");
    let mut pages: Vec<(String, Timestamp)> = wiki
        .archived_urls()
        .unwrap()
        .into_iter()
        .map(|u| {
            let (_, date) = wiki.head(&u).unwrap().expect("archived");
            (u, date)
        })
        .collect();
    pages.sort_by_key(|p| std::cmp::Reverse(p.1));
    for (url, date) in pages {
        println!("  {} — {}", date.to_http_date(), url);
    }
}
