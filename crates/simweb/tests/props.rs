//! Property-based tests for the simulated Web.
//!
//! Invariants:
//! - HEAD and GET agree on status, date and length for any resource;
//! - a proxy in front of the Web never serves a body the origin never
//!   had, and serves the *current* body once its TTL has expired;
//! - request accounting equals requests issued;
//! - conditional GET answers 304 exactly when nothing changed since the
//!   supplied date.

use aide_simweb::http::{Request, Status};
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_util::time::{Clock, Duration, Timestamp};
use proptest::prelude::*;

fn body_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 <>/]{0,60}".prop_map(|s| format!("<HTML>{s}</HTML>"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn head_and_get_agree(body in body_strategy(), mod_time in 0u64..1_000_000) {
        let web = Web::new(Clock::starting_at(Timestamp(2_000_000)));
        web.set_page("http://h/p", &body, Timestamp(mod_time)).unwrap();
        let head = web.request(&Request::head("http://h/p")).unwrap();
        let get = web.request(&Request::get("http://h/p")).unwrap();
        prop_assert_eq!(head.status, get.status);
        prop_assert_eq!(head.last_modified, get.last_modified);
        prop_assert_eq!(head.content_length, get.content_length);
        prop_assert_eq!(get.body.len(), get.content_length);
        prop_assert!(head.body.is_empty());
    }

    #[test]
    fn proxy_serves_only_real_bodies(
        bodies in proptest::collection::vec(body_strategy(), 1..6),
        ttl_hours in 0u64..48,
        fetch_offsets in proptest::collection::vec(0u64..72, 1..10),
    ) {
        let clock = Clock::starting_at(Timestamp(10_000_000));
        let web = Web::new(clock.clone());
        web.set_page("http://h/p", &bodies[0], clock.now()).unwrap();
        let proxy = ProxyCache::new(web.clone(), Duration::hours(ttl_hours));
        let mut published = vec![bodies[0].clone()];
        let mut version = 0usize;
        for off in fetch_offsets {
            clock.advance(Duration::hours(off));
            // Sometimes the page advances to its next version.
            if version + 1 < bodies.len() && off % 3 == 0 {
                version += 1;
                web.touch_page("http://h/p", &bodies[version], clock.now()).unwrap();
                published.push(bodies[version].clone());
            }
            let resp = proxy.get("http://h/p").unwrap();
            prop_assert!(
                published.contains(&resp.body),
                "proxy invented a body: {:?}",
                resp.body
            );
        }
    }

    #[test]
    fn proxy_is_fresh_after_ttl(old in body_strategy(), new in body_strategy()) {
        prop_assume!(old != new);
        let clock = Clock::starting_at(Timestamp(10_000_000));
        let web = Web::new(clock.clone());
        web.set_page("http://h/p", &old, clock.now()).unwrap();
        let proxy = ProxyCache::new(web.clone(), Duration::hours(2));
        proxy.get("http://h/p").unwrap();
        clock.advance(Duration::hours(1));
        web.touch_page("http://h/p", &new, clock.now()).unwrap();
        // Past the TTL, the proxy must serve the new body.
        clock.advance(Duration::hours(2));
        let resp = proxy.get("http://h/p").unwrap();
        prop_assert_eq!(resp.body, new);
    }

    #[test]
    fn accounting_matches_requests(heads in 0usize..10, gets in 0usize..10) {
        let web = Web::new(Clock::new());
        web.set_page("http://h/p", "x", Timestamp(1)).unwrap();
        for _ in 0..heads {
            web.request(&Request::head("http://h/p")).unwrap();
        }
        for _ in 0..gets {
            web.request(&Request::get("http://h/p")).unwrap();
        }
        let s = web.stats();
        prop_assert_eq!(s.heads as usize, heads);
        prop_assert_eq!(s.gets as usize, gets);
        prop_assert_eq!(s.requests as usize, heads + gets);
    }

    #[test]
    fn conditional_get_is_consistent(mod_time in 0u64..1000, since in 0u64..1000) {
        let web = Web::new(Clock::starting_at(Timestamp(5000)));
        web.set_page("http://h/p", "body", Timestamp(mod_time)).unwrap();
        let resp = web
            .request(&Request::get("http://h/p").if_modified_since(Timestamp(since)))
            .unwrap();
        if mod_time <= since {
            prop_assert_eq!(resp.status, Status::NotModified);
            prop_assert!(resp.body.is_empty());
        } else {
            prop_assert_eq!(resp.status, Status::Ok);
            prop_assert_eq!(resp.body.as_str(), "body");
        }
    }
}
