//! Property-based tests for the shared HTTP/1.x wire module.
//!
//! Invariants:
//! - the parser never panics, whatever bytes arrive;
//! - a serialized well-formed request parses back to itself;
//! - feeding bytes one at a time yields exactly the same request as one
//!   big push (the incremental parser has no chunking-dependent state);
//! - every parse error maps to a concrete 4xx/5xx status;
//! - responses always frame their body with a correct Content-Length
//!   (except 304, which must not carry one).

use aide_simweb::wire::{HttpVersion, Limits, RequestParser, WireRequest, WireResponse};
use proptest::prelude::*;

fn token_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z!#$%&'*+.^_`|~-]{1,12}"
}

fn target_strategy() -> impl Strategy<Value = String> {
    "/[a-zA-Z0-9/?=&._%-]{0,40}"
}

fn header_strategy() -> impl Strategy<Value = (String, String)> {
    (token_strategy(), "[a-zA-Z0-9 ,;=/_.-]{0,30}")
}

/// A well-formed request whose serialization the parser must accept.
fn build_request(
    method: &str,
    target: &str,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
) -> WireRequest {
    let mut headers: Vec<(String, String)> = headers
        .into_iter()
        // Values must survive the parser's trim to round-trip, and a
        // random name colliding with Content-Length would break framing.
        .filter(|(n, _)| !n.eq_ignore_ascii_case("content-length"))
        .map(|(n, v)| (n, v.trim().to_string()))
        .collect();
    if !body.is_empty() {
        headers.push(("Content-Length".to_string(), body.len().to_string()));
    }
    WireRequest {
        method: method.to_string(),
        target: target.to_string(),
        version: HttpVersion::H11,
        headers,
        body,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut parser = RequestParser::new();
        // Either outcome is fine; panicking or looping is not.
        for chunk in bytes.chunks(97) {
            parser.push(chunk);
            if parser.take_request().is_err() {
                return Ok(());
            }
        }
    }

    #[test]
    fn serialize_then_parse_roundtrips(
        method in token_strategy(),
        target in target_strategy(),
        headers in proptest::collection::vec(header_strategy(), 0..6),
        body in proptest::collection::vec(any::<u8>(), 0..50),
    ) {
        let req = build_request(&method, &target, headers, body);
        let wire = req.serialize();
        let mut parser = RequestParser::new();
        parser.push(&wire);
        let parsed = parser.take_request().unwrap().expect("complete request");
        prop_assert_eq!(&parsed.method, &req.method);
        prop_assert_eq!(&parsed.target, &req.target);
        prop_assert_eq!(&parsed.body, &req.body);
        for (name, value) in &req.headers {
            prop_assert_eq!(parsed.header(name), Some(value.as_str()));
        }
        prop_assert_eq!(parser.buffered(), 0, "nothing left over");
    }

    #[test]
    fn incremental_equals_oneshot(
        target in target_strategy(),
        headers in proptest::collection::vec(header_strategy(), 0..5),
        body in proptest::collection::vec(any::<u8>(), 0..40),
        chunk in 1usize..7,
    ) {
        let wire = build_request("GET", &target, headers, body).serialize();

        let mut oneshot = RequestParser::new();
        oneshot.push(&wire);
        let a = oneshot.take_request().unwrap().expect("oneshot complete");

        let mut dribble = RequestParser::new();
        let mut b = None;
        for piece in wire.chunks(chunk) {
            dribble.push(piece);
        }
        if let Some(req) = dribble.take_request().unwrap() {
            b = Some(req);
        }
        let b = b.expect("dribble complete");

        prop_assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_carry_a_real_status(
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut parser = RequestParser::with_limits(Limits {
            max_request_line: 64,
            max_header_bytes: 128,
            max_headers: 4,
            max_body: 64,
        });
        parser.push(&bytes);
        if let Err(e) = parser.take_request() {
            let status = e.status();
            prop_assert!(
                matches!(status, 400 | 413 | 414 | 431 | 501),
                "unexpected error status {} for {}", status, e
            );
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn responses_frame_bodies_correctly(
        status in prop_oneof![Just(200u16), Just(302u16), Just(304u16), Just(404u16), Just(500u16)],
        body in "[ -~]{0,80}",
    ) {
        let resp = WireResponse::new(status).body(body.as_bytes().to_vec());
        let wire = resp.serialize(false);
        let text = String::from_utf8_lossy(&wire).into_owned();
        if status == 304 {
            prop_assert!(!text.to_ascii_lowercase().contains("content-length"));
            prop_assert!(text.ends_with("\r\n\r\n"), "304 carries no body");
        } else {
            let expect = format!("Content-Length: {}\r\n", body.len());
            prop_assert!(text.contains(&expect), "missing framing in {}", text);
            prop_assert!(text.ends_with(&body), "body present");
        }
        // HEAD serialization keeps the head, drops the payload.
        let head = resp.serialize(true);
        let head_text = String::from_utf8_lossy(&head).into_owned();
        prop_assert!(head_text.ends_with("\r\n\r\n"));
    }
}
