//! The simulated Web: host registry, dispatch, failure injection,
//! accounting.
//!
//! A [`Web`] is a cheaply cloneable handle onto shared state, the way
//! every 1995 process shared the one real Web. It dispatches requests to
//! [`OriginServer`]s by hostname, serves `file:` URLs from a simulated
//! local filesystem (w3newer "supports the `file:` specification and can
//! find out if a local file has changed", §3.1), injects the §3.1 error
//! conditions, and counts every request — the denominator of the
//! scalability experiments.

use crate::fault::{FaultKind, FaultPlan};
use crate::http::{Method, NetError, Request, Response, Status};
use crate::resource::Resource;
use crate::server::{OriginServer, ServerState, ServerStats};
use aide_htmlkit::url::Url;
use aide_util::sync::Mutex;
use aide_util::time::{Clock, Timestamp};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Global request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// All requests attempted (including failures).
    pub requests: u64,
    /// HEAD requests attempted.
    pub heads: u64,
    /// GET requests attempted.
    pub gets: u64,
    /// POST requests attempted.
    pub posts: u64,
    /// Requests that failed at the network level.
    pub net_errors: u64,
    /// `file:` accesses (cheap `stat` calls, not network traffic).
    pub file_stats: u64,
    /// Requests whose outcome was altered by an installed
    /// [`FaultPlan`] (every kind: errors, 5xx, slowness, truncation).
    pub faults_injected: u64,
}

impl NetStats {
    /// Publishes every field as a `simweb.*` gauge on the installed
    /// observability subscriber; no-op without one. Export-time
    /// publishing keeps the request hot path free of per-field
    /// instrumentation.
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        aide_obs::gauge("simweb.requests", self.requests);
        aide_obs::gauge("simweb.heads", self.heads);
        aide_obs::gauge("simweb.gets", self.gets);
        aide_obs::gauge("simweb.posts", self.posts);
        aide_obs::gauge("simweb.net_errors", self.net_errors);
        aide_obs::gauge("simweb.file_stats", self.file_stats);
        aide_obs::gauge("simweb.faults_injected", self.faults_injected);
    }
}

/// Resources (CGI especially) are keyed by path plus query string, so
/// `?topic=web` and `?topic=mail` are distinct resources.
fn resource_key(u: &Url) -> String {
    match &u.query {
        Some(q) => format!("{}?{}", u.path, q),
        None => u.path.clone(),
    }
}

#[derive(Debug, Default)]
struct WebState {
    servers: BTreeMap<String, OriginServer>,
    /// Simulated local filesystem for `file:` URLs: path → (content, mtime).
    local_files: BTreeMap<String, (String, Timestamp)>,
    /// When false, every network request fails (local connectivity loss).
    network_up: bool,
    stats: NetStats,
    /// Scripted fault injection, layered over the static knobs.
    fault_plan: Option<FaultPlan>,
    /// Per-(host, path+query) request counters: the draw index fed to the
    /// plan, so the n-th request to a resource always sees the n-th draw.
    fault_draws: BTreeMap<(String, String), u64>,
}

/// Handle to the simulated Web.
///
/// # Examples
///
/// ```
/// use aide_simweb::net::Web;
/// use aide_simweb::http::Request;
/// use aide_util::time::{Clock, Timestamp};
///
/// let web = Web::new(Clock::new());
/// web.set_page("http://www.usenix.org/", "<HTML>hi</HTML>", Timestamp(100)).unwrap();
/// let resp = web.request(&Request::get("http://www.usenix.org/")).unwrap();
/// assert_eq!(resp.body, "<HTML>hi</HTML>");
/// ```
#[derive(Clone)]
pub struct Web {
    clock: Clock,
    state: Arc<Mutex<WebState>>,
}

impl Web {
    /// Creates an empty Web on `clock`.
    pub fn new(clock: Clock) -> Web {
        Web {
            clock,
            state: Arc::new(Mutex::new(WebState {
                network_up: true,
                ..WebState::default()
            })),
        }
    }

    /// The clock this Web runs on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Registers a (possibly empty) server for `host`.
    pub fn add_server(&self, host: &str) {
        let mut st = self.state.lock();
        st.servers
            .entry(host.to_ascii_lowercase())
            .or_insert_with(|| OriginServer::new(host));
    }

    /// Installs a static page at `url`, creating its server if needed.
    pub fn set_page(
        &self,
        url: &str,
        body: &str,
        last_modified: Timestamp,
    ) -> Result<(), NetError> {
        self.with_resource(url, Resource::page(body, last_modified))
    }

    /// Installs a resource at `url`, creating its server if needed.
    pub fn set_resource(&self, url: &str, resource: Resource) -> Result<(), NetError> {
        self.with_resource(url, resource)
    }

    fn with_resource(&self, url: &str, resource: Resource) -> Result<(), NetError> {
        let u = Url::parse(url).map_err(|_| NetError::UnknownHost(url.to_string()))?;
        if u.scheme == "file" {
            let mut st = self.state.lock();
            let mtime = match &resource {
                Resource::Page { last_modified, .. } => *last_modified,
                _ => self.clock.now(),
            };
            let body = match resource {
                Resource::Page { body, .. } => body,
                other => {
                    let mut other = other;
                    other.materialize(self.clock.now())
                }
            };
            st.local_files.insert(u.path, (body, mtime));
            return Ok(());
        }
        let mut st = self.state.lock();
        let server = st
            .servers
            .entry(u.host.clone())
            .or_insert_with(|| OriginServer::new(&u.host));
        server.set_resource(&resource_key(&u), resource);
        Ok(())
    }

    /// Updates the body and date of the page at `url` (page evolution).
    pub fn touch_page(&self, url: &str, body: &str, when: Timestamp) -> Result<(), NetError> {
        self.set_page(url, body, when)
    }

    /// Installs `robots.txt` for `host`.
    pub fn set_robots_txt(&self, host: &str, text: &str) {
        let mut st = self.state.lock();
        st.servers
            .entry(host.to_ascii_lowercase())
            .or_insert_with(|| OriginServer::new(host))
            .set_robots_txt(text);
    }

    /// Sets a server's operational state. Unknown hosts are created so
    /// failure plans can precede content setup.
    pub fn set_server_state(&self, host: &str, state: ServerState) {
        let mut st = self.state.lock();
        st.servers
            .entry(host.to_ascii_lowercase())
            .or_insert_with(|| OriginServer::new(host))
            .set_state(state);
    }

    /// Removes a host entirely — its name stops resolving (§3.1: "the
    /// server for a URL can be deactivated or renamed").
    pub fn unregister_host(&self, host: &str) -> bool {
        self.state
            .lock()
            .servers
            .remove(&host.to_ascii_lowercase())
            .is_some()
    }

    /// Turns the client-side network on or off.
    pub fn set_network_up(&self, up: bool) {
        self.state.lock().network_up = up;
    }

    /// Installs a scripted [`FaultPlan`]; replaces any previous plan.
    /// Draw counters are reset so the plan starts from draw zero.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        st.fault_draws.clear();
        st.fault_plan = if plan.is_empty() { None } else { Some(plan) };
    }

    /// Removes the fault plan; the Web is healthy again (static knobs
    /// like [`ServerState`] still apply).
    pub fn clear_fault_plan(&self) {
        let mut st = self.state.lock();
        st.fault_plan = None;
        st.fault_draws.clear();
    }

    /// Writes a simulated local file (for `file:` URLs).
    pub fn write_local_file(&self, path: &str, content: &str, mtime: Timestamp) {
        self.state
            .lock()
            .local_files
            .insert(path.to_string(), (content.to_string(), mtime));
    }

    /// Performs one request.
    pub fn request(&self, req: &Request) -> Result<Response, NetError> {
        let now = self.clock.now();
        let url = Url::parse(&req.url).map_err(|_| NetError::UnknownHost(req.url.clone()))?;

        if url.scheme == "file" {
            // Local stat/read: no network, cannot fail with net errors.
            let mut st = self.state.lock();
            st.stats.file_stats += 1;
            return Ok(match st.local_files.get(&url.path) {
                Some((content, mtime)) => Response {
                    status: Status::Ok,
                    last_modified: Some(*mtime),
                    location: None,
                    content_length: content.len(),
                    body: if req.method == Method::Head {
                        String::new()
                    } else {
                        content.clone()
                    },
                    date: now,
                    retry_after: None,
                },
                None => Response {
                    status: Status::NotFound,
                    last_modified: None,
                    location: None,
                    content_length: 0,
                    body: String::new(),
                    date: now,
                    retry_after: None,
                },
            });
        }

        let mut st = self.state.lock();
        let st = &mut *st;
        st.stats.requests += 1;
        match req.method {
            Method::Head => st.stats.heads += 1,
            Method::Get => st.stats.gets += 1,
            Method::Post => st.stats.posts += 1,
        }
        if !st.network_up {
            st.stats.net_errors += 1;
            return Err(NetError::HostUnreachable(url.host.clone()));
        }
        let path = resource_key(&url);
        let Some(server) = st.servers.get_mut(&url.host) else {
            st.stats.net_errors += 1;
            return Err(NetError::UnknownHost(url.host.clone()));
        };
        match server.state() {
            ServerState::Down => {
                st.stats.net_errors += 1;
                return Err(NetError::ConnectionRefused(url.host.clone()));
            }
            ServerState::Slow { delay_secs } if delay_secs >= req.timeout_secs => {
                st.stats.net_errors += 1;
                return Err(NetError::Timeout);
            }
            _ => {}
        }

        // Scripted fault injection, layered after the static knobs so a
        // Web without a plan behaves exactly as before.
        let fault = match &st.fault_plan {
            Some(plan) => {
                let draw = st
                    .fault_draws
                    .entry((url.host.clone(), path.clone()))
                    .or_insert(0);
                let d = *draw;
                *draw += 1;
                plan.decide(&url.host, &path, d, now)
            }
            None => None,
        };
        match fault {
            Some(FaultKind::Timeout) => {
                st.stats.faults_injected += 1;
                st.stats.net_errors += 1;
                aide_obs::counter("simweb.fault.timeout", 1);
                return Err(NetError::Timeout);
            }
            Some(FaultKind::ConnectionRefused) => {
                st.stats.faults_injected += 1;
                st.stats.net_errors += 1;
                aide_obs::counter("simweb.fault.connection_refused", 1);
                return Err(NetError::ConnectionRefused(url.host.clone()));
            }
            Some(FaultKind::HostUnreachable) => {
                st.stats.faults_injected += 1;
                st.stats.net_errors += 1;
                aide_obs::counter("simweb.fault.host_unreachable", 1);
                return Err(NetError::HostUnreachable(url.host.clone()));
            }
            Some(FaultKind::Slow { delay_secs }) => {
                st.stats.faults_injected += 1;
                aide_obs::counter("simweb.fault.slow", 1);
                if delay_secs >= req.timeout_secs {
                    st.stats.net_errors += 1;
                    return Err(NetError::Timeout);
                }
                // Latency below the client timeout: the response still
                // arrives (the virtual clock is not advanced — workers
                // sleeping on it would interleave nondeterministically).
            }
            Some(FaultKind::Transient {
                status,
                retry_after_secs,
            }) => {
                st.stats.faults_injected += 1;
                aide_obs::counter("simweb.fault.transient", 1);
                return Ok(Response {
                    status,
                    last_modified: None,
                    location: None,
                    content_length: 0,
                    body: String::new(),
                    date: now,
                    retry_after: retry_after_secs,
                });
            }
            _ => {}
        }
        let mut resp = server.serve(req, &path, now);
        if let Some(FaultKind::Truncate { keep_bytes }) = fault {
            if req.method == Method::Get
                && resp.status == Status::Ok
                && resp.body.len() > keep_bytes
            {
                // Cut the body but keep the advertised Content-Length:
                // the client sees a short read it can detect.
                let mut keep = keep_bytes;
                while keep > 0 && !resp.body.is_char_boundary(keep) {
                    keep -= 1;
                }
                resp.body.truncate(keep);
                st.stats.faults_injected += 1;
                aide_obs::counter("simweb.fault.truncated", 1);
            }
        }
        Ok(resp)
    }

    /// GETs `url`, following up to `max_redirects` 301s.
    pub fn get_following_redirects(
        &self,
        url: &str,
        max_redirects: usize,
    ) -> Result<(String, Response), NetError> {
        let mut current = url.to_string();
        for _ in 0..=max_redirects {
            let resp = self.request(&Request::get(&current))?;
            if resp.status == Status::MovedPermanently {
                match &resp.location {
                    Some(loc) => {
                        current = loc.clone();
                        continue;
                    }
                    None => return Ok((current, resp)),
                }
            }
            return Ok((current, resp));
        }
        Err(NetError::Timeout)
    }

    /// Accumulated global counters.
    pub fn stats(&self) -> NetStats {
        self.state.lock().stats
    }

    /// Per-server counters for `host`.
    pub fn server_stats(&self, host: &str) -> Option<ServerStats> {
        self.state
            .lock()
            .servers
            .get(&host.to_ascii_lowercase())
            .map(|s| s.stats())
    }

    /// Resets global and per-server counters.
    pub fn reset_stats(&self) {
        let mut st = self.state.lock();
        st.stats = NetStats::default();
        for s in st.servers.values_mut() {
            s.reset_stats();
        }
    }

    /// All registered hostnames, sorted.
    pub fn hosts(&self) -> Vec<String> {
        self.state.lock().servers.keys().cloned().collect()
    }

    /// All URLs currently served (http pages, sorted) — used by workload
    /// drivers to enumerate the simulated web.
    pub fn urls(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut out = Vec::new();
        for (host, server) in &st.servers {
            for path in server.paths() {
                out.push(format!("http://{host}{path}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web() -> Web {
        let w = Web::new(Clock::starting_at(Timestamp(10_000)));
        w.set_page("http://a.com/x.html", "<HTML>ax</HTML>", Timestamp(100))
            .unwrap();
        w.set_page("http://b.com/y.html", "<HTML>by</HTML>", Timestamp(200))
            .unwrap();
        w
    }

    #[test]
    fn head_and_get() {
        let w = web();
        let h = w.request(&Request::head("http://a.com/x.html")).unwrap();
        assert_eq!(h.last_modified, Some(Timestamp(100)));
        assert!(h.body.is_empty());
        let g = w.request(&Request::get("http://a.com/x.html")).unwrap();
        assert_eq!(g.body, "<HTML>ax</HTML>");
    }

    #[test]
    fn unknown_host_and_missing_page() {
        let w = web();
        assert!(matches!(
            w.request(&Request::head("http://nowhere.com/")),
            Err(NetError::UnknownHost(_))
        ));
        let r = w
            .request(&Request::head("http://a.com/missing.html"))
            .unwrap();
        assert_eq!(r.status, Status::NotFound);
    }

    #[test]
    fn network_down_fails_everything() {
        let w = web();
        w.set_network_up(false);
        assert!(w.request(&Request::head("http://a.com/x.html")).is_err());
        w.set_network_up(true);
        assert!(w.request(&Request::head("http://a.com/x.html")).is_ok());
    }

    #[test]
    fn server_down_is_connection_refused() {
        let w = web();
        w.set_server_state("a.com", ServerState::Down);
        assert!(matches!(
            w.request(&Request::head("http://a.com/x.html")),
            Err(NetError::ConnectionRefused(_))
        ));
        // The other server is unaffected.
        assert!(w.request(&Request::head("http://b.com/y.html")).is_ok());
    }

    #[test]
    fn slow_server_times_out_short_requests() {
        let w = web();
        w.set_server_state("a.com", ServerState::Slow { delay_secs: 60 });
        assert!(matches!(
            w.request(&Request::head("http://a.com/x.html")),
            Err(NetError::Timeout)
        ));
        // A patient client succeeds.
        let ok = w.request(&Request::head("http://a.com/x.html").timeout_secs(120));
        assert!(ok.is_ok());
    }

    #[test]
    fn unregister_host_makes_it_unknown() {
        let w = web();
        assert!(w.unregister_host("a.com"));
        assert!(matches!(
            w.request(&Request::head("http://a.com/x.html")),
            Err(NetError::UnknownHost(_))
        ));
    }

    #[test]
    fn redirect_following() {
        let w = web();
        w.set_resource(
            "http://a.com/old.html",
            Resource::Moved {
                location: "http://b.com/y.html".into(),
            },
        )
        .unwrap();
        let (final_url, resp) = w
            .get_following_redirects("http://a.com/old.html", 3)
            .unwrap();
        assert_eq!(final_url, "http://b.com/y.html");
        assert_eq!(resp.body, "<HTML>by</HTML>");
    }

    #[test]
    fn redirect_loop_errors() {
        let w = web();
        w.set_resource(
            "http://a.com/l1",
            Resource::Moved {
                location: "http://a.com/l2".into(),
            },
        )
        .unwrap();
        w.set_resource(
            "http://a.com/l2",
            Resource::Moved {
                location: "http://a.com/l1".into(),
            },
        )
        .unwrap();
        assert!(w.get_following_redirects("http://a.com/l1", 5).is_err());
    }

    #[test]
    fn file_urls_hit_local_fs() {
        let w = web();
        w.write_local_file("/home/me/notes.html", "<HTML>notes</HTML>", Timestamp(77));
        let r = w
            .request(&Request::head("file:/home/me/notes.html"))
            .unwrap();
        assert_eq!(r.last_modified, Some(Timestamp(77)));
        let before = w.stats().requests;
        let _ = w
            .request(&Request::get("file:/home/me/notes.html"))
            .unwrap();
        assert_eq!(
            w.stats().requests,
            before,
            "file access is not network traffic"
        );
        assert!(w.stats().file_stats >= 2);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let w = web();
        let _ = w.request(&Request::head("http://a.com/x.html"));
        let _ = w.request(&Request::get("http://a.com/x.html"));
        let _ = w.request(&Request::head("http://nowhere/"));
        let s = w.stats();
        assert_eq!(s.requests, 3);
        assert_eq!(s.heads, 2);
        assert_eq!(s.gets, 1);
        assert_eq!(s.net_errors, 1);
        assert_eq!(w.server_stats("a.com").unwrap().total(), 2);
        w.reset_stats();
        assert_eq!(w.stats().requests, 0);
        assert_eq!(w.server_stats("a.com").unwrap().total(), 0);
    }

    #[test]
    fn cgi_with_query_string() {
        let w = web();
        w.set_resource(
            "http://a.com/cgi-bin/q?topic=web",
            Resource::hit_counter("result {HITS}"),
        )
        .unwrap();
        let r = w
            .request(&Request::get("http://a.com/cgi-bin/q?topic=web"))
            .unwrap();
        assert_eq!(r.body, "result 1");
        // A different query is a different resource.
        let miss = w
            .request(&Request::get("http://a.com/cgi-bin/q?topic=mail"))
            .unwrap();
        assert_eq!(miss.status, Status::NotFound);
    }

    #[test]
    fn urls_enumeration() {
        let w = web();
        let urls = w.urls();
        assert_eq!(urls, vec!["http://a.com/x.html", "http://b.com/y.html"]);
    }

    #[test]
    fn clones_share_state() {
        let w = web();
        let w2 = w.clone();
        w2.set_page("http://c.com/z", "zz", Timestamp(5)).unwrap();
        assert!(w.request(&Request::get("http://c.com/z")).is_ok());
    }

    #[test]
    fn touch_page_updates_date_and_body() {
        let w = web();
        w.touch_page("http://a.com/x.html", "<HTML>v2</HTML>", Timestamp(300))
            .unwrap();
        let r = w.request(&Request::get("http://a.com/x.html")).unwrap();
        assert_eq!(r.last_modified, Some(Timestamp(300)));
        assert_eq!(r.body, "<HTML>v2</HTML>");
    }
}
