//! What a URL serves.
//!
//! Three behaviours matter to AIDE and all appear in the paper:
//!
//! - ordinary **pages** carry a `Last-Modified` date, so a HEAD suffices
//!   to detect change;
//! - **CGI pages** do not ("pages that do not provide a Last-Modified
//!   date, such as output from Common Gateway Interface (CGI) scripts",
//!   §2.1), and the *noisy* ones — hit counters, embedded clocks, the
//!   daily Dilbert strip — "will look different every time they are
//!   retrieved" (§3.1), generating junk change notifications;
//! - **error behaviours**: moved with a forwarding pointer, moved
//!   without, deliberately gone (§3.1).

use aide_util::time::Timestamp;

/// A resource served at some path of an origin server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resource {
    /// A static page with a modification date.
    Page {
        /// Full body.
        body: String,
        /// `Last-Modified` value.
        last_modified: Timestamp,
    },
    /// A CGI page: no `Last-Modified`; the body may embed volatile data.
    Cgi {
        /// Template; `{HITS}` and `{TIME}` are substituted per request.
        template: String,
        /// Number of times this resource has been fetched with GET.
        hits: u64,
    },
    /// Moved: 301 with a forwarding pointer.
    Moved {
        /// The new absolute URL.
        location: String,
    },
    /// Removed: 410.
    Gone,
}

impl Resource {
    /// Convenience constructor for a static page.
    pub fn page(body: &str, last_modified: Timestamp) -> Resource {
        Resource::Page {
            body: body.to_string(),
            last_modified,
        }
    }

    /// A hit-counter CGI page — the canonical noisy modification source.
    pub fn hit_counter(template: &str) -> Resource {
        Resource::Cgi {
            template: template.to_string(),
            hits: 0,
        }
    }

    /// True if a HEAD of this resource yields a `Last-Modified` header.
    pub fn provides_last_modified(&self) -> bool {
        matches!(self, Resource::Page { .. })
    }

    /// Materializes the body for one GET at time `now`, updating volatile
    /// state (the hit counter).
    pub fn materialize(&mut self, now: Timestamp) -> String {
        self.materialize_with_input(now, "")
    }

    /// Materializes with a request body (POST input): `{INPUT}` in a CGI
    /// template is replaced with it, so form services produce
    /// input-dependent output (§8.4's case).
    pub fn materialize_with_input(&mut self, now: Timestamp, input: &str) -> String {
        match self {
            Resource::Page { body, .. } => body.clone(),
            Resource::Cgi { template, hits } => {
                *hits += 1;
                template
                    .replace("{HITS}", &hits.to_string())
                    .replace("{TIME}", &now.to_http_date())
                    .replace("{INPUT}", input)
            }
            Resource::Moved { .. } | Resource::Gone => String::new(),
        }
    }

    /// Body length as it would be materialized *without* bumping state —
    /// used for HEAD's `Content-Length`.
    pub fn peek_len(&self, now: Timestamp) -> usize {
        match self {
            Resource::Page { body, .. } => body.len(),
            Resource::Cgi { template, hits } => template
                .replace("{HITS}", &(hits + 1).to_string())
                .replace("{TIME}", &now.to_http_date())
                .len(),
            Resource::Moved { .. } | Resource::Gone => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_page_is_stable() {
        let mut r = Resource::page("<HTML>x</HTML>", Timestamp(100));
        assert!(r.provides_last_modified());
        assert_eq!(r.materialize(Timestamp(1)), r.materialize(Timestamp(2)));
    }

    #[test]
    fn hit_counter_changes_every_fetch() {
        let mut r = Resource::hit_counter("<HTML>You are visitor {HITS}</HTML>");
        assert!(!r.provides_last_modified());
        let a = r.materialize(Timestamp(1));
        let b = r.materialize(Timestamp(1));
        assert_ne!(a, b);
        assert!(a.contains("visitor 1"));
        assert!(b.contains("visitor 2"));
    }

    #[test]
    fn clock_page_tracks_time() {
        let mut r = Resource::Cgi {
            template: "<HTML>It is {TIME}</HTML>".to_string(),
            hits: 0,
        };
        let a = r.materialize(Timestamp::from_ymd_hms(1995, 6, 1, 0, 0, 0));
        let b = r.materialize(Timestamp::from_ymd_hms(1995, 6, 2, 0, 0, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn stable_cgi_output_is_possible() {
        // CGI without volatile substitutions: same body, still no date.
        let mut r = Resource::Cgi {
            template: "<HTML>query result</HTML>".to_string(),
            hits: 0,
        };
        assert_eq!(r.materialize(Timestamp(1)), r.materialize(Timestamp(9)));
        assert!(!r.provides_last_modified());
    }

    #[test]
    fn moved_and_gone_serve_nothing() {
        assert_eq!(Resource::Gone.materialize(Timestamp(1)), "");
        let mut m = Resource::Moved {
            location: "http://new/".into(),
        };
        assert_eq!(m.materialize(Timestamp(1)), "");
        assert!(!m.provides_last_modified());
    }

    #[test]
    fn peek_len_matches_next_materialize() {
        let mut r = Resource::hit_counter("n={HITS}");
        let peek = r.peek_len(Timestamp(5));
        let body = r.materialize(Timestamp(5));
        assert_eq!(peek, body.len());
    }
}
