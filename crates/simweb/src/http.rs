//! HTTP/1.0 request and response types, as AIDE sees them.
//!
//! Only the slice of HTTP the paper's tools touch is modelled: `HEAD`
//! requests for `Last-Modified` (the cheap poll w3newer prefers), `GET`
//! with optional `If-Modified-Since` (what a proxy revalidation sends),
//! `POST` (which §8.4 notes AIDE *cannot* yet track — the simulation
//! supports it so the extension can be exercised), and the error
//! taxonomy of §3.1: timeouts, unreachable hosts, refused connections.

use aide_util::time::Timestamp;
use std::fmt;

/// HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Headers only — the cheap modification-date poll.
    Head,
    /// Full body fetch.
    Get,
    /// Form submission (§8.4).
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Head => write!(f, "HEAD"),
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// HTTP status codes AIDE distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200.
    Ok,
    /// 304 (response to a conditional GET).
    NotModified,
    /// 301, with a `Location` header.
    MovedPermanently,
    /// 403 — e.g. the server refuses robots at the HTTP level.
    Forbidden,
    /// 404.
    NotFound,
    /// 410 — deliberately removed.
    Gone,
    /// 500 — CGI failure.
    ServerError,
    /// 503 — overloaded, try later.
    ServiceUnavailable,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::NotModified => 304,
            Status::MovedPermanently => 301,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Gone => 410,
            Status::ServerError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// True for 2xx/3xx-not-modified outcomes a tracker treats as success.
    pub fn is_success(self) -> bool {
        matches!(self, Status::Ok | Status::NotModified)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Network-level failures (no HTTP response at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The request exceeded the client timeout (overloaded proxy/server).
    Timeout,
    /// No route to the host, or the client side is offline.
    HostUnreachable(String),
    /// The host exists but nothing listens (server process down).
    ConnectionRefused(String),
    /// The hostname does not resolve (server renamed/deactivated, §3.1).
    UnknownHost(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "timeout"),
            NetError::HostUnreachable(h) => write!(f, "host unreachable: {h}"),
            NetError::ConnectionRefused(h) => write!(f, "connection refused: {h}"),
            NetError::UnknownHost(h) => write!(f, "unknown host: {h}"),
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// §3.1 suggests skipping subsequent URLs on a host once a *host*
    /// error (rather than a per-URL error) has occurred; this is that
    /// classification.
    pub fn is_host_error(&self) -> bool {
        matches!(
            self,
            NetError::HostUnreachable(_)
                | NetError::UnknownHost(_)
                | NetError::ConnectionRefused(_)
        )
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Absolute URL, as a string (parsed by the network layer).
    pub url: String,
    /// `If-Modified-Since`, for conditional GETs.
    pub if_modified_since: Option<Timestamp>,
    /// `User-Agent`, matched against `robots.txt` by well-behaved clients.
    pub user_agent: String,
    /// Client timeout in seconds (httpd's CGI timeout in §4.2 plays the
    /// same role on the server side).
    pub timeout_secs: u64,
    /// Request body (POST only).
    pub body: Option<String>,
}

impl Request {
    /// Default client timeout, seconds.
    pub const DEFAULT_TIMEOUT_SECS: u64 = 30;

    /// Builds a HEAD request.
    pub fn head(url: &str) -> Request {
        Request {
            method: Method::Head,
            url: url.to_string(),
            if_modified_since: None,
            user_agent: "w3newer/1.0".to_string(),
            timeout_secs: Self::DEFAULT_TIMEOUT_SECS,
            body: None,
        }
    }

    /// Builds a GET request.
    pub fn get(url: &str) -> Request {
        Request {
            method: Method::Get,
            ..Request::head(url)
        }
    }

    /// Builds a POST request with a body.
    pub fn post(url: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            body: Some(body.to_string()),
            ..Request::head(url)
        }
    }

    /// Sets `If-Modified-Since` (builder style).
    pub fn if_modified_since(mut self, t: Timestamp) -> Request {
        self.if_modified_since = Some(t);
        self
    }

    /// Sets the user agent (builder style).
    pub fn user_agent(mut self, ua: &str) -> Request {
        self.user_agent = ua.to_string();
        self
    }

    /// Sets the timeout (builder style).
    pub fn timeout_secs(mut self, secs: u64) -> Request {
        self.timeout_secs = secs;
        self
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// `Last-Modified`, when the resource provides one (CGI output does
    /// not — the case that forces checksum comparison, §2.1).
    pub last_modified: Option<Timestamp>,
    /// `Location` for redirects.
    pub location: Option<String>,
    /// `Content-Length` (present even for HEAD).
    pub content_length: usize,
    /// Body; empty for HEAD and 304 responses.
    pub body: String,
    /// `Date` — when the origin produced this response.
    pub date: Timestamp,
    /// `Retry-After`, in seconds — overloaded servers attach it to 503
    /// responses so well-behaved clients back off at least this long.
    pub retry_after: Option<u64>,
}

impl Response {
    /// True if this response carries a usable modification date.
    pub fn has_last_modified(&self) -> bool {
        self.last_modified.is_some()
    }

    /// True for transient server-side failures (500/503) that a client
    /// may retry; everything else is either success or terminal.
    pub fn is_transient_failure(&self) -> bool {
        matches!(
            self.status,
            Status::ServerError | Status::ServiceUnavailable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let r = Request::head("http://h/p");
        assert_eq!(r.method, Method::Head);
        assert_eq!(r.timeout_secs, Request::DEFAULT_TIMEOUT_SECS);
        let r = Request::get("http://h/p")
            .if_modified_since(Timestamp(5))
            .timeout_secs(3);
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.if_modified_since, Some(Timestamp(5)));
        assert_eq!(r.timeout_secs, 3);
        let r = Request::post("http://h/cgi", "a=b");
        assert_eq!(r.body.as_deref(), Some("a=b"));
    }

    #[test]
    fn status_codes() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::NotModified.code(), 304);
        assert_eq!(Status::MovedPermanently.code(), 301);
        assert!(Status::Ok.is_success());
        assert!(Status::NotModified.is_success());
        assert!(!Status::NotFound.is_success());
    }

    #[test]
    fn host_error_classification() {
        assert!(NetError::UnknownHost("x".into()).is_host_error());
        assert!(NetError::HostUnreachable("x".into()).is_host_error());
        assert!(!NetError::Timeout.is_host_error());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Method::Head.to_string(), "HEAD");
        assert_eq!(Status::Gone.to_string(), "410");
        assert_eq!(NetError::Timeout.to_string(), "timeout");
    }
}
