//! A caching proxy server.
//!
//! w3newer consults "a modification date stored in a proxy-caching
//! server's cache" before ever touching the network (§3), and §8.3 notes
//! AT&T ran "a related daemon on the same machine as an AT&T-wide
//! proxy-caching server, which returns information about pages that are
//! currently cached". The proxy here implements the classic TTL model
//! §3.1 describes: cached entries are served until their time-to-live
//! expires; a forced reload revalidates with a conditional GET.

use crate::http::{Method, NetError, Request, Response, Status};
use crate::net::Web;
use aide_util::sync::Mutex;
use aide_util::time::{Duration, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// A cached entry.
#[derive(Debug, Clone)]
struct Entry {
    body: String,
    last_modified: Option<Timestamp>,
    fetched_at: Timestamp,
}

/// Proxy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxyStats {
    /// Requests served entirely from cache.
    pub hits: u64,
    /// Requests that went to the origin.
    pub misses: u64,
    /// Revalidations answered 304 by the origin.
    pub revalidated: u64,
}

impl ProxyStats {
    /// Cache hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct ProxyState {
    entries: HashMap<String, Entry>,
    stats: ProxyStats,
}

/// Handle to a caching proxy in front of a [`Web`].
///
/// # Examples
///
/// ```
/// use aide_simweb::net::Web;
/// use aide_simweb::proxy::ProxyCache;
/// use aide_util::time::{Clock, Duration, Timestamp};
///
/// let clock = Clock::new();
/// let web = Web::new(clock.clone());
/// web.set_page("http://h/p", "body", Timestamp(0)).unwrap();
/// let proxy = ProxyCache::new(web, Duration::hours(1));
/// proxy.get("http://h/p").unwrap();
/// proxy.get("http://h/p").unwrap();
/// assert_eq!(proxy.stats().hits, 1);
/// ```
#[derive(Clone)]
pub struct ProxyCache {
    web: Web,
    ttl: Duration,
    state: Arc<Mutex<ProxyState>>,
}

impl ProxyCache {
    /// Creates a proxy over `web` with entry time-to-live `ttl`.
    pub fn new(web: Web, ttl: Duration) -> ProxyCache {
        ProxyCache {
            web,
            ttl,
            state: Arc::new(Mutex::new(ProxyState::default())),
        }
    }

    /// The underlying Web (for direct, non-caching access).
    pub fn web(&self) -> &Web {
        &self.web
    }

    /// GET through the cache.
    pub fn get(&self, url: &str) -> Result<Response, NetError> {
        self.fetch(url, Method::Get, false)
    }

    /// GET, bypassing freshness (a user-forced reload): revalidates with
    /// the origin via a conditional GET.
    pub fn reload(&self, url: &str) -> Result<Response, NetError> {
        self.fetch(url, Method::Get, true)
    }

    /// HEAD through the cache: answered locally while the entry is fresh.
    pub fn head(&self, url: &str) -> Result<Response, NetError> {
        self.fetch(url, Method::Head, false)
    }

    fn fetch(&self, url: &str, method: Method, force: bool) -> Result<Response, NetError> {
        let now = self.web.clock().now();
        {
            let mut st = self.state.lock();
            if !force {
                if let Some(e) = st.entries.get(url).cloned() {
                    if now - e.fetched_at < self.ttl {
                        st.stats.hits += 1;
                        return Ok(Response {
                            status: Status::Ok,
                            last_modified: e.last_modified,
                            location: None,
                            content_length: e.body.len(),
                            body: if method == Method::Head {
                                String::new()
                            } else {
                                e.body.clone()
                            },
                            date: e.fetched_at,
                            retry_after: None,
                        });
                    }
                }
            }
            st.stats.misses += 1;
        }
        // Stale or absent: fetch (conditionally when we hold a copy).
        let prior = self.state.lock().entries.get(url).cloned();
        let mut req = Request::get(url);
        if let Some(e) = &prior {
            if let Some(lm) = e.last_modified {
                req = req.if_modified_since(lm);
            }
        }
        let resp = self.web.request(&req)?;
        match resp.status {
            Status::NotModified => {
                let mut st = self.state.lock();
                st.stats.revalidated += 1;
                // A 304 implies we sent If-Modified-Since, which implies
                // a prior entry; stay total if it vanished anyway.
                let e = st.entries.entry(url.to_string()).or_insert_with(|| Entry {
                    body: prior.as_ref().map(|p| p.body.clone()).unwrap_or_default(),
                    last_modified: prior.as_ref().and_then(|p| p.last_modified),
                    fetched_at: now,
                });
                e.fetched_at = now;
                let body = e.body.clone();
                let lm = e.last_modified;
                Ok(Response {
                    status: Status::Ok,
                    last_modified: lm,
                    location: None,
                    content_length: body.len(),
                    body: if method == Method::Head {
                        String::new()
                    } else {
                        body
                    },
                    date: now,
                    retry_after: None,
                })
            }
            Status::Ok => {
                let mut st = self.state.lock();
                st.entries.insert(
                    url.to_string(),
                    Entry {
                        body: resp.body.clone(),
                        last_modified: resp.last_modified,
                        fetched_at: now,
                    },
                );
                Ok(Response {
                    body: if method == Method::Head {
                        String::new()
                    } else {
                        resp.body.clone()
                    },
                    ..resp
                })
            }
            _ => {
                // Errors are not cached (negative caching came later).
                Ok(resp)
            }
        }
    }

    /// The daemon interface §8.3 describes: modification information for
    /// a *currently cached* page, without any network traffic. Returns
    /// `(last_modified, fetched_at)` if cached.
    pub fn cached_mod_info(&self, url: &str) -> Option<(Option<Timestamp>, Timestamp)> {
        self.state
            .lock()
            .entries
            .get(url)
            .map(|e| (e.last_modified, e.fetched_at))
    }

    /// Drops every cached entry.
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters.
    pub fn stats(&self) -> ProxyStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Clock;

    fn setup() -> (Clock, Web, ProxyCache) {
        let clock = Clock::starting_at(Timestamp(100_000));
        let web = Web::new(clock.clone());
        web.set_page("http://h/p.html", "<HTML>v1</HTML>", Timestamp(50_000))
            .unwrap();
        let proxy = ProxyCache::new(web.clone(), Duration::hours(1));
        (clock, web, proxy)
    }

    #[test]
    fn second_get_is_a_hit() {
        let (_, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        let origin_before = web.server_stats("h").unwrap().total();
        let r = proxy.get("http://h/p.html").unwrap();
        assert_eq!(r.body, "<HTML>v1</HTML>");
        assert_eq!(
            web.server_stats("h").unwrap().total(),
            origin_before,
            "served from cache"
        );
        assert_eq!(proxy.stats().hits, 1);
    }

    #[test]
    fn ttl_expiry_revalidates() {
        let (clock, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        clock.advance(Duration::hours(2));
        let r = proxy.get("http://h/p.html").unwrap();
        assert_eq!(r.body, "<HTML>v1</HTML>");
        assert_eq!(proxy.stats().revalidated, 1);
        // Origin saw a conditional GET answered 304.
        assert_eq!(web.server_stats("h").unwrap().not_modified, 1);
    }

    #[test]
    fn changed_page_refetched_after_ttl() {
        let (clock, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        clock.advance(Duration::hours(2));
        web.touch_page("http://h/p.html", "<HTML>v2</HTML>", clock.now())
            .unwrap();
        let r = proxy.get("http://h/p.html").unwrap();
        assert_eq!(r.body, "<HTML>v2</HTML>");
        assert_eq!(proxy.stats().revalidated, 0);
    }

    #[test]
    fn stale_body_served_within_ttl() {
        // The §3.1 consistency caveat: within the TTL the proxy can serve
        // stale data.
        let (clock, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        web.touch_page("http://h/p.html", "<HTML>v2</HTML>", clock.now())
            .unwrap();
        let r = proxy.get("http://h/p.html").unwrap();
        assert_eq!(r.body, "<HTML>v1</HTML>", "stale but within TTL");
    }

    #[test]
    fn reload_forces_revalidation() {
        let (clock, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        web.touch_page("http://h/p.html", "<HTML>v2</HTML>", clock.now())
            .unwrap();
        let r = proxy.reload("http://h/p.html").unwrap();
        assert_eq!(r.body, "<HTML>v2</HTML>");
    }

    #[test]
    fn head_is_served_from_cache() {
        let (_, web, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        let before = web.stats().requests;
        let h = proxy.head("http://h/p.html").unwrap();
        assert_eq!(h.last_modified, Some(Timestamp(50_000)));
        assert!(h.body.is_empty());
        assert_eq!(web.stats().requests, before);
    }

    #[test]
    fn cached_mod_info_reports_without_traffic() {
        let (clock, web, proxy) = setup();
        assert_eq!(proxy.cached_mod_info("http://h/p.html"), None);
        proxy.get("http://h/p.html").unwrap();
        let before = web.stats().requests;
        let (lm, fetched) = proxy.cached_mod_info("http://h/p.html").unwrap();
        assert_eq!(lm, Some(Timestamp(50_000)));
        assert_eq!(fetched, clock.now());
        assert_eq!(web.stats().requests, before);
    }

    #[test]
    fn errors_pass_through_uncached() {
        let (_, _, proxy) = setup();
        let r = proxy.get("http://h/missing.html").unwrap();
        assert_eq!(r.status, Status::NotFound);
        assert!(proxy.cached_mod_info("http://h/missing.html").is_none());
    }

    #[test]
    fn net_errors_propagate() {
        let (_, web, proxy) = setup();
        web.set_network_up(false);
        assert!(proxy.get("http://h/p.html").is_err());
    }

    #[test]
    fn clear_and_len() {
        let (_, _, proxy) = setup();
        assert!(proxy.is_empty());
        proxy.get("http://h/p.html").unwrap();
        assert_eq!(proxy.len(), 1);
        proxy.clear();
        assert!(proxy.is_empty());
    }

    #[test]
    fn hit_ratio() {
        let (_, _, proxy) = setup();
        proxy.get("http://h/p.html").unwrap();
        proxy.get("http://h/p.html").unwrap();
        proxy.get("http://h/p.html").unwrap();
        let s = proxy.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }
}
