//! A simulated user browser: history and hotlist.
//!
//! w3newer's two local inputs are the browser's **history** ("the time
//! when the user has viewed the page comes from the W3 browser's
//! history", §3) and the **hotlist** ("known as a bookmark file in
//! Netscape", §1). The browser here visits pages (optionally through a
//! proxy), records visit times, manages bookmarks, and emits/parses the
//! Netscape bookmark file format so the hotlist can round-trip through a
//! file the way the real tools read it.
//!
//! §6's integration wart is reproduced faithfully: viewing a page *via
//! HtmlDiff* does not update the browser history for the original URL —
//! only [`Browser::visit`] on the URL itself does.

use crate::http::{NetError, Request, Response};
use crate::net::Web;
use crate::proxy::ProxyCache;
use aide_util::sync::Mutex;
use aide_util::time::Timestamp;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A bookmark: a titled URL, as in a Netscape bookmark file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bookmark {
    /// Display title.
    pub title: String,
    /// Absolute URL.
    pub url: String,
}

#[derive(Debug, Default)]
struct BrowserState {
    history: BTreeMap<String, Timestamp>,
    hotlist: Vec<Bookmark>,
}

/// Handle to a simulated browser.
#[derive(Clone)]
pub struct Browser {
    web: Web,
    proxy: Option<ProxyCache>,
    state: Arc<Mutex<BrowserState>>,
}

impl Browser {
    /// A browser fetching directly from `web`.
    pub fn new(web: Web) -> Browser {
        Browser {
            web,
            proxy: None,
            state: Arc::new(Mutex::new(BrowserState::default())),
        }
    }

    /// A browser fetching through `proxy`.
    pub fn with_proxy(proxy: ProxyCache) -> Browser {
        Browser {
            web: proxy.web().clone(),
            proxy: Some(proxy),
            state: Arc::new(Mutex::new(BrowserState::default())),
        }
    }

    /// Visits `url`: fetches it and records the visit time in history.
    ///
    /// The visit is recorded even for error responses — the user *looked*,
    /// which is what the history means to w3newer.
    pub fn visit(&self, url: &str) -> Result<Response, NetError> {
        let resp = match &self.proxy {
            Some(p) => p.get(url),
            None => self.web.request(&Request::get(url)),
        }?;
        self.state
            .lock()
            .history
            .insert(url.to_string(), self.web.clock().now());
        Ok(resp)
    }

    /// When the user last viewed `url`, per the browser history.
    pub fn last_visited(&self, url: &str) -> Option<Timestamp> {
        self.state.lock().history.get(url).copied()
    }

    /// Adds a bookmark to the hotlist (duplicates by URL are replaced).
    pub fn add_bookmark(&self, title: &str, url: &str) {
        let mut st = self.state.lock();
        if let Some(b) = st.hotlist.iter_mut().find(|b| b.url == url) {
            b.title = title.to_string();
        } else {
            st.hotlist.push(Bookmark {
                title: title.to_string(),
                url: url.to_string(),
            });
        }
    }

    /// Removes the bookmark for `url`; returns whether one existed.
    pub fn remove_bookmark(&self, url: &str) -> bool {
        let mut st = self.state.lock();
        let before = st.hotlist.len();
        st.hotlist.retain(|b| b.url != url);
        st.hotlist.len() != before
    }

    /// The hotlist, in insertion order.
    pub fn hotlist(&self) -> Vec<Bookmark> {
        self.state.lock().hotlist.clone()
    }

    /// Emits the hotlist as a Netscape bookmark file.
    pub fn bookmark_file(&self) -> String {
        let mut out = String::from(
            "<!DOCTYPE NETSCAPE-Bookmark-file-1>\n\
             <!-- This is an automatically generated file. -->\n\
             <TITLE>Bookmarks</TITLE>\n\
             <H1>Bookmarks</H1>\n\
             <DL><p>\n",
        );
        let st = self.state.lock();
        for b in &st.hotlist {
            out.push_str(&format!(
                "    <DT><A HREF=\"{}\">{}</A>\n",
                b.url,
                aide_htmlkit::entity::encode_entities(&b.title)
            ));
        }
        out.push_str("</DL><p>\n");
        out
    }

    /// Emits the history as an NCSA-style history file: one
    /// `<url> <epoch-seconds>` pair per line.
    pub fn history_file(&self) -> String {
        let st = self.state.lock();
        let mut out = String::new();
        for (url, t) in &st.history {
            out.push_str(&format!("{url} {}\n", t.0));
        }
        out
    }

    /// Marks `url` visited at `when` without fetching — used to replay
    /// recorded traces.
    pub fn mark_visited(&self, url: &str, when: Timestamp) {
        self.state.lock().history.insert(url.to_string(), when);
    }
}

/// Parses a Netscape bookmark file into bookmarks.
///
/// # Examples
///
/// ```
/// use aide_simweb::browser::parse_bookmark_file;
///
/// let file = "<DL><p>\n    <DT><A HREF=\"http://h/\">Home</A>\n</DL><p>\n";
/// let marks = parse_bookmark_file(file);
/// assert_eq!(marks.len(), 1);
/// assert_eq!(marks[0].url, "http://h/");
/// assert_eq!(marks[0].title, "Home");
/// ```
pub fn parse_bookmark_file(text: &str) -> Vec<Bookmark> {
    use aide_htmlkit::lexer::{lex, Token};
    let tokens = lex(text);
    let mut out = Vec::new();
    let mut pending_url: Option<String> = None;
    let mut title = String::new();
    for t in &tokens {
        match t {
            Token::Tag(tag) if tag.name == "A" => match tag.kind {
                aide_htmlkit::lexer::TagKind::Close => {
                    if let Some(url) = pending_url.take() {
                        out.push(Bookmark {
                            title: aide_htmlkit::entity::decode_entities(title.trim()),
                            url,
                        });
                    }
                    title.clear();
                }
                _ => {
                    if let Some(href) = tag.attr("HREF") {
                        pending_url = Some(href.to_string());
                        title.clear();
                    }
                }
            },
            Token::Text(s) if pending_url.is_some() => title.push_str(s),
            _ => {}
        }
    }
    out
}

/// Parses an NCSA Mosaic hotlist file.
///
/// The `ncsa-xmosaic-hotlist-format-1` layout: two header lines, then
/// pairs of lines — a URL followed by whitespace and a date, then the
/// title on its own line.
///
/// # Examples
///
/// ```
/// use aide_simweb::browser::parse_mosaic_hotlist;
///
/// let file = "ncsa-xmosaic-hotlist-format-1\nDefault\n\
///             http://www.usenix.org/ Fri Sep 29 12:00:00 1995\nUSENIX\n";
/// let marks = parse_mosaic_hotlist(file);
/// assert_eq!(marks.len(), 1);
/// assert_eq!(marks[0].title, "USENIX");
/// ```
pub fn parse_mosaic_hotlist(text: &str) -> Vec<Bookmark> {
    // `str::lines` strips `\r\n`; stripping a stray `\r` again tolerates
    // files whose lines were split on `\n` alone before reaching us.
    let mut lines = text.lines().map(|l| l.strip_suffix('\r').unwrap_or(l));
    // Two header lines: the format marker and the list name. An empty
    // file has neither.
    let Some(header) = lines.next() else {
        return Vec::new();
    };
    if !header.starts_with("ncsa-xmosaic-hotlist-format") {
        return Vec::new();
    }
    let _list_name = lines.next();
    let mut out = Vec::new();
    while let Some(url_line) = lines.next() {
        let Some(title) = lines.next() else { break };
        // The URL is the first whitespace-delimited token; the rest of
        // the line is the add date, which the hotlist consumer ignores.
        let Some(url) = url_line.split_whitespace().next() else {
            continue;
        };
        if url.is_empty() {
            continue;
        }
        out.push(Bookmark {
            title: title.trim().to_string(),
            url: url.to_string(),
        });
    }
    out
}

/// Parses an NCSA-style history file (`<url> <epoch-seconds>` per line).
pub fn parse_history_file(text: &str) -> BTreeMap<String, Timestamp> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        if let (Some(url), Some(secs)) = (parts.next(), parts.next()) {
            if let Ok(n) = secs.parse::<u64>() {
                out.insert(url.to_string(), Timestamp(n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::{Clock, Duration};

    fn setup() -> (Clock, Web, Browser) {
        let clock = Clock::starting_at(Timestamp(1_000_000));
        let web = Web::new(clock.clone());
        web.set_page("http://h/a.html", "<HTML>A</HTML>", Timestamp(10))
            .unwrap();
        web.set_page("http://h/b.html", "<HTML>B</HTML>", Timestamp(20))
            .unwrap();
        let browser = Browser::new(web.clone());
        (clock, web, browser)
    }

    #[test]
    fn visit_records_history() {
        let (clock, _, b) = setup();
        assert_eq!(b.last_visited("http://h/a.html"), None);
        b.visit("http://h/a.html").unwrap();
        assert_eq!(b.last_visited("http://h/a.html"), Some(clock.now()));
    }

    #[test]
    fn revisit_updates_time() {
        let (clock, _, b) = setup();
        b.visit("http://h/a.html").unwrap();
        let first = b.last_visited("http://h/a.html").unwrap();
        clock.advance(Duration::days(2));
        b.visit("http://h/a.html").unwrap();
        assert_eq!(
            b.last_visited("http://h/a.html").unwrap() - first,
            Duration::days(2)
        );
    }

    #[test]
    fn visit_of_404_still_recorded() {
        let (_, _, b) = setup();
        let r = b.visit("http://h/missing.html").unwrap();
        assert!(!r.status.is_success());
        assert!(b.last_visited("http://h/missing.html").is_some());
    }

    #[test]
    fn bookmarks_add_replace_remove() {
        let (_, _, b) = setup();
        b.add_bookmark("A page", "http://h/a.html");
        b.add_bookmark("B page", "http://h/b.html");
        b.add_bookmark("A page (renamed)", "http://h/a.html");
        let hl = b.hotlist();
        assert_eq!(hl.len(), 2);
        assert_eq!(hl[0].title, "A page (renamed)");
        assert!(b.remove_bookmark("http://h/b.html"));
        assert!(!b.remove_bookmark("http://h/b.html"));
        assert_eq!(b.hotlist().len(), 1);
    }

    #[test]
    fn bookmark_file_roundtrip() {
        let (_, _, b) = setup();
        b.add_bookmark("USENIX & friends", "http://www.usenix.org/");
        b.add_bookmark(
            "Mobile page",
            "http://snapple.cs.washington.edu:600/mobile/",
        );
        let file = b.bookmark_file();
        assert!(file.starts_with("<!DOCTYPE NETSCAPE-Bookmark-file-1>"));
        let parsed = parse_bookmark_file(&file);
        assert_eq!(parsed, b.hotlist());
    }

    #[test]
    fn history_file_roundtrip() {
        let (clock, _, b) = setup();
        b.visit("http://h/a.html").unwrap();
        clock.advance(Duration::hours(1));
        b.visit("http://h/b.html").unwrap();
        let parsed = parse_history_file(&b.history_file());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["http://h/a.html"], Timestamp(1_000_000));
        assert_eq!(parsed["http://h/b.html"], Timestamp(1_000_000 + 3600));
    }

    #[test]
    fn proxy_browser_shares_cache() {
        let (clock, web, _) = setup();
        let proxy = ProxyCache::new(web.clone(), Duration::hours(4));
        let b = Browser::with_proxy(proxy.clone());
        b.visit("http://h/a.html").unwrap();
        // The tracker can now read modification info from the proxy cache.
        let (lm, fetched) = proxy.cached_mod_info("http://h/a.html").unwrap();
        assert_eq!(lm, Some(Timestamp(10)));
        assert_eq!(fetched, clock.now());
    }

    #[test]
    fn mark_visited_replays_traces() {
        let (_, _, b) = setup();
        b.mark_visited("http://h/a.html", Timestamp(42));
        assert_eq!(b.last_visited("http://h/a.html"), Some(Timestamp(42)));
    }

    #[test]
    fn parse_bookmark_file_tolerates_noise() {
        let text =
            "<H1>Bookmarks</H1><DL><DT><A HREF=\"http://x/\">X &amp; Y</A><DD>description\n</DL>";
        let marks = parse_bookmark_file(text);
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].title, "X & Y");
    }

    #[test]
    fn mosaic_hotlist_parsing() {
        let file = "ncsa-xmosaic-hotlist-format-1\nDefault\n\
                    http://www.yahoo.com/ Mon Oct  2 09:15:00 1995\nYahoo directory\n\
                    http://snapple.cs.washington.edu:600/mobile/ Tue Oct  3 10:00:00 1995\nMobile computing\n";
        let marks = parse_mosaic_hotlist(file);
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].url, "http://www.yahoo.com/");
        assert_eq!(marks[0].title, "Yahoo directory");
        assert_eq!(marks[1].url, "http://snapple.cs.washington.edu:600/mobile/");
    }

    #[test]
    fn mosaic_hotlist_rejects_other_formats() {
        assert!(parse_mosaic_hotlist("<!DOCTYPE NETSCAPE-Bookmark-file-1>\n").is_empty());
        assert!(parse_mosaic_hotlist("").is_empty());
    }

    #[test]
    fn mosaic_hotlist_tolerates_truncation() {
        // A URL line with no following title line is dropped.
        let file = "ncsa-xmosaic-hotlist-format-1\nDefault\nhttp://x/ Mon Oct 2 1995\n";
        assert!(parse_mosaic_hotlist(file).is_empty());
    }

    #[test]
    fn mosaic_hotlist_empty_file() {
        // Regression: the header line used to be read with
        // `unwrap_or_default()`; an empty file must yield an empty
        // hotlist, not a panic or a phantom entry.
        assert!(parse_mosaic_hotlist("").is_empty());
        assert!(parse_mosaic_hotlist("\n").is_empty());
    }

    #[test]
    fn mosaic_hotlist_crlf_file_parses() {
        let file = "ncsa-xmosaic-hotlist-format-1\r\nDefault\r\n\
                    http://www.usenix.org/ Fri Sep 29 12:00:00 1995\r\nUSENIX\r\n";
        let marks = parse_mosaic_hotlist(file);
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].url, "http://www.usenix.org/");
        assert_eq!(marks[0].title, "USENIX", "no trailing CR in titles");
    }

    #[test]
    fn mosaic_hotlist_header_with_trailing_cr() {
        // `str::lines` only strips `\r` when it precedes a `\n`; a CRLF
        // file missing its final newline (or a header-only fragment)
        // leaves a bare `\r` on the last line. Both must parse clean.
        let header_only = "ncsa-xmosaic-hotlist-format-1\r";
        assert!(parse_mosaic_hotlist(header_only).is_empty());
        let file = "ncsa-xmosaic-hotlist-format-1\r\nDefault\r\nhttp://h/p X\r\nTitle\r";
        let marks = parse_mosaic_hotlist(file);
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].url, "http://h/p");
        assert_eq!(marks[0].title, "Title", "bare trailing CR stripped");
    }

    #[test]
    fn parse_history_skips_malformed_lines() {
        let h = parse_history_file("http://a/ 100\ngarbage\nhttp://b/ notanumber\nhttp://c/ 200\n");
        assert_eq!(h.len(), 2);
    }
}
