//! HTTP/1.x wire format: one parser for the simulated net and `aide-serve`.
//!
//! The [`http`](crate::http) module models HTTP as *typed values* — the
//! slice of the protocol AIDE's tools exchange. This module owns the
//! *byte* representation: an incremental request parser, a response
//! serializer, and conversions to and from the typed model. `aide-serve`
//! runs [`RequestParser`] against real socket bytes; [`handle_wire`]
//! runs the very same parser in front of the simulated [`Web`], so a
//! parser bug cannot hide in whichever of the two paths a test happens
//! not to exercise.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never hang.** Every input byte sequence — however
//!    malformed, truncated, or adversarial — yields `Ok(Some)`,
//!    `Ok(None)` ("need more bytes"), or a typed [`ParseError`], within
//!    the hard [`Limits`]. The torture suite and a proptest feed this
//!    parser arbitrary bytes.
//! 2. **Incremental.** Bytes arrive in whatever chunks the transport
//!    produces (the torture tests go byte-at-a-time); leftover bytes
//!    after a complete request stay buffered, which is what makes
//!    pipelining work.
//! 3. **Deterministic.** Parsing is a pure function of the byte stream;
//!    serialization emits headers in the order given. Two same-input
//!    runs are byte-identical.

use crate::http::{Method, Request, Response, Status};
use crate::net::Web;
use aide_util::time::Timestamp;
use std::fmt;

/// Hard ceilings the parser enforces while data is still arriving, so a
/// hostile client can neither balloon memory nor wedge a worker by
/// trickling an endless header section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line, bytes (CRLF included).
    pub max_request_line: usize,
    /// Longest accepted header section, bytes (all lines together).
    pub max_header_bytes: usize,
    /// Most headers accepted in one request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 100,
            max_body: 1024 * 1024,
        }
    }
}

/// HTTP version of a parsed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// `HTTP/1.0`: one request per connection unless keep-alive is asked.
    H10,
    /// `HTTP/1.1`: persistent by default.
    H11,
}

impl fmt::Display for HttpVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpVersion::H10 => write!(f, "HTTP/1.0"),
            HttpVersion::H11 => write!(f, "HTTP/1.1"),
        }
    }
}

/// Why a byte stream failed to parse as a request. Each variant maps to
/// the status code a server should answer with before closing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine,
    /// The version token is not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
    /// A header line has no `:` or a name with illegal characters.
    BadHeader,
    /// The request line exceeded [`Limits::max_request_line`].
    RequestLineTooLong,
    /// The header section exceeded [`Limits::max_header_bytes`].
    HeadersTooLarge,
    /// More than [`Limits::max_headers`] header lines.
    TooManyHeaders,
    /// `Content-Length` is not a number (or conflicts between copies).
    BadContentLength,
    /// The declared body exceeds [`Limits::max_body`].
    BodyTooLarge,
    /// `Transfer-Encoding` — the one 1.1 body mechanism this server
    /// deliberately does not implement.
    UnsupportedTransferEncoding,
}

impl ParseError {
    /// The status code a server answers with before closing.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::RequestLineTooLong => 414,
            ParseError::HeadersTooLarge | ParseError::TooManyHeaders => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequestLine => write!(f, "malformed request line"),
            ParseError::BadVersion => write!(f, "unsupported HTTP version"),
            ParseError::BadHeader => write!(f, "malformed header line"),
            ParseError::RequestLineTooLong => write!(f, "request line too long"),
            ParseError::HeadersTooLarge => write!(f, "header section too large"),
            ParseError::TooManyHeaders => write!(f, "too many header fields"),
            ParseError::BadContentLength => write!(f, "bad Content-Length"),
            ParseError::BodyTooLarge => write!(f, "request body too large"),
            ParseError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding not supported")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// One parsed request, headers in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Method token, verbatim (`GET`, `HEAD`, …). Always uppercase in
    /// valid requests; the parser does not case-fold it.
    pub method: String,
    /// Request target, verbatim: origin-form (`/diff?url=…`) from a
    /// browser, absolute-form (`http://h/p`) from a proxy client.
    pub target: String,
    /// Protocol version.
    pub version: HttpVersion,
    /// Header fields in arrival order, names case-preserved.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl WireRequest {
    /// First header named `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to persistent unless `Connection: close`;
    /// HTTP/1.0 defaults to closing unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let conn = self.header("connection").unwrap_or("");
        match self.version {
            HttpVersion::H11 => !conn.eq_ignore_ascii_case("close"),
            HttpVersion::H10 => conn.eq_ignore_ascii_case("keep-alive"),
        }
    }

    /// Serializes back to wire bytes (the proptest round-trip target).
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.extend_from_slice(
            format!("{} {} {}\r\n", self.method, self.target, self.version).as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Is `b` legal in a header field name (RFC 7230 `tchar`)?
fn is_tchar(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Incremental request parser over a growing byte buffer.
///
/// Feed bytes with [`RequestParser::push`]; pull complete requests with
/// [`RequestParser::take_request`]. Unconsumed bytes (the start of a
/// pipelined successor) remain buffered for the next call.
///
/// # Examples
///
/// ```
/// use aide_simweb::wire::RequestParser;
///
/// let mut p = RequestParser::new();
/// p.push(b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HT");
/// let a = p.take_request().unwrap().unwrap();
/// assert_eq!(a.target, "/a");
/// assert!(p.take_request().unwrap().is_none(), "second still partial");
/// p.push(b"TP/1.1\r\n\r\n");
/// assert_eq!(p.take_request().unwrap().unwrap().target, "/b");
/// ```
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    limits: Limits,
}

impl RequestParser {
    /// A parser with default [`Limits`].
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            limits: Limits::default(),
        }
    }

    /// A parser with explicit limits (the torture suite shrinks them).
    pub fn with_limits(limits: Limits) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            limits,
        }
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    ///
    /// `Ok(Some(req))` consumes the request's bytes; `Ok(None)` means
    /// the data so far is a valid prefix and more bytes are needed;
    /// `Err` means the stream is unsalvageable and the connection should
    /// be answered with [`ParseError::status`] and closed.
    pub fn take_request(&mut self) -> Result<Option<WireRequest>, ParseError> {
        // --- request line ---
        let Some(line_end) = find_crlf(&self.buf, 0) else {
            if self.buf.len() > self.limits.max_request_line {
                return Err(ParseError::RequestLineTooLong);
            }
            return Ok(None);
        };
        if line_end > self.limits.max_request_line {
            return Err(ParseError::RequestLineTooLong);
        }
        let line_str =
            std::str::from_utf8(&self.buf[..line_end]).map_err(|_| ParseError::BadRequestLine)?;
        let mut words = line_str.split(' ');
        let (method, target, version_tok) =
            match (words.next(), words.next(), words.next(), words.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => return Err(ParseError::BadRequestLine),
            };
        if !method.bytes().all(is_tchar) {
            return Err(ParseError::BadRequestLine);
        }
        let version = match version_tok {
            "HTTP/1.1" => HttpVersion::H11,
            "HTTP/1.0" => HttpVersion::H10,
            _ => return Err(ParseError::BadVersion),
        };
        let (method, target) = (method.to_string(), target.to_string());

        // --- header section ---
        let headers_start = line_end + 2;
        let mut headers: Vec<(String, String)> = Vec::new();
        let mut pos = headers_start;
        let body_start;
        loop {
            if pos - headers_start > self.limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            let Some(eol) = find_crlf(&self.buf, pos) else {
                if self.buf.len() - headers_start > self.limits.max_header_bytes {
                    return Err(ParseError::HeadersTooLarge);
                }
                return Ok(None);
            };
            if eol == pos {
                // Empty line: end of headers.
                body_start = pos + 2;
                break;
            }
            if eol - headers_start > self.limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            if headers.len() == self.limits.max_headers {
                return Err(ParseError::TooManyHeaders);
            }
            let raw = &self.buf[pos..eol];
            let text = std::str::from_utf8(raw).map_err(|_| ParseError::BadHeader)?;
            let (name, value) = text.split_once(':').ok_or(ParseError::BadHeader)?;
            if name.is_empty() || !name.bytes().all(is_tchar) {
                // Leading whitespace in the name also lands here, which
                // rejects obsolete line folding — per RFC 7230 §3.2.4.
                return Err(ParseError::BadHeader);
            }
            headers.push((name.to_string(), value.trim().to_string()));
            pos = eol + 2;
        }

        // --- body ---
        if headers
            .iter()
            .any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding"))
        {
            return Err(ParseError::UnsupportedTransferEncoding);
        }
        let mut content_length = 0usize;
        let mut seen_cl: Option<usize> = None;
        for (n, v) in &headers {
            if n.eq_ignore_ascii_case("content-length") {
                let parsed: usize = v.parse().map_err(|_| ParseError::BadContentLength)?;
                if seen_cl.is_some_and(|prev| prev != parsed) {
                    return Err(ParseError::BadContentLength);
                }
                seen_cl = Some(parsed);
                content_length = parsed;
            }
        }
        if content_length > self.limits.max_body {
            return Err(ParseError::BodyTooLarge);
        }
        if self.buf.len() < body_start + content_length {
            return Ok(None);
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(Some(WireRequest {
            method,
            target,
            version,
            headers,
            body,
        }))
    }
}

/// Position of the next CRLF at or after `from`, if any.
fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    if buf.len() < 2 {
        return None;
    }
    (from..buf.len() - 1).find(|&i| buf[i] == b'\r' && buf[i + 1] == b'\n')
}

/// Canonical reason phrase for the codes this workspace emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        301 => "Moved Permanently",
        302 => "Found",
        304 => "Not Modified",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        406 => "Not Acceptable",
        410 => "Gone",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// An HTTP response being assembled for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Status code.
    pub status: u16,
    /// Header fields, emitted in push order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl WireResponse {
    /// An empty response with `status`.
    pub fn new(status: u16) -> WireResponse {
        WireResponse {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Appends a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> WireResponse {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body (builder style). `Content-Length` is emitted at
    /// serialization time, never stored, so it cannot go stale.
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> WireResponse {
        self.body = body.into();
        self
    }

    /// First header named `name`, case-insensitively.
    pub fn find_header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes status line, headers, `Content-Length` and body.
    ///
    /// `head_only` suppresses the body bytes while keeping the headers
    /// (including `Content-Length`) — the HEAD contract.
    pub fn serialize(&self, head_only: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status,
                reason_phrase(self.status)
            )
            .as_bytes(),
        );
        for (n, v) in &self.headers {
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        // 304s carry no body by definition; everything else declares its
        // length so keep-alive clients know where the next response starts.
        if self.status != 304 {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        if !head_only && self.status != 304 {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

/// Converts a parsed wire request into the typed simulation request.
///
/// The simulated [`Web`] dispatches on absolute URLs (it plays the role
/// of the whole network, the way a proxy sees absolute-form targets), so
/// origin-form targets are rejected here — `aide-serve` handles those
/// itself and never calls this.
pub fn to_sim_request(wire: &WireRequest) -> Result<Request, ParseError> {
    let method = match wire.method.as_str() {
        "HEAD" => Method::Head,
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => return Err(ParseError::BadRequestLine),
    };
    if !wire.target.contains("://") {
        return Err(ParseError::BadRequestLine);
    }
    let mut req = Request {
        method,
        url: wire.target.clone(),
        if_modified_since: None,
        user_agent: wire.header("user-agent").unwrap_or("").to_string(),
        timeout_secs: Request::DEFAULT_TIMEOUT_SECS,
        body: if wire.body.is_empty() {
            None
        } else {
            Some(String::from_utf8_lossy(&wire.body).into_owned())
        },
    };
    if let Some(ims) = wire.header("if-modified-since") {
        req.if_modified_since = Timestamp::parse_http_date(ims);
    }
    Ok(req)
}

/// Renders a typed simulation response onto the wire.
pub fn from_sim_response(resp: &Response) -> WireResponse {
    let mut w = WireResponse::new(match resp.status {
        Status::Ok => 200,
        Status::NotModified => 304,
        Status::MovedPermanently => 301,
        Status::Forbidden => 403,
        Status::NotFound => 404,
        Status::Gone => 410,
        Status::ServerError => 500,
        Status::ServiceUnavailable => 503,
    });
    w = w.header("Date", &resp.date.to_http_date());
    if let Some(lm) = resp.last_modified {
        w = w.header("Last-Modified", &lm.to_http_date());
    }
    if let Some(loc) = &resp.location {
        w = w.header("Location", loc);
    }
    if let Some(ra) = resp.retry_after {
        w = w.header("Retry-After", &ra.to_string());
    }
    w.body(resp.body.clone().into_bytes())
}

/// Serves one buffered wire exchange against the simulated Web: parse
/// with the shared [`RequestParser`], dispatch, serialize. Network-level
/// failures (dead host, timeout) have no HTTP rendering — they surface
/// as `Err`, exactly as a real client sees a connection error rather
/// than a status line.
pub fn handle_wire(web: &Web, raw: &[u8]) -> Result<Vec<u8>, crate::http::NetError> {
    let mut parser = RequestParser::new();
    parser.push(raw);
    let wire = match parser.take_request() {
        Ok(Some(w)) => w,
        Ok(None) => return Ok(error_response(400, "truncated request").serialize(false)),
        Err(e) => return Ok(error_response(e.status(), &e.to_string()).serialize(false)),
    };
    let head_only = wire.method == "HEAD";
    let req = match to_sim_request(&wire) {
        Ok(r) => r,
        Err(e) => return Ok(error_response(e.status(), &e.to_string()).serialize(false)),
    };
    let resp = web.request(&req)?;
    Ok(from_sim_response(&resp).serialize(head_only))
}

/// A minimal HTML error page with `Connection: close`.
pub fn error_response(status: u16, detail: &str) -> WireResponse {
    WireResponse::new(status)
        .header("Content-Type", "text/html")
        .header("Connection", "close")
        .body(format!(
            "<HTML><HEAD><TITLE>{status} {reason}</TITLE></HEAD><BODY>\
             <H1>{status} {reason}</H1><P>{detail}</BODY></HTML>\n",
            reason = reason_phrase(status),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Clock;

    fn parse_one(bytes: &[u8]) -> Result<Option<WireRequest>, ParseError> {
        let mut p = RequestParser::new();
        p.push(bytes);
        p.take_request()
    }

    #[test]
    fn simple_get() {
        let r = parse_one(b"GET /x?a=1 HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/x?a=1");
        assert_eq!(r.version, HttpVersion::H11);
        assert_eq!(r.header("HOST"), Some("h"));
        assert!(r.body.is_empty());
        assert!(r.keep_alive());
    }

    #[test]
    fn body_via_content_length() {
        let r = parse_one(b"POST /f HTTP/1.0\r\nContent-Length: 3\r\n\r\nabcXYZ")
            .unwrap()
            .unwrap();
        assert_eq!(r.body, b"abc");
        assert!(!r.keep_alive(), "1.0 defaults to close");
    }

    #[test]
    fn incomplete_returns_none() {
        assert_eq!(parse_one(b"GET / HTTP/1.1\r\nHost:"), Ok(None));
        assert_eq!(parse_one(b"GET / HT"), Ok(None));
        assert_eq!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Ok(None)
        );
    }

    #[test]
    fn malformed_lines_error() {
        assert_eq!(parse_one(b"\r\n\r\n"), Err(ParseError::BadRequestLine));
        assert_eq!(
            parse_one(b"GET/HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequestLine)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/2.0\r\n\r\n"),
            Err(ParseError::BadVersion)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::BadHeader)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ParseError::BadContentLength)
        );
        assert_eq!(
            parse_one(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        );
    }

    #[test]
    fn limits_enforced_incrementally() {
        let limits = Limits {
            max_request_line: 32,
            max_header_bytes: 64,
            max_headers: 2,
            max_body: 16,
        };
        // Request line never terminated: the parser flags it as soon as
        // the buffer outgrows the limit, without waiting for CRLF.
        let mut p = RequestParser::with_limits(limits);
        p.push(&[b'A'; 33]);
        assert_eq!(p.take_request(), Err(ParseError::RequestLineTooLong));

        let mut p = RequestParser::with_limits(limits);
        p.push(b"GET / HTTP/1.1\r\n");
        p.push(&[b'h'; 65]);
        assert_eq!(p.take_request(), Err(ParseError::HeadersTooLarge));

        let mut p = RequestParser::with_limits(limits);
        p.push(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n");
        assert_eq!(p.take_request(), Err(ParseError::TooManyHeaders));

        let mut p = RequestParser::with_limits(limits);
        p.push(b"POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
        assert_eq!(p.take_request(), Err(ParseError::BodyTooLarge));
    }

    #[test]
    fn pipelined_requests_stay_buffered() {
        let mut p = RequestParser::new();
        p.push(b"GET /1 HTTP/1.1\r\n\r\nGET /2 HTTP/1.1\r\n\r\n");
        assert_eq!(p.take_request().unwrap().unwrap().target, "/1");
        assert_eq!(p.take_request().unwrap().unwrap().target, "/2");
        assert_eq!(p.take_request(), Ok(None));
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn serialize_roundtrip() {
        let req = WireRequest {
            method: "POST".to_string(),
            target: "/submit".to_string(),
            version: HttpVersion::H11,
            headers: vec![
                ("Host".to_string(), "example".to_string()),
                ("Content-Length".to_string(), "4".to_string()),
            ],
            body: b"a=b1".to_vec(),
        };
        let parsed = parse_one(&req.serialize()).unwrap().unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_serialization() {
        let r = WireResponse::new(200)
            .header("Content-Type", "text/html")
            .body("hi");
        let s = String::from_utf8(r.serialize(false)).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 2\r\n"));
        assert!(s.ends_with("\r\n\r\nhi"));
        let head = String::from_utf8(r.serialize(true)).unwrap();
        assert!(head.contains("Content-Length: 2\r\n"));
        assert!(head.ends_with("\r\n\r\n"), "HEAD drops the body");
        let nm = WireResponse::new(304).serialize(false);
        let nm = String::from_utf8(nm).unwrap();
        assert!(!nm.contains("Content-Length"), "304 carries no length");
    }

    #[test]
    fn sim_dispatch_through_wire() {
        let web = Web::new(Clock::starting_at(Timestamp(1000)));
        web.set_page("http://h/p", "<HTML>hello wire</HTML>", Timestamp(500))
            .unwrap();
        let out = handle_wire(&web, b"GET http://h/p HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Last-Modified: "));
        assert!(text.ends_with("<HTML>hello wire</HTML>"));

        // Conditional GET travels the same path.
        let out = handle_wire(
            &web,
            format!(
                "GET http://h/p HTTP/1.1\r\nIf-Modified-Since: {}\r\n\r\n",
                Timestamp(600).to_http_date()
            )
            .as_bytes(),
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("HTTP/1.1 304"));

        // Parse failures render as HTTP errors, not panics.
        let out = handle_wire(&web, b"BOGUS\r\n\r\n").unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("HTTP/1.1 400"));

        // Origin-form targets make no sense against the whole-net Web.
        let out = handle_wire(&web, b"GET /p HTTP/1.1\r\n\r\n").unwrap();
        assert!(String::from_utf8(out).unwrap().starts_with("HTTP/1.1 400"));

        // Network-level failures surface as errors, not responses.
        assert!(handle_wire(&web, b"GET http://nowhere/ HTTP/1.1\r\n\r\n").is_err());
    }
}
