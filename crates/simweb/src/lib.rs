//! A deterministic simulated Web.
//!
//! The paper's tools ran against the live 1995 Web: HTTP/1.0 origin
//! servers, CGI scripts whose output embeds counters and clocks, an
//! AT&T-wide proxy-caching server, `robots.txt` files, and the full
//! catalogue of §3.1 error conditions (moved URLs, dead servers,
//! overloaded proxies timing out requests, robot exclusions). None of
//! that is reachable from a test suite, so this crate rebuilds it as an
//! in-process simulation driven by a virtual [`Clock`]:
//!
//! - [`http`]: request/response types — methods, status codes, the
//!   headers AIDE reads (`Last-Modified`, `Location`, `Content-Length`) —
//!   and the network error taxonomy.
//! - [`resource`]: what a URL serves — static pages with modification
//!   dates, CGI pages (hit counters, clock pages; no `Last-Modified`),
//!   redirects, tombstones.
//! - [`server`]: an origin server — a host with resources, a
//!   `robots.txt`, an up/slow/down state and per-server accounting.
//! - [`net`]: the [`Web`] itself — the host registry, request dispatch,
//!   conditional GET semantics, failure injection and global request
//!   accounting (the quantity the §3 scalability experiments count).
//! - [`wire`]: the HTTP/1.x byte format — an incremental request parser
//!   and response serializer shared with `aide-serve`, so the simulated
//!   net and the real server run the same parser.
//! - [`fault`]: scripted, deterministic fault plans — probabilistic
//!   per-host fault rates and time-windowed outage episodes layered over
//!   the static server-state knobs.
//! - [`proxy`]: a caching proxy with TTL semantics — both a page source
//!   and, for w3newer, a source of cached modification dates.
//! - [`browser`]: a simulated user browser with a history file and a
//!   hotlist, the two local inputs w3newer reads.
//!
//! Everything is cheaply cloneable handle-style (shared state behind
//! locks), so a tracker, a snapshot service and a dozen browsers can all
//! point at one Web, exactly as processes on different machines pointed
//! at the one real Web.
//!
//! [`Clock`]: aide_util::time::Clock

pub mod browser;
pub mod fault;
pub mod http;
pub mod net;
pub mod proxy;
pub mod resource;
pub mod server;
pub mod wire;

pub use browser::Browser;
pub use fault::{FaultEpisode, FaultKind, FaultPlan};
pub use http::{Method, NetError, Request, Response, Status};
pub use net::{NetStats, Web};
pub use proxy::ProxyCache;
pub use resource::Resource;
pub use server::ServerState;
