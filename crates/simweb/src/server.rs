//! A simulated origin server.
//!
//! A host with a resource table, a `robots.txt`, an operational state
//! (up, slow, down — §3.1's "proxy-caching servers are sometimes
//! overloaded to the point of timing out large numbers of requests"
//! applies to origins too) and per-server request accounting, which the
//! Table 1 experiment uses to show thresholds "reduce unnecessary load on
//! that server".

use crate::http::{Method, Request, Response, Status};
use crate::resource::Resource;
use aide_util::time::Timestamp;
use std::collections::BTreeMap;

/// Operational state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Serving normally.
    Up,
    /// Serving, but each request takes `delay_secs` — requests whose
    /// client timeout is smaller fail with a timeout.
    Slow {
        /// Response delay in seconds.
        delay_secs: u64,
    },
    /// The host resolves but nothing answers (connection refused).
    Down,
}

/// Per-server request counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// HEAD requests served (including errors).
    pub heads: u64,
    /// GET requests served.
    pub gets: u64,
    /// POST requests served.
    pub posts: u64,
    /// Conditional GETs answered with 304.
    pub not_modified: u64,
}

impl ServerStats {
    /// Total requests of all methods.
    pub fn total(&self) -> u64 {
        self.heads + self.gets + self.posts
    }
}

/// One origin server.
#[derive(Debug, Clone)]
pub struct OriginServer {
    /// Hostname (lowercase).
    pub host: String,
    resources: BTreeMap<String, Resource>,
    robots_txt: Option<String>,
    state: ServerState,
    stats: ServerStats,
}

impl OriginServer {
    /// Creates an empty, up server for `host`.
    pub fn new(host: &str) -> OriginServer {
        OriginServer {
            host: host.to_ascii_lowercase(),
            resources: BTreeMap::new(),
            robots_txt: None,
            state: ServerState::Up,
            stats: ServerStats::default(),
        }
    }

    /// Installs (or replaces) the resource at `path`.
    pub fn set_resource(&mut self, path: &str, resource: Resource) {
        self.resources.insert(path.to_string(), resource);
    }

    /// Removes the resource at `path`; returns whether one existed.
    pub fn remove_resource(&mut self, path: &str) -> bool {
        self.resources.remove(path).is_some()
    }

    /// Reads the resource at `path`.
    pub fn resource(&self, path: &str) -> Option<&Resource> {
        self.resources.get(path)
    }

    /// Mutable access, for page-evolution drivers.
    pub fn resource_mut(&mut self, path: &str) -> Option<&mut Resource> {
        self.resources.get_mut(path)
    }

    /// All paths, sorted.
    pub fn paths(&self) -> Vec<&str> {
        self.resources.keys().map(String::as_str).collect()
    }

    /// Installs a `robots.txt` body (served at `/robots.txt`).
    pub fn set_robots_txt(&mut self, text: &str) {
        self.robots_txt = Some(text.to_string());
    }

    /// Sets the operational state.
    pub fn set_state(&mut self, state: ServerState) {
        self.state = state;
    }

    /// Current operational state.
    pub fn state(&self) -> ServerState {
        self.state
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Resets counters (between experiment phases).
    pub fn reset_stats(&mut self) {
        self.stats = ServerStats::default();
    }

    /// Serves one request at time `now`. Network-level outcomes (down,
    /// slow-past-timeout) are the caller's concern — the [`crate::net::Web`]
    /// checks [`OriginServer::state`] first; by the time this runs, the
    /// server is answering.
    pub fn serve(&mut self, req: &Request, path: &str, now: Timestamp) -> Response {
        match req.method {
            Method::Head => self.stats.heads += 1,
            Method::Get => self.stats.gets += 1,
            Method::Post => self.stats.posts += 1,
        }
        if path == "/robots.txt" {
            if let Some(text) = &self.robots_txt {
                return Response {
                    status: Status::Ok,
                    last_modified: None,
                    location: None,
                    content_length: text.len(),
                    body: if req.method == Method::Head {
                        String::new()
                    } else {
                        text.clone()
                    },
                    date: now,
                    retry_after: None,
                };
            }
            // Fall through: a literal resource may shadow it, else 404.
        }
        let Some(resource) = self.resources.get_mut(path) else {
            return Response {
                status: Status::NotFound,
                last_modified: None,
                location: None,
                content_length: 0,
                body: String::new(),
                date: now,
                retry_after: None,
            };
        };
        match resource {
            Resource::Moved { location } => Response {
                status: Status::MovedPermanently,
                last_modified: None,
                location: Some(location.clone()),
                content_length: 0,
                body: String::new(),
                date: now,
                retry_after: None,
            },
            Resource::Gone => Response {
                status: Status::Gone,
                last_modified: None,
                location: None,
                content_length: 0,
                body: String::new(),
                date: now,
                retry_after: None,
            },
            Resource::Page {
                body,
                last_modified,
            } => {
                // Conditional GET: 304 if unmodified since the client's date.
                if let Some(since) = req.if_modified_since {
                    if *last_modified <= since && req.method != Method::Head {
                        self.stats.not_modified += 1;
                        return Response {
                            status: Status::NotModified,
                            last_modified: Some(*last_modified),
                            location: None,
                            content_length: body.len(),
                            body: String::new(),
                            date: now,
                            retry_after: None,
                        };
                    }
                }
                Response {
                    status: Status::Ok,
                    last_modified: Some(*last_modified),
                    location: None,
                    content_length: body.len(),
                    body: if req.method == Method::Head {
                        String::new()
                    } else {
                        body.clone()
                    },
                    date: now,
                    retry_after: None,
                }
            }
            cgi @ Resource::Cgi { .. } => {
                let len = cgi.peek_len(now);
                let body = if req.method == Method::Head {
                    String::new()
                } else {
                    cgi.materialize_with_input(now, req.body.as_deref().unwrap_or(""))
                };
                Response {
                    status: Status::Ok,
                    last_modified: None,
                    location: None,
                    content_length: if req.method == Method::Head {
                        len
                    } else {
                        body.len()
                    },
                    body,
                    date: now,
                    retry_after: None,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> OriginServer {
        let mut s = OriginServer::new("WWW.Example.COM");
        s.set_resource(
            "/index.html",
            Resource::page("<HTML>home</HTML>", Timestamp(500)),
        );
        s.set_resource("/cgi-bin/count", Resource::hit_counter("hits={HITS}"));
        s.set_resource(
            "/old.html",
            Resource::Moved {
                location: "http://www.example.com/new.html".into(),
            },
        );
        s.set_resource("/dead.html", Resource::Gone);
        s
    }

    #[test]
    fn host_lowercased() {
        assert_eq!(server().host, "www.example.com");
    }

    #[test]
    fn head_returns_headers_only() {
        let mut s = server();
        let r = s.serve(&Request::head("u"), "/index.html", Timestamp(1000));
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.last_modified, Some(Timestamp(500)));
        assert_eq!(r.content_length, 17);
        assert!(r.body.is_empty());
    }

    #[test]
    fn get_returns_body() {
        let mut s = server();
        let r = s.serve(&Request::get("u"), "/index.html", Timestamp(1000));
        assert_eq!(r.body, "<HTML>home</HTML>");
    }

    #[test]
    fn conditional_get_304() {
        let mut s = server();
        let fresh = s.serve(
            &Request::get("u").if_modified_since(Timestamp(600)),
            "/index.html",
            Timestamp(1000),
        );
        assert_eq!(fresh.status, Status::NotModified);
        assert!(fresh.body.is_empty());
        let stale = s.serve(
            &Request::get("u").if_modified_since(Timestamp(400)),
            "/index.html",
            Timestamp(1000),
        );
        assert_eq!(stale.status, Status::Ok);
        assert_eq!(s.stats().not_modified, 1);
    }

    #[test]
    fn cgi_has_no_last_modified_and_mutates() {
        let mut s = server();
        let a = s.serve(&Request::get("u"), "/cgi-bin/count", Timestamp(1));
        let b = s.serve(&Request::get("u"), "/cgi-bin/count", Timestamp(1));
        assert_eq!(a.last_modified, None);
        assert_ne!(a.body, b.body);
    }

    #[test]
    fn cgi_head_does_not_bump_counter() {
        let mut s = server();
        let _ = s.serve(&Request::head("u"), "/cgi-bin/count", Timestamp(1));
        let g = s.serve(&Request::get("u"), "/cgi-bin/count", Timestamp(1));
        assert_eq!(g.body, "hits=1");
    }

    #[test]
    fn moved_gone_notfound() {
        let mut s = server();
        let m = s.serve(&Request::head("u"), "/old.html", Timestamp(1));
        assert_eq!(m.status, Status::MovedPermanently);
        assert_eq!(
            m.location.as_deref(),
            Some("http://www.example.com/new.html")
        );
        assert_eq!(
            s.serve(&Request::head("u"), "/dead.html", Timestamp(1))
                .status,
            Status::Gone
        );
        assert_eq!(
            s.serve(&Request::head("u"), "/missing", Timestamp(1))
                .status,
            Status::NotFound
        );
    }

    #[test]
    fn robots_txt_served() {
        let mut s = server();
        s.set_robots_txt("User-agent: *\nDisallow: /cgi-bin/\n");
        let r = s.serve(&Request::get("u"), "/robots.txt", Timestamp(1));
        assert_eq!(r.status, Status::Ok);
        assert!(r.body.contains("Disallow"));
    }

    #[test]
    fn missing_robots_txt_is_404() {
        let mut s = server();
        assert_eq!(
            s.serve(&Request::get("u"), "/robots.txt", Timestamp(1))
                .status,
            Status::NotFound
        );
    }

    #[test]
    fn stats_count_by_method() {
        let mut s = server();
        s.serve(&Request::head("u"), "/index.html", Timestamp(1));
        s.serve(&Request::head("u"), "/index.html", Timestamp(1));
        s.serve(&Request::get("u"), "/index.html", Timestamp(1));
        let st = s.stats();
        assert_eq!(st.heads, 2);
        assert_eq!(st.gets, 1);
        assert_eq!(st.total(), 3);
        s.reset_stats();
        assert_eq!(s.stats().total(), 0);
    }

    #[test]
    fn resource_mut_allows_evolution() {
        let mut s = server();
        if let Some(Resource::Page {
            body,
            last_modified,
        }) = s.resource_mut("/index.html")
        {
            *body = "<HTML>v2</HTML>".to_string();
            *last_modified = Timestamp(900);
        }
        let r = s.serve(&Request::get("u"), "/index.html", Timestamp(1000));
        assert_eq!(r.body, "<HTML>v2</HTML>");
        assert_eq!(r.last_modified, Some(Timestamp(900)));
    }
}
