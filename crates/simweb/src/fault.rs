//! Scripted, deterministic fault injection for the simulated Web.
//!
//! The static knobs ([`ServerState`](crate::server::ServerState),
//! [`Web::set_network_up`](crate::net::Web::set_network_up)) flip a whole
//! host between healthy and broken. Real webs fail *probabilistically and
//! episodically*: a fraction of requests time out, a host disappears for
//! an afternoon, an overloaded CGI returns 503 with a `Retry-After`, a
//! proxy truncates a body mid-transfer. A [`FaultPlan`] scripts exactly
//! that, and does it deterministically: every injection decision is a
//! pure function of `(seed, host, path, draw-index, episode-index)` plus
//! the virtual clock for episode windows, so a run with a given seed
//! replays the same faults request for request — the property the
//! fault-tolerance suite and CI determinism check rely on.
//!
//! The draw index is a per-`(host, path)` counter kept by the [`Web`]:
//! the n-th request to a resource always sees the n-th draw, regardless
//! of how other hosts' traffic interleaves, so per-host request streams
//! are schedule-independent (the tracker's per-host politeness serializes
//! each host's requests within a run).
//!
//! [`Web`]: crate::net::Web

use crate::http::Status;
use aide_util::checksum::fnv1a64;
use aide_util::rng::Rng;
use aide_util::time::Timestamp;
use std::collections::BTreeMap;

/// What a triggered fault does to the request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The request never completes within the client timeout.
    Timeout,
    /// The host resolves but nothing answers.
    ConnectionRefused,
    /// No route to the host.
    HostUnreachable,
    /// The server answers, but `delay_secs` late — requests whose client
    /// timeout is smaller fail with a timeout, patient ones succeed.
    Slow {
        /// Added response delay in seconds.
        delay_secs: u64,
    },
    /// The server answers with a transient HTTP failure (500/503)
    /// instead of consulting the resource.
    Transient {
        /// The status to return (`ServerError` or `ServiceUnavailable`).
        status: Status,
        /// `Retry-After` seconds attached to the response, if any.
        retry_after_secs: Option<u64>,
    },
    /// The body is cut off after `keep_bytes`, while `Content-Length`
    /// still advertises the full size — the checksum-corruption case.
    Truncate {
        /// Bytes of the real body to keep.
        keep_bytes: usize,
    },
}

/// One scripted failure mode: a fault, how often, and (optionally) when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// Active only while `window.0 <= now < window.1`; `None` = always.
    pub window: Option<(Timestamp, Timestamp)>,
    /// Probability a matching request triggers the fault (1.0 = every
    /// request while the episode is active).
    pub rate: f64,
    /// What happens when it triggers.
    pub kind: FaultKind,
}

impl FaultEpisode {
    /// An always-active episode firing on a fraction of requests.
    pub fn rate(rate: f64, kind: FaultKind) -> FaultEpisode {
        FaultEpisode {
            window: None,
            rate,
            kind,
        }
    }

    /// A hard outage: `kind` on every request inside `[from, until)`.
    pub fn outage(from: Timestamp, until: Timestamp, kind: FaultKind) -> FaultEpisode {
        FaultEpisode {
            window: Some((from, until)),
            rate: 1.0,
            kind,
        }
    }

    /// Restricts the episode to `[from, until)` (builder style).
    pub fn between(mut self, from: Timestamp, until: Timestamp) -> FaultEpisode {
        self.window = Some((from, until));
        self
    }

    fn active(&self, now: Timestamp) -> bool {
        match self.window {
            Some((from, until)) => from <= now && now < until,
            None => true,
        }
    }
}

/// A deterministic fault script for a whole [`Web`](crate::net::Web).
///
/// Per-host episodes are consulted first (in insertion order), then
/// episodes applying to every host; the first active episode whose draw
/// fires wins.
///
/// # Examples
///
/// ```
/// use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
/// use aide_util::time::Timestamp;
///
/// let plan = FaultPlan::new(42)
///     .everywhere(FaultEpisode::rate(0.2, FaultKind::Timeout))
///     .for_host(
///         "flaky.example.com",
///         FaultEpisode::outage(Timestamp(100), Timestamp(300), FaultKind::ConnectionRefused),
///     );
/// // Decisions are pure: same inputs, same outcome.
/// let a = plan.decide("flaky.example.com", "/p", 0, Timestamp(150));
/// let b = plan.decide("flaky.example.com", "/p", 0, Timestamp(150));
/// assert_eq!(a, b);
/// assert_eq!(a, Some(FaultKind::ConnectionRefused));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    hosts: BTreeMap<String, Vec<FaultEpisode>>,
    global: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// Creates an empty plan drawing from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            hosts: BTreeMap::new(),
            global: Vec::new(),
        }
    }

    /// Adds an episode for one host (builder style).
    pub fn for_host(mut self, host: &str, episode: FaultEpisode) -> FaultPlan {
        self.hosts
            .entry(host.to_ascii_lowercase())
            .or_default()
            .push(episode);
        self
    }

    /// Adds an episode applying to every host (builder style).
    pub fn everywhere(mut self, episode: FaultEpisode) -> FaultPlan {
        self.global.push(episode);
        self
    }

    /// True if the plan contains no episodes at all.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty() && self.global.is_empty()
    }

    /// Decides whether the `draw`-th request to `(host, path)` at time
    /// `now` faults, and how. Pure: no internal state is consumed.
    pub fn decide(&self, host: &str, path: &str, draw: u64, now: Timestamp) -> Option<FaultKind> {
        let per_host = self.hosts.get(host).map(Vec::as_slice).unwrap_or(&[]);
        for (idx, ep) in per_host.iter().chain(self.global.iter()).enumerate() {
            if !ep.active(now) {
                continue;
            }
            if ep.rate >= 1.0 || self.draw(host, path, draw, idx).chance(ep.rate) {
                return Some(ep.kind);
            }
        }
        None
    }

    /// The deterministic per-decision generator: every `(seed, host,
    /// path, draw, episode)` combination owns an independent stream.
    fn draw(&self, host: &str, path: &str, draw: u64, episode: usize) -> Rng {
        let mut h = self.seed ^ fnv1a64(host.as_bytes());
        h = h.rotate_left(13) ^ fnv1a64(path.as_bytes());
        h = h
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(draw)
            .rotate_left(31)
            ^ episode as u64;
        Rng::new(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::new(7)
            .everywhere(FaultEpisode::rate(0.5, FaultKind::Timeout))
            .for_host(
                "down.example.com",
                FaultEpisode::outage(Timestamp(100), Timestamp(200), FaultKind::HostUnreachable),
            )
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = plan();
        for draw in 0..50 {
            assert_eq!(
                p.decide("h.example.com", "/p", draw, Timestamp(10)),
                p.decide("h.example.com", "/p", draw, Timestamp(10)),
            );
        }
    }

    #[test]
    fn rate_roughly_respected() {
        let p = FaultPlan::new(1).everywhere(FaultEpisode::rate(0.25, FaultKind::Timeout));
        let hits = (0..4000)
            .filter(|&d| p.decide("h", "/p", d, Timestamp(0)).is_some())
            .count();
        assert!((800..1200).contains(&hits), "hits {hits}");
    }

    #[test]
    fn rate_one_always_fires_and_zero_never() {
        let always = FaultPlan::new(2).everywhere(FaultEpisode::rate(1.0, FaultKind::Timeout));
        let never = FaultPlan::new(2).everywhere(FaultEpisode::rate(0.0, FaultKind::Timeout));
        for d in 0..100 {
            assert!(always.decide("h", "/", d, Timestamp(0)).is_some());
            assert!(never.decide("h", "/", d, Timestamp(0)).is_none());
        }
    }

    #[test]
    fn windows_bound_episodes() {
        let p = FaultPlan::new(9).for_host(
            "down.example.com",
            FaultEpisode::outage(Timestamp(100), Timestamp(200), FaultKind::HostUnreachable),
        );
        let host = "down.example.com";
        assert_eq!(p.decide(host, "/p", 0, Timestamp(99)), None);
        assert_eq!(
            p.decide(host, "/p", 0, Timestamp(100)),
            Some(FaultKind::HostUnreachable)
        );
        assert_eq!(
            p.decide(host, "/p", 0, Timestamp(199)),
            Some(FaultKind::HostUnreachable)
        );
        assert_eq!(p.decide(host, "/p", 0, Timestamp(200)), None);
        // Outside the window, other hosts are untouched too.
        assert_eq!(p.decide("healthy", "/p", 0, Timestamp(150)), None);
        // The half-rate global episode from `plan()` still draws
        // deterministically alongside a window.
        let q = plan();
        assert_eq!(
            q.decide(host, "/p", 3, Timestamp(150)),
            Some(FaultKind::HostUnreachable),
            "outage wins inside its window"
        );
    }

    #[test]
    fn different_paths_draw_independently() {
        let p = FaultPlan::new(3).everywhere(FaultEpisode::rate(0.5, FaultKind::Timeout));
        let a: Vec<bool> = (0..64)
            .map(|d| p.decide("h", "/a", d, Timestamp(0)).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|d| p.decide("h", "/b", d, Timestamp(0)).is_some())
            .collect();
        assert_ne!(a, b, "independent streams per path");
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = FaultPlan::new(10).everywhere(FaultEpisode::rate(0.5, FaultKind::Timeout));
        let b = FaultPlan::new(11).everywhere(FaultEpisode::rate(0.5, FaultKind::Timeout));
        let da: Vec<bool> = (0..64)
            .map(|d| a.decide("h", "/p", d, Timestamp(0)).is_some())
            .collect();
        let db: Vec<bool> = (0..64)
            .map(|d| b.decide("h", "/p", d, Timestamp(0)).is_some())
            .collect();
        assert_ne!(da, db);
    }

    #[test]
    fn host_episodes_take_precedence() {
        let p = FaultPlan::new(4)
            .for_host("h", FaultEpisode::rate(1.0, FaultKind::ConnectionRefused))
            .everywhere(FaultEpisode::rate(1.0, FaultKind::Timeout));
        assert_eq!(
            p.decide("h", "/p", 0, Timestamp(0)),
            Some(FaultKind::ConnectionRefused)
        );
        assert_eq!(
            p.decide("other", "/p", 0, Timestamp(0)),
            Some(FaultKind::Timeout)
        );
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::new(5);
        assert!(p.is_empty());
        assert_eq!(p.decide("h", "/p", 0, Timestamp(0)), None);
    }
}
