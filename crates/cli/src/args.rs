//! Minimal flag parsing for the CLI binaries — testable without spawning
//! a process.

/// Parsed `htmldiff` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct HtmlDiffArgs {
    /// Path of the old version.
    pub old: String,
    /// Path of the new version.
    pub new: String,
    /// Presentation selector (`merged` default, `only-differences`,
    /// `reversed`, `new-only`, `side-by-side`).
    pub presentation: String,
    /// `-w` — mark word-level changes inside edited sentences.
    pub inline_words: bool,
    /// `-b` — suppress the banner.
    pub no_banner: bool,
    /// `-t <ratio>` — the 2W/L match threshold.
    pub threshold: Option<f64>,
    /// `--obs` — print an `aide_obs` metrics dump to stderr after diffing.
    pub obs: bool,
}

/// Error with a usage string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Usage text for `htmldiff`.
pub const HTMLDIFF_USAGE: &str =
    "usage: htmldiff [-p merged|only-differences|reversed|new-only|side-by-side] \
     [-w] [-b] [-t RATIO] [--obs] OLD.html NEW.html";

/// Parses `htmldiff` arguments (without the program name).
pub fn parse_htmldiff(argv: &[String]) -> Result<HtmlDiffArgs, UsageError> {
    let mut presentation = "merged".to_string();
    let mut inline_words = false;
    let mut no_banner = false;
    let mut threshold = None;
    let mut obs = false;
    let mut files = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" => {
                presentation = it
                    .next()
                    .ok_or_else(|| UsageError(HTMLDIFF_USAGE.to_string()))?
                    .clone();
            }
            "-w" => inline_words = true,
            "-b" => no_banner = true,
            "-t" => {
                let v = it
                    .next()
                    .ok_or_else(|| UsageError(HTMLDIFF_USAGE.to_string()))?;
                threshold =
                    Some(v.parse::<f64>().map_err(|_| {
                        UsageError(format!("bad threshold {v:?}\n{HTMLDIFF_USAGE}"))
                    })?);
            }
            "--obs" => obs = true,
            "-h" | "--help" => return Err(UsageError(HTMLDIFF_USAGE.to_string())),
            other if other.starts_with('-') => {
                return Err(UsageError(format!(
                    "unknown flag {other}\n{HTMLDIFF_USAGE}"
                )));
            }
            file => files.push(file.to_string()),
        }
    }
    if files.len() != 2 {
        return Err(UsageError(HTMLDIFF_USAGE.to_string()));
    }
    if ![
        "merged",
        "only-differences",
        "reversed",
        "new-only",
        "side-by-side",
    ]
    .contains(&presentation.as_str())
    {
        return Err(UsageError(format!(
            "unknown presentation {presentation:?}\n{HTMLDIFF_USAGE}"
        )));
    }
    Ok(HtmlDiffArgs {
        old: files[0].clone(),
        new: files[1].clone(),
        presentation,
        inline_words,
        no_banner,
        threshold,
        obs,
    })
}

/// Parsed `aide-rcs` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcsCommand {
    /// `ci ARCHIVE,v FILE -m LOG -u AUTHOR [-d RCSDATE]`
    Checkin {
        /// Path of the `,v` archive (created if absent).
        archive: String,
        /// Path of the working file to check in.
        file: String,
        /// Log message.
        log: String,
        /// Author.
        author: String,
        /// Optional datestamp (defaults to the archive head date + 1s).
        date: Option<String>,
    },
    /// `co ARCHIVE,v [-r REV | -d RCSDATE]`
    Checkout {
        /// Path of the `,v` archive.
        archive: String,
        /// Revision (`1.N`), if given.
        rev: Option<String>,
        /// Datestamp, if given.
        date: Option<String>,
    },
    /// `rlog ARCHIVE,v`
    Log {
        /// Path of the `,v` archive.
        archive: String,
    },
    /// `rcsdiff ARCHIVE,v -r FROM -r TO [--html]`
    Diff {
        /// Path of the `,v` archive.
        archive: String,
        /// Older revision.
        from: String,
        /// Newer revision.
        to: String,
        /// Render with HtmlDiff instead of a unified text diff.
        html: bool,
    },
}

/// Usage text for `aide-rcs`.
pub const RCS_USAGE: &str = "usage: aide-rcs ci ARCHIVE,v FILE -m LOG -u AUTHOR [-d RCSDATE]\n\
       aide-rcs co ARCHIVE,v [-r REV | -d RCSDATE]\n\
       aide-rcs rlog ARCHIVE,v\n\
       aide-rcs rcsdiff ARCHIVE,v -r FROM -r TO [--html]";

/// Parses `aide-rcs` arguments (without the program name).
pub fn parse_rcs(argv: &[String]) -> Result<RcsCommand, UsageError> {
    let usage = || UsageError(RCS_USAGE.to_string());
    let mut it = argv.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let rest: Vec<String> = it.cloned().collect();
    let flag_value = |flag: &str| -> Option<String> {
        rest.iter()
            .position(|a| a == flag)
            .and_then(|i| rest.get(i + 1).cloned())
    };
    let positional: Vec<&String> = {
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in rest.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with('-') && a != "--html" {
                skip = rest.get(i + 1).is_some();
                continue;
            }
            if a == "--html" {
                continue;
            }
            out.push(a);
        }
        out
    };
    match cmd.as_str() {
        "ci" => {
            if positional.len() != 2 {
                return Err(usage());
            }
            Ok(RcsCommand::Checkin {
                archive: positional[0].clone(),
                file: positional[1].clone(),
                log: flag_value("-m").ok_or_else(usage)?,
                author: flag_value("-u").ok_or_else(usage)?,
                date: flag_value("-d"),
            })
        }
        "co" => {
            if positional.len() != 1 {
                return Err(usage());
            }
            Ok(RcsCommand::Checkout {
                archive: positional[0].clone(),
                rev: flag_value("-r"),
                date: flag_value("-d"),
            })
        }
        "rlog" => {
            if positional.len() != 1 {
                return Err(usage());
            }
            Ok(RcsCommand::Log {
                archive: positional[0].clone(),
            })
        }
        "rcsdiff" => {
            if positional.len() != 1 {
                return Err(usage());
            }
            // Two -r flags: from and to.
            let revs: Vec<String> = rest
                .iter()
                .enumerate()
                .filter(|(_, a)| *a == "-r")
                .filter_map(|(i, _)| rest.get(i + 1).cloned())
                .collect();
            if revs.len() != 2 {
                return Err(usage());
            }
            Ok(RcsCommand::Diff {
                archive: positional[0].clone(),
                from: revs[0].clone(),
                to: revs[1].clone(),
                html: rest.iter().any(|a| a == "--html"),
            })
        }
        _ => Err(usage()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn htmldiff_minimal() {
        let a = parse_htmldiff(&v(&["old.html", "new.html"])).unwrap();
        assert_eq!(a.old, "old.html");
        assert_eq!(a.new, "new.html");
        assert_eq!(a.presentation, "merged");
        assert!(!a.inline_words);
        assert!(!a.obs);
    }

    #[test]
    fn htmldiff_full_flags() {
        let a = parse_htmldiff(&v(&[
            "-p",
            "side-by-side",
            "-w",
            "-b",
            "-t",
            "0.6",
            "--obs",
            "a",
            "b",
        ]))
        .unwrap();
        assert_eq!(a.presentation, "side-by-side");
        assert!(a.inline_words);
        assert!(a.no_banner);
        assert_eq!(a.threshold, Some(0.6));
        assert!(a.obs);
    }

    #[test]
    fn htmldiff_errors() {
        assert!(parse_htmldiff(&v(&["only-one.html"])).is_err());
        assert!(parse_htmldiff(&v(&["-p", "bogus", "a", "b"])).is_err());
        assert!(parse_htmldiff(&v(&["-t", "abc", "a", "b"])).is_err());
        assert!(parse_htmldiff(&v(&["-x", "a", "b"])).is_err());
        assert!(parse_htmldiff(&v(&["--help"])).is_err());
    }

    #[test]
    fn rcs_ci() {
        let c = parse_rcs(&v(&[
            "ci",
            "page,v",
            "page.html",
            "-m",
            "fix typo",
            "-u",
            "fred",
        ]))
        .unwrap();
        assert_eq!(
            c,
            RcsCommand::Checkin {
                archive: "page,v".into(),
                file: "page.html".into(),
                log: "fix typo".into(),
                author: "fred".into(),
                date: None,
            }
        );
    }

    #[test]
    fn rcs_co_variants() {
        let c = parse_rcs(&v(&["co", "page,v", "-r", "1.3"])).unwrap();
        assert!(matches!(c, RcsCommand::Checkout { rev: Some(r), .. } if r == "1.3"));
        let c = parse_rcs(&v(&["co", "page,v", "-d", "1995.10.01.00.00.00"])).unwrap();
        assert!(matches!(c, RcsCommand::Checkout { date: Some(_), .. }));
        let c = parse_rcs(&v(&["co", "page,v"])).unwrap();
        assert!(matches!(
            c,
            RcsCommand::Checkout {
                rev: None,
                date: None,
                ..
            }
        ));
    }

    #[test]
    fn rcs_rcsdiff() {
        let c = parse_rcs(&v(&[
            "rcsdiff", "page,v", "-r", "1.1", "-r", "1.4", "--html",
        ]))
        .unwrap();
        assert_eq!(
            c,
            RcsCommand::Diff {
                archive: "page,v".into(),
                from: "1.1".into(),
                to: "1.4".into(),
                html: true,
            }
        );
    }

    #[test]
    fn rcs_errors() {
        assert!(parse_rcs(&v(&[])).is_err());
        assert!(parse_rcs(&v(&["frobnicate", "x,v"])).is_err());
        assert!(parse_rcs(&v(&["ci", "x,v"])).is_err());
        assert!(parse_rcs(&v(&["rcsdiff", "x,v", "-r", "1.1"])).is_err());
    }
}
