//! `aide-rcs` — ci / co / rlog / rcsdiff over `,v` archive files
//! (the operations behind the paper's §8.1 CGI scripts).

use aide_cli::args::{parse_rcs, RcsCommand, RCS_USAGE};
use aide_diffcore::lines::diff_lines;
use aide_htmldiff::{html_diff, Options as DiffOptions};
use aide_rcs::archive::{Archive, RevId};
use aide_rcs::format::{emit, parse};
use aide_util::time::{Duration, Timestamp};
use std::io::Write;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("aide-rcs: {msg}");
    ExitCode::from(2)
}

/// Writes to stdout; a closed pipe (e.g. `| head`) ends the program
/// quietly instead of panicking.
fn emit_stdout(s: &str) {
    if std::io::stdout().write_all(s.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn load(path: &str) -> Result<Archive, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn rev_of(s: &str) -> Result<RevId, String> {
    RevId::parse(s).ok_or_else(|| format!("bad revision {s:?} (expected 1.N)"))
}

fn main() -> ExitCode {
    // aide-lint: allow(determinism): a CLI entry point must read its own argv
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_rcs(&argv) {
        Ok(c) => c,
        Err(_) => {
            eprintln!("{RCS_USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(cmd) {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}

fn run(cmd: RcsCommand) -> Result<ExitCode, String> {
    match cmd {
        RcsCommand::Checkin {
            archive,
            file,
            log,
            author,
            date,
        } => {
            let body = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let when = match &date {
                Some(d) => Timestamp::parse_rcs_date(d).ok_or_else(|| format!("bad date {d:?}"))?,
                None => Timestamp::EPOCH, // adjusted below when appending
            };
            let text = match std::fs::read_to_string(&archive) {
                Ok(existing) => {
                    let mut a = parse(&existing).map_err(|e| format!("{archive}: {e}"))?;
                    let head_date = a.metas().last().expect("nonempty").date;
                    let when = if date.is_some() {
                        when
                    } else {
                        head_date + Duration::seconds(1)
                    };
                    let out = a
                        .checkin(&body, &author, &log, when)
                        .map_err(|e| e.to_string())?;
                    eprintln!(
                        "{archive}  <--  {file}\nnew revision: {}{}",
                        out.rev(),
                        if out.is_new() {
                            ""
                        } else {
                            " (unchanged; nothing stored)"
                        }
                    );
                    emit(&a)
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    let a = Archive::create(&file, &body, &author, &log, when);
                    eprintln!("{archive}  <--  {file}\ninitial revision: 1.1");
                    emit(&a)
                }
                Err(e) => return Err(format!("{archive}: {e}")),
            };
            std::fs::write(&archive, text).map_err(|e| format!("{archive}: {e}"))?;
            Ok(ExitCode::SUCCESS)
        }
        RcsCommand::Checkout { archive, rev, date } => {
            let a = load(&archive)?;
            let body = match (rev, date) {
                (Some(r), _) => a.checkout(rev_of(&r)?).map_err(|e| e.to_string())?,
                (None, Some(d)) => {
                    let when =
                        Timestamp::parse_rcs_date(&d).ok_or_else(|| format!("bad date {d:?}"))?;
                    a.checkout_at(when).map_err(|e| e.to_string())?.1
                }
                (None, None) => a.head_text().to_string(),
            };
            emit_stdout(&body);
            Ok(ExitCode::SUCCESS)
        }
        RcsCommand::Log { archive } => {
            let a = load(&archive)?;
            let mut out = format!(
                "RCS file: {archive}\nhead: {}\ndescription: {}\ntotal revisions: {}\n{}\n",
                a.head(),
                a.description,
                a.len(),
                "-".repeat(28)
            );
            for meta in a.log() {
                out.push_str(&format!(
                    "revision {}\ndate: {};  author: {};  bytes: {}\n{}\n{}\n",
                    meta.id,
                    meta.date.to_rcs_date(),
                    meta.author,
                    meta.text_len,
                    meta.log,
                    "-".repeat(28)
                ));
            }
            emit_stdout(&out);
            Ok(ExitCode::SUCCESS)
        }
        RcsCommand::Diff {
            archive,
            from,
            to,
            html,
        } => {
            let a = load(&archive)?;
            let old = a.checkout(rev_of(&from)?).map_err(|e| e.to_string())?;
            let new = a.checkout(rev_of(&to)?).map_err(|e| e.to_string())?;
            if html {
                let opts = DiffOptions {
                    old_label: from.clone(),
                    new_label: to.clone(),
                    ..DiffOptions::default()
                };
                emit_stdout(&html_diff(&old, &new, &opts).html);
            } else {
                emit_stdout(&diff_lines(&old, &new).unified(&from, &to, 3));
            }
            Ok(if old == new {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
    }
}
