//! `htmldiff` — compare two HTML files and write the merged page to
//! stdout (the paper's §5 tool as a standalone command).

use aide_cli::args::{parse_htmldiff, HTMLDIFF_USAGE};
use aide_htmldiff::compare::CompareOptions;
use aide_htmldiff::{html_diff, Options, Presentation};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    // aide-lint: allow(determinism): a CLI entry point must read its own argv
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_htmldiff(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let read = |path: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("htmldiff: {path}: {e}");
            ExitCode::from(2)
        })
    };
    let old = match read(&parsed.old) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let new = match read(&parsed.new) {
        Ok(s) => s,
        Err(c) => return c,
    };
    let presentation = match parsed.presentation.as_str() {
        "merged" => Presentation::Merged,
        "only-differences" => Presentation::OnlyDifferences,
        "reversed" => Presentation::Reversed,
        "new-only" => Presentation::NewOnly,
        "side-by-side" => Presentation::SideBySide,
        _ => {
            eprintln!("{HTMLDIFF_USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut compare = CompareOptions::default();
    if let Some(t) = parsed.threshold {
        compare.match_threshold = t;
    }
    let opts = Options {
        presentation,
        compare,
        inline_word_diff: parsed.inline_words,
        banner: !parsed.no_banner,
        old_label: parsed.old.clone(),
        new_label: parsed.new.clone(),
        ..Options::default()
    };
    // `--obs`: record tokenizer/anchoring metrics for this one diff and
    // dump them to stderr, keeping stdout pure HTML.
    let registry = if parsed.obs {
        let r = std::sync::Arc::new(aide_obs::MetricsRegistry::new());
        aide_obs::install(r.clone());
        Some(r)
    } else {
        None
    };
    let result = html_diff(&old, &new, &opts);
    if let Some(r) = registry {
        aide_obs::uninstall();
        eprint!("{}", r.render_text());
    }
    // A closed pipe (e.g. `| head`) is a normal way to consume diffs.
    if std::io::stdout().write_all(result.html.as_bytes()).is_err() {
        return ExitCode::SUCCESS;
    }
    // diff-style exit status: 0 = identical, 1 = differences found.
    if result.stats.is_identical() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
