//! Command-line front ends for the AIDE libraries.
//!
//! Two binaries, both operating on plain files so they are useful outside
//! the simulation:
//!
//! - `htmldiff old.html new.html` — the paper's §5 tool as a standalone
//!   command, writing the merged page to stdout.
//! - `aide-rcs {ci|co|rlog|rcsdiff}` — the §8.1 scripts' underlying
//!   operations over `,v` archive files.
//!
//! Argument handling lives in [`args`] so the parsing is testable without
//! spawning processes.

pub mod args;
