//! End-to-end tests of the CLI binaries, via real process invocation.

use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aide-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn htmldiff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_htmldiff"))
}

fn aide_rcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aide-rcs"))
}

#[test]
fn htmldiff_merged_output_and_exit_codes() {
    let dir = scratch_dir("hd");
    let old = dir.join("old.html");
    let new = dir.join("new.html");
    std::fs::write(&old, "<P>alpha stays. doomed goes!").unwrap();
    std::fs::write(&new, "<P>alpha stays. fresh arrives!").unwrap();

    let out = htmldiff().arg(&old).arg(&new).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "differences exit 1");
    let html = String::from_utf8(out.stdout).unwrap();
    assert!(html.contains("<STRIKE>doomed goes!</STRIKE>"));
    assert!(html.contains("<STRONG><I>fresh arrives!</I></STRONG>"));

    let same = htmldiff().arg(&old).arg(&old).output().unwrap();
    assert_eq!(same.status.code(), Some(0), "identical exit 0");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn htmldiff_presentations_and_flags() {
    let dir = scratch_dir("hdp");
    let old = dir.join("o.html");
    let new = dir.join("n.html");
    std::fs::write(&old, "<P>one two three.").unwrap();
    std::fs::write(&new, "<P>one two four.").unwrap();

    let out = htmldiff()
        .args(["-p", "side-by-side", "-b"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    let html = String::from_utf8(out.stdout).unwrap();
    assert!(html.contains("<TABLE"), "{html}");
    assert!(!html.contains("AIDE HtmlDiff"), "banner suppressed");

    let out = htmldiff()
        .args(["-w"])
        .arg(&old)
        .arg(&new)
        .output()
        .unwrap();
    let html = String::from_utf8(out.stdout).unwrap();
    assert!(html.contains("<STRIKE>three.</STRIKE>"), "{html}");

    let usage = htmldiff().arg("only-one").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    assert!(String::from_utf8(usage.stderr).unwrap().contains("usage:"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rcs_roundtrip_through_processes() {
    let dir = scratch_dir("rcs");
    let archive = dir.join("page,v");
    let v1 = dir.join("v1.html");
    let v2 = dir.join("v2.html");
    std::fs::write(&v1, "<P>first revision text.\n").unwrap();
    std::fs::write(&v2, "<P>second revision text, expanded!\n").unwrap();

    // ci twice.
    let ci1 = aide_rcs()
        .args(["ci"])
        .arg(&archive)
        .arg(&v1)
        .args(["-m", "init", "-u", "fred", "-d", "1995.10.01.00.00.00"])
        .output()
        .unwrap();
    assert!(
        ci1.status.success(),
        "{}",
        String::from_utf8_lossy(&ci1.stderr)
    );
    let ci2 = aide_rcs()
        .args(["ci"])
        .arg(&archive)
        .arg(&v2)
        .args(["-m", "more", "-u", "fred"])
        .output()
        .unwrap();
    assert!(ci2.status.success());
    assert!(String::from_utf8_lossy(&ci2.stderr).contains("new revision: 1.2"));

    // co old revision matches the original bytes.
    let co = aide_rcs()
        .args(["co"])
        .arg(&archive)
        .args(["-r", "1.1"])
        .output()
        .unwrap();
    assert_eq!(
        String::from_utf8(co.stdout).unwrap(),
        "<P>first revision text.\n"
    );

    // co by date.
    let co = aide_rcs()
        .args(["co"])
        .arg(&archive)
        .args(["-d", "1995.10.01.00.00.00"])
        .output()
        .unwrap();
    assert!(String::from_utf8(co.stdout)
        .unwrap()
        .contains("first revision"));

    // rlog lists both.
    let log = aide_rcs().args(["rlog"]).arg(&archive).output().unwrap();
    let text = String::from_utf8(log.stdout).unwrap();
    assert!(text.contains("revision 1.1"));
    assert!(text.contains("revision 1.2"));

    // rcsdiff text and html modes.
    let d = aide_rcs()
        .args(["rcsdiff"])
        .arg(&archive)
        .args(["-r", "1.1", "-r", "1.2"])
        .output()
        .unwrap();
    assert_eq!(d.status.code(), Some(1));
    assert!(String::from_utf8(d.stdout)
        .unwrap()
        .contains("+<P>second revision text, expanded!"));
    let d = aide_rcs()
        .args(["rcsdiff"])
        .arg(&archive)
        .args(["-r", "1.1", "-r", "1.2", "--html"])
        .output()
        .unwrap();
    assert!(String::from_utf8(d.stdout)
        .unwrap()
        .contains("AIDE HtmlDiff"));

    // Unchanged ci stores nothing.
    let ci3 = aide_rcs()
        .args(["ci"])
        .arg(&archive)
        .arg(&v2)
        .args(["-m", "noop", "-u", "fred"])
        .output()
        .unwrap();
    assert!(String::from_utf8_lossy(&ci3.stderr).contains("unchanged"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rcs_error_paths() {
    let missing = aide_rcs()
        .args(["rlog", "/no/such/file,v"])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    let usage = aide_rcs().args(["frobnicate"]).output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    assert!(String::from_utf8(usage.stderr).unwrap().contains("usage:"));
}
