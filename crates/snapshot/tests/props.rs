//! Property-based tests for the snapshot service.
//!
//! Invariants:
//! - every body ever remembered checks out byte-identically at the
//!   revision the service reported;
//! - re-remembering any historical body never corrupts the archive;
//! - the control file tracks exactly what each user remembered;
//! - diff-cache hits return the same HTML the original rendering did;
//! - storage equals the sum of per-URL sizes.

use aide_htmldiff::Options as DiffOptions;
use aide_rcs::repo::MemRepository;
use aide_snapshot::service::{SnapshotService, UserId};
use aide_util::time::{Clock, Duration, Timestamp};
use proptest::prelude::*;

fn bodies() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                Just("<P>alpha beta.".to_string()),
                Just("<P>gamma delta!".to_string()),
                Just("<HR>".to_string()),
                Just("line with @ and d1 2 tricky content\n".to_string()),
                Just("".to_string()),
            ],
            0..6,
        )
        .prop_map(|v| v.concat()),
        1..10,
    )
}

fn service() -> (Clock, SnapshotService<MemRepository>) {
    let clock = Clock::starting_at(Timestamp(1_000_000));
    let s = SnapshotService::new(MemRepository::new(), clock.clone(), 32, Duration::hours(4));
    (clock, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_remembered_body_checks_out(bodies in bodies()) {
        let (clock, service) = service();
        let user = UserId::new("u@x");
        let mut expected: Vec<(aide_rcs::archive::RevId, String)> = Vec::new();
        for b in &bodies {
            clock.advance(Duration::hours(1));
            let out = service.remember(&user, "http://p/", b).unwrap();
            expected.push((out.rev, b.clone()));
        }
        for (rev, body) in &expected {
            prop_assert_eq!(&service.revision_text("http://p/", *rev).unwrap(), body);
        }
    }

    #[test]
    fn remembering_historical_bodies_is_safe(bodies in bodies()) {
        let (clock, service) = service();
        let user = UserId::new("u@x");
        for b in &bodies {
            clock.advance(Duration::hours(1));
            service.remember(&user, "http://p/", b).unwrap();
        }
        // Remember every historical body again, in order.
        for b in &bodies {
            clock.advance(Duration::hours(1));
            service.remember(&user, "http://p/", b).unwrap();
        }
        // The archive is still fully readable.
        let history = service.history(&user, "http://p/").unwrap();
        for (meta, _) in history {
            service.revision_text("http://p/", meta.id).unwrap();
        }
    }

    #[test]
    fn last_seen_tracks_latest_remember(bodies in bodies()) {
        let (clock, service) = service();
        let user = UserId::new("u@x");
        let mut last = None;
        for b in &bodies {
            clock.advance(Duration::hours(1));
            let out = service.remember(&user, "http://p/", b).unwrap();
            last = Some(out.rev);
        }
        prop_assert_eq!(service.last_seen(&user, "http://p/"), last);
    }

    #[test]
    fn cached_diff_equals_fresh_diff(a in "[a-z .]{0,40}", b in "[a-z .]{0,40}") {
        let (clock, service) = service();
        let user = UserId::new("u@x");
        let body_a = format!("<P>{a}");
        let body_b = format!("<P>{b}x"); // ensure distinct
        service.remember(&user, "http://p/", &body_a).unwrap();
        clock.advance(Duration::hours(1));
        let out = service.remember(&user, "http://p/", &body_b).unwrap();
        prop_assume!(out.stored_new_revision);
        let opts = DiffOptions::default();
        let first = service
            .diff_versions("http://p/", aide_rcs::archive::RevId(1), out.rev, &opts)
            .unwrap();
        let second = service
            .diff_versions("http://p/", aide_rcs::archive::RevId(1), out.rev, &opts)
            .unwrap();
        prop_assert!(!first.from_cache);
        prop_assert!(second.from_cache);
        prop_assert_eq!(first.html, second.html);
    }

    #[test]
    fn storage_is_sum_of_sizes(urls in 1usize..6, bodies in bodies()) {
        let (clock, service) = service();
        let user = UserId::new("u@x");
        for (k, b) in bodies.iter().enumerate() {
            clock.advance(Duration::hours(1));
            service
                .remember(&user, &format!("http://site/{}.html", k % urls), b)
                .unwrap();
        }
        let stats = service.storage().unwrap();
        let sum: usize = service.storage_by_url().unwrap().iter().map(|(_, b)| b).sum();
        prop_assert_eq!(stats.bytes, sum);
    }
}
