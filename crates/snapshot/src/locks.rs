//! Synchronization for the snapshot facility (§4.2).
//!
//! "The system must synchronize access to the RCS repository, the locally
//! cached copy of the HTML document, and the control files that record
//! the versions of each page a user has checked in. Currently this is
//! done by using UNIX file locking on both a per-URL lock file and the
//! per-user control file."
//!
//! This module provides that lock table in-process, plus the improvement
//! the paper wishes for: "Ideally the locks could be queued such that if
//! multiple users request the same page simultaneously, the second
//! snapshot process would just wait for the page and then return, rather
//! than repeating the work" — implemented here as [`LockTable::once`],
//! a single-flight combinator.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters for lock behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait (the lock was held).
    pub contended: u64,
    /// Single-flight executions that performed the work.
    pub flights: u64,
    /// Single-flight executions that reused a concurrent caller's work.
    pub piggybacked: u64,
}

#[derive(Default)]
struct TableState {
    locks: HashMap<String, Arc<Mutex<()>>>,
    stats: LockStats,
    /// Results parked for single-flight reuse: key → (generation, value).
    flights: HashMap<String, (u64, String)>,
    generation: u64,
}

/// A named-lock table with per-URL / per-user granularity.
///
/// Lock *ordering*: callers that need both a URL lock and a user lock
/// must take the URL lock first (the service does); this is the
/// deadlock-avoidance discipline the perl scripts followed implicitly by
/// their code structure.
#[derive(Clone, Default)]
pub struct LockTable {
    state: Arc<Mutex<TableState>>,
}

/// A held named lock.
pub struct NamedGuard {
    _inner: parking_lot::ArcMutexGuard<parking_lot::RawMutex, ()>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Acquires the lock named `key`, blocking while held elsewhere.
    pub fn lock(&self, key: &str) -> NamedGuard {
        let handle = {
            let mut st = self.state.lock();
            st.stats.acquisitions += 1;
            st.locks
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(())))
                .clone()
        };
        // Record contention without holding the table lock.
        match handle.try_lock_arc() {
            Some(g) => NamedGuard { _inner: g },
            None => {
                self.state.lock().stats.contended += 1;
                NamedGuard {
                    _inner: handle.lock_arc(),
                }
            }
        }
    }

    /// Convenience: the per-URL lock name.
    pub fn url_key(url: &str) -> String {
        format!("url:{url}")
    }

    /// Convenience: the per-user control-file lock name.
    pub fn user_key(user: &str) -> String {
        format!("user:{user}")
    }

    /// Single-flight execution: runs `work` under the lock for `key`. If
    /// another caller completed the same keyed work while this caller was
    /// waiting for the lock, its result is returned without re-running
    /// `work`.
    ///
    /// The caller passes the *flight generation* it observed before
    /// deciding to do the work ([`LockTable::flight_generation`]); a newer
    /// parked result for the key means someone did the work in between.
    pub fn once(&self, key: &str, observed_gen: u64, work: impl FnOnce() -> String) -> String {
        let guard = self.lock(key);
        {
            let st = self.state.lock();
            if let Some((generation, value)) = st.flights.get(key) {
                if *generation > observed_gen {
                    let v = value.clone();
                    drop(st);
                    drop(guard);
                    self.state.lock().stats.piggybacked += 1;
                    return v;
                }
            }
        }
        let value = work();
        let mut st = self.state.lock();
        st.generation += 1;
        let generation = st.generation;
        st.flights.insert(key.to_string(), (generation, value.clone()));
        st.stats.flights += 1;
        drop(st);
        drop(guard);
        value
    }

    /// The current flight generation; pass to [`LockTable::once`].
    pub fn flight_generation(&self) -> u64 {
        self.state.lock().generation
    }

    /// Counters.
    pub fn stats(&self) -> LockStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_key_excludes() {
        let t = LockTable::new();
        let g = t.lock("url:http://x/");
        // A second acquisition from another thread must block until drop.
        let t2 = t.clone();
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            let _g = t2.lock("url:http://x/");
            f2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(flag.load(Ordering::SeqCst), 0, "second locker still waiting");
        drop(g);
        h.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        assert_eq!(t.stats().contended, 1);
    }

    #[test]
    fn different_keys_are_independent() {
        let t = LockTable::new();
        let _a = t.lock("url:http://a/");
        let _b = t.lock("url:http://b/");
        let _u = t.lock("user:douglis");
        assert_eq!(t.stats().acquisitions, 3);
        assert_eq!(t.stats().contended, 0);
    }

    #[test]
    fn single_flight_dedups_concurrent_work() {
        let t = LockTable::new();
        let work_count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = t.clone();
            let wc = work_count.clone();
            // All callers observe generation 0 "simultaneously".
            handles.push(std::thread::spawn(move || {
                t.once("diff:http://x/:1.1:1.2", 0, || {
                    wc.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    "rendered diff".to_string()
                })
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r == "rendered diff"));
        assert_eq!(work_count.load(Ordering::SeqCst), 1, "work ran once");
        let s = t.stats();
        assert_eq!(s.flights, 1);
        assert_eq!(s.piggybacked, 7);
    }

    #[test]
    fn single_flight_reruns_for_new_generation() {
        let t = LockTable::new();
        let r1 = t.once("k", t.flight_generation(), || "first".to_string());
        // A later caller observing the *new* generation gets fresh work.
        let r2 = t.once("k", t.flight_generation(), || "second".to_string());
        assert_eq!(r1, "first");
        assert_eq!(r2, "second");
        assert_eq!(t.stats().flights, 2);
    }

    #[test]
    fn key_helpers() {
        assert_eq!(LockTable::url_key("http://x/"), "url:http://x/");
        assert_eq!(LockTable::user_key("a@b"), "user:a@b");
        assert_ne!(LockTable::url_key("z"), LockTable::user_key("z"));
    }
}
