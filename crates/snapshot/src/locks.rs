//! Synchronization for the snapshot facility (§4.2).
//!
//! "The system must synchronize access to the RCS repository, the locally
//! cached copy of the HTML document, and the control files that record
//! the versions of each page a user has checked in. Currently this is
//! done by using UNIX file locking on both a per-URL lock file and the
//! per-user control file."
//!
//! This module provides that lock table in-process, plus the improvement
//! the paper wishes for: "Ideally the locks could be queued such that if
//! multiple users request the same page simultaneously, the second
//! snapshot process would just wait for the page and then return, rather
//! than repeating the work" — implemented here as [`LockTable::once`],
//! a single-flight combinator.
//!
//! # Lock-ordering invariant
//!
//! The named locks in this table are the *only* exclusion mechanism in
//! the snapshot service — there is no repository-wide lock behind them —
//! so the ordering discipline below is what makes the service
//! deadlock-free. Every caller must respect it:
//!
//! 1. **URL key before user key.** An operation that needs both a
//!    per-URL lock ([`LockTable::url_key`]) and a per-user control-file
//!    lock ([`LockTable::user_key`]) must acquire the URL lock first and
//!    may hold at most one lock of each kind at a time. This is the
//!    discipline the paper's perl scripts followed implicitly by their
//!    code structure (snapshot the page, then update the control file).
//! 2. **At most one URL key and one user key held simultaneously.**
//!    Multi-URL operations (storage sweeps, `keys`) must not hold any
//!    named lock while iterating; they rely on shard snapshots instead.
//! 3. **Shard index order for multi-shard operations.** Code that must
//!    visit several internal shards (the lock table's own buckets, the
//!    sharded repository, the sharded diff cache) takes shard guards in
//!    ascending index order and never holds two shards of *different*
//!    structures at once.
//! 4. **Named locks are leaves with respect to structure locks.** While
//!    holding a shard/bucket guard of any sharded structure, never block
//!    on a named lock; bucket guards are held only for map lookups and
//!    insertions, never across I/O, diffing, or archive mutation.
//!
//! The table itself is sharded so that lock lookups for different keys
//! rarely contend; entries are created on first use and retained for the
//! lifetime of the table (the working set is bounded by the number of
//! distinct URLs and users, exactly like the lock files the 1996 service
//! left in its spool directory).

use aide_util::checksum::fnv1a64;
use aide_util::sync::lockrank;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

const SHARDS: usize = 64;

/// Counters for lock behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockStats {
    /// Lock acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait (the lock was held).
    pub contended: u64,
    /// Single-flight executions that performed the work.
    pub flights: u64,
    /// Single-flight executions that reused a concurrent caller's work.
    pub piggybacked: u64,
}

/// One queued named lock: a flag plus a wait queue.
#[derive(Default)]
struct RawLock {
    state: Mutex<bool>,
    queue: Condvar,
}

impl RawLock {
    /// Acquires; returns whether the caller had to wait.
    fn acquire(&self) -> bool {
        let mut held = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !*held {
            *held = true;
            return false;
        }
        while *held {
            // aide-lint: allow(blocking-while-locked): the condvar wait
            // atomically releases the table mutex it parks under; this
            // is the wait-queue idiom, not blocking while holding
            held = self.queue.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        *held = true;
        true
    }

    fn release(&self) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = false;
        self.queue.notify_one();
    }
}

#[derive(Default)]
struct Shard {
    /// Key → its queued lock.
    locks: Mutex<HashMap<String, Arc<RawLock>>>,
    /// Results parked for single-flight reuse: key → (generation, value).
    flights: Mutex<HashMap<String, (u64, String)>>,
}

#[derive(Default)]
struct Counters {
    acquisitions: AtomicU64,
    contended: AtomicU64,
    flights: AtomicU64,
    piggybacked: AtomicU64,
}

struct TableInner {
    shards: Vec<Shard>,
    counters: Counters,
    generation: AtomicU64,
}

/// A named-lock table with per-URL / per-user granularity.
///
/// See the module docs for the lock-ordering invariant every caller must
/// follow.
#[derive(Clone)]
pub struct LockTable {
    inner: Arc<TableInner>,
}

impl Default for LockTable {
    fn default() -> Self {
        LockTable::new()
    }
}

/// A held named lock; released on drop.
pub struct NamedGuard {
    raw: Arc<RawLock>,
    /// Debug-build held-lock record; popped from the thread's lock-order
    /// stack when the guard drops.
    _rank: lockrank::Held,
}

impl Drop for NamedGuard {
    fn drop(&mut self) {
        self.raw.release();
    }
}

/// Maps a named-lock key to its class in the shared lock-rank table
/// (`aide_util::sync::lockrank`): `url:*` and `user:*` are the two
/// paper-mandated named kinds; anything else is a single-flight key.
fn rank_class(key: &str) -> &'static str {
    if key.starts_with("url:") {
        "url"
    } else if key.starts_with("user:") {
        "user"
    } else {
        "flight"
    }
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> LockTable {
        LockTable {
            inner: Arc::new(TableInner {
                shards: (0..SHARDS).map(|_| Shard::default()).collect(),
                counters: Counters::default(),
                generation: AtomicU64::new(0),
            }),
        }
    }

    fn shard(&self, key: &str) -> &Shard {
        &self.inner.shards[fnv1a64(key.as_bytes()) as usize % SHARDS]
    }

    /// Acquires the lock named `key`, blocking while held elsewhere.
    /// Waiters are queued on a condition variable, not spinning.
    pub fn lock(&self, key: &str) -> NamedGuard {
        // Validate against the thread's held-lock stack *before* blocking,
        // so an ordering bug aborts with a diagnostic instead of
        // deadlocking (debug builds only; a no-op in release).
        let rank = lockrank::acquire(rank_class(key), key);
        let handle = {
            let mut locks = self
                .shard(key)
                .locks
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            locks.entry(key.to_string()).or_default().clone()
        };
        self.inner
            .counters
            .acquisitions
            .fetch_add(1, Ordering::Relaxed);
        if handle.acquire() {
            self.inner
                .counters
                .contended
                .fetch_add(1, Ordering::Relaxed);
        }
        NamedGuard {
            raw: handle,
            _rank: rank,
        }
    }

    /// Convenience: the per-URL lock name.
    pub fn url_key(url: &str) -> String {
        format!("url:{url}")
    }

    /// Convenience: the per-user control-file lock name.
    pub fn user_key(user: &str) -> String {
        format!("user:{user}")
    }

    /// Single-flight execution: runs `work` under the lock for `key`. If
    /// another caller completed the same keyed work while this caller was
    /// waiting for the lock, its result is returned without re-running
    /// `work`.
    ///
    /// The caller passes the *flight generation* it observed before
    /// deciding to do the work ([`LockTable::flight_generation`]); a newer
    /// parked result for the key means someone did the work in between.
    pub fn once(&self, key: &str, observed_gen: u64, work: impl FnOnce() -> String) -> String {
        let guard = self.lock(key);
        {
            let flights = self
                .shard(key)
                .flights
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if let Some((generation, value)) = flights.get(key) {
                if *generation > observed_gen {
                    let v = value.clone();
                    drop(flights);
                    drop(guard);
                    self.inner
                        .counters
                        .piggybacked
                        .fetch_add(1, Ordering::Relaxed);
                    return v;
                }
            }
        }
        let value = work();
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed) + 1;
        self.shard(key)
            .flights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_string(), (generation, value.clone()));
        self.inner.counters.flights.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        value
    }

    /// The current flight generation; pass to [`LockTable::once`].
    pub fn flight_generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Relaxed)
    }

    /// Counters (a consistent-enough snapshot; each field is exact).
    pub fn stats(&self) -> LockStats {
        LockStats {
            acquisitions: self.inner.counters.acquisitions.load(Ordering::Relaxed),
            contended: self.inner.counters.contended.load(Ordering::Relaxed),
            flights: self.inner.counters.flights.load(Ordering::Relaxed),
            piggybacked: self.inner.counters.piggybacked.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_key_excludes() {
        let t = LockTable::new();
        let g = t.lock("url:http://x/");
        // A second acquisition from another thread must block until drop.
        let t2 = t.clone();
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = flag.clone();
        let h = std::thread::spawn(move || {
            let _g = t2.lock("url:http://x/");
            f2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(
            flag.load(Ordering::SeqCst),
            0,
            "second locker still waiting"
        );
        drop(g);
        h.join().unwrap();
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        assert_eq!(t.stats().contended, 1);
    }

    #[test]
    fn different_keys_are_independent() {
        let t = LockTable::new();
        // Different keys never contend: sequential same-class locks and a
        // simultaneously held lock of the other kind all acquire
        // immediately. (Holding two URL locks at once would violate the
        // module's ordering invariant and abort in debug builds.)
        let a = t.lock("url:http://a/");
        let u = t.lock("user:douglis");
        drop(u);
        drop(a);
        let _b = t.lock("url:http://b/");
        assert_eq!(t.stats().acquisitions, 3);
        assert_eq!(t.stats().contended, 0);
    }

    #[test]
    fn single_flight_dedups_concurrent_work() {
        let t = LockTable::new();
        let work_count = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = t.clone();
            let wc = work_count.clone();
            // All callers observe generation 0 "simultaneously".
            handles.push(std::thread::spawn(move || {
                t.once("diff:http://x/:1.1:1.2", 0, || {
                    wc.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    "rendered diff".to_string()
                })
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r == "rendered diff"));
        assert_eq!(work_count.load(Ordering::SeqCst), 1, "work ran once");
        let s = t.stats();
        assert_eq!(s.flights, 1);
        assert_eq!(s.piggybacked, 7);
    }

    #[test]
    fn single_flight_reruns_for_new_generation() {
        let t = LockTable::new();
        let r1 = t.once("k", t.flight_generation(), || "first".to_string());
        // A later caller observing the *new* generation gets fresh work.
        let r2 = t.once("k", t.flight_generation(), || "second".to_string());
        assert_eq!(r1, "first");
        assert_eq!(r2, "second");
        assert_eq!(t.stats().flights, 2);
    }

    #[test]
    fn key_helpers() {
        assert_eq!(LockTable::url_key("http://x/"), "url:http://x/");
        assert_eq!(LockTable::user_key("a@b"), "user:a@b");
        assert_ne!(LockTable::url_key("z"), LockTable::user_key("z"));
    }

    #[test]
    fn many_threads_many_keys_no_deadlock() {
        let t = LockTable::new();
        let mut handles = Vec::new();
        for i in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..50 {
                    // URL before user, per the module invariant.
                    let _u = t.lock(&LockTable::url_key(&format!("http://h{}/", k % 5)));
                    let _c = t.lock(&LockTable::user_key(&format!("user{}", i % 3)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.stats().acquisitions, 8 * 50 * 2);
    }
}
