//! The snapshot service proper: remember / diff / history / view.
//!
//! §6 names the three entry points AIDE links next to every hotlist item:
//!
//! - **Remember**: "send the URL to the snapshot facility, to save a copy
//!   of the page. Though the page is retrieved, the RCS ci command
//!   ensures that it is not saved if it is unchanged."
//! - **Diff**: "have the snapshot facility invoke HtmlDiff to display the
//!   changes in a page since it was last saved away by the user."
//! - **History**: "display a full log of versions of this page, with the
//!   ability to run HtmlDiff on any pair of versions or to view a
//!   particular version directly."
//!
//! The service is transport-agnostic: callers hand it page *bodies* (the
//! CGI layer in the `aide` crate does the fetching), so the whole archive
//! machinery is testable without a network.
//!
//! # Concurrency
//!
//! Exclusion is fine-grained, mirroring the paper's per-URL lock file and
//! per-user control file (§4.2) rather than any global lock:
//!
//! - The repository is shared directly (no service-level repository
//!   mutex); [`Repository`] implementations are internally sharded and
//!   return [`std::sync::Arc`] archive handles, so reads never block
//!   writers of other URLs.
//! - Read-modify-write of one URL's archive is serialized by that URL's
//!   named lock in the [`LockTable`]; control-file updates by the user's
//!   named lock, acquired *after* the URL lock per the ordering invariant
//!   documented in [`crate::locks`].
//! - Control files live in a sharded user map; the diff cache is a
//!   [`ShardedDiffCache`]. Shard guards are held only for map access.
//! - Counters are atomics ([`SnapshotService::snapshot_stats`] reads
//!   them without taking any lock), and admission control is a
//!   compare-and-swap gate rather than a mutex-protected option.
//!
//! The result: two operations on different URLs by different users share
//! no exclusive lock at all.

use crate::control::ControlFile;
use crate::diffcache::ShardedDiffCache;
use crate::locks::LockTable;
use aide_htmldiff::present::diff_tokens;
use aide_htmldiff::{token_stream_hash, tokenize, Options as DiffOptions};
use aide_htmlkit::lexer::{lex, serialize};
use aide_htmlkit::links::rewrite_base;
use aide_htmlkit::url::Url;
use aide_rcs::archive::{Archive, ArchiveError, CheckinOutcome, RevId, RevisionMeta};
use aide_rcs::repo::{RepoError, Repository, StorageStats};
use aide_util::checksum::{fnv1a64, Fnv1a};
use aide_util::sync::RwLock;
use aide_util::time::{Clock, Duration, Timestamp};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A user identifier — an email address in the open model, an opaque
/// account id in the authenticated one.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub String);

impl UserId {
    /// Convenience constructor.
    pub fn new(id: &str) -> UserId {
        UserId(id.to_string())
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from the service.
#[derive(Debug)]
pub enum ServiceError {
    /// Repository failure.
    Repo(RepoError),
    /// Archive-level failure.
    Archive(ArchiveError),
    /// The URL has never been remembered by anyone.
    NeverArchived(String),
    /// Admission control rejected the request (§4.2's simultaneous-user
    /// limit); try again shortly.
    Overloaded {
        /// The configured concurrency cap.
        limit: usize,
    },
    /// This user has never remembered this URL.
    NoUserHistory {
        /// Who asked.
        user: UserId,
        /// For what URL.
        url: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Repo(e) => write!(f, "{e}"),
            ServiceError::Archive(e) => write!(f, "{e}"),
            ServiceError::NeverArchived(u) => write!(f, "no snapshots exist for {u}"),
            ServiceError::Overloaded { limit } => {
                write!(f, "service busy ({limit} simultaneous requests); try again")
            }
            ServiceError::NoUserHistory { user, url } => {
                write!(f, "{user} has never remembered {url}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RepoError> for ServiceError {
    fn from(e: RepoError) -> Self {
        ServiceError::Repo(e)
    }
}

impl From<ArchiveError> for ServiceError {
    fn from(e: ArchiveError) -> Self {
        ServiceError::Archive(e)
    }
}

/// Result of a Remember operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RememberOutcome {
    /// The revision the page body now corresponds to.
    pub rev: RevId,
    /// Whether a new revision was created (false = unchanged).
    pub stored_new_revision: bool,
    /// Whether this was the first snapshot of the URL anywhere.
    pub created_archive: bool,
}

/// Result of a Diff operation.
#[derive(Debug, Clone)]
pub struct DiffOutcome {
    /// The rendered HtmlDiff page.
    pub html: String,
    /// The older revision compared.
    pub from: RevId,
    /// The newer revision compared.
    pub to: RevId,
    /// Whether the rendered output came from the diff cache.
    pub from_cache: bool,
}

/// Service counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Times HtmlDiff actually executed (cache misses).
    pub htmldiff_invocations: u64,
    /// Remember operations performed.
    pub remembers: u64,
    /// Remember operations that stored nothing (unchanged page).
    pub unchanged_remembers: u64,
    /// Archive loads the repository reported as corrupt and the service
    /// degraded to "not archived" instead of failing the request.
    pub degraded_loads: u64,
}

/// Lock-free counter cells behind [`ServiceStats`].
#[derive(Default)]
struct StatCells {
    htmldiff_invocations: AtomicU64,
    remembers: AtomicU64,
    unchanged_remembers: AtomicU64,
    degraded_loads: AtomicU64,
}

/// Sentinel for "no concurrency cap".
const UNLIMITED: usize = usize::MAX;

/// RAII slot held for the duration of an admitted operation.
struct AdmissionGuard<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        // aide-lint: allow(seqcst): admission gate is a synchronization
        // protocol (CAS reserve / release), not a stat counter
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Number of buckets in the per-user control map.
const CONTROL_SHARDS: usize = 64;

/// Per-user control files in a sharded map. Mutation of one user's file
/// is serialized by that user's named lock; the shard guard only
/// protects the map structure and is never held across I/O or diffing.
struct UserControls {
    shards: Vec<RwLock<HashMap<UserId, ControlFile>>>,
}

impl UserControls {
    fn new() -> UserControls {
        UserControls {
            shards: (0..CONTROL_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, user: &UserId) -> &RwLock<HashMap<UserId, ControlFile>> {
        &self.shards[fnv1a64(user.0.as_bytes()) as usize % CONTROL_SHARDS]
    }

    /// Reads `user`'s control file (if any) under the shard guard.
    fn read<T>(&self, user: &UserId, f: impl FnOnce(Option<&ControlFile>) -> T) -> T {
        f(self.shard(user).read().get(user))
    }

    /// Updates `user`'s control file (created on demand) under the shard
    /// guard. Callers hold the user's named lock.
    fn update<T>(&self, user: &UserId, f: impl FnOnce(&mut ControlFile) -> T) -> T {
        f(self.shard(user).write().entry(user.clone()).or_default())
    }
}

/// The snapshot service.
pub struct SnapshotService<R: Repository> {
    repo: R,
    controls: UserControls,
    locks: LockTable,
    diff_cache: ShardedDiffCache,
    clock: Clock,
    stats: StatCells,
    /// Admission control (§4.2: "the facility could also impose a limit
    /// on the number of simultaneous users"). [`UNLIMITED`] = no cap.
    max_concurrent: AtomicUsize,
    in_flight: AtomicUsize,
}

impl<R: Repository> SnapshotService<R> {
    /// Creates a service over `repo`, with a diff cache of `cache_slots`
    /// entries held for `cache_ttl`.
    pub fn new(repo: R, clock: Clock, cache_slots: usize, cache_ttl: Duration) -> Self {
        SnapshotService {
            repo,
            controls: UserControls::new(),
            locks: LockTable::new(),
            diff_cache: ShardedDiffCache::new(cache_slots, cache_ttl),
            clock,
            stats: StatCells::default(),
            max_concurrent: AtomicUsize::new(UNLIMITED),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Caps the number of simultaneously executing operations; further
    /// requests fail with [`ServiceError::Overloaded`] until others
    /// finish. `None` removes the cap.
    pub fn set_max_concurrent(&self, limit: Option<usize>) {
        self.max_concurrent
            // aide-lint: allow(seqcst): cap changes must be totally
            // ordered against concurrent admissions
            .store(limit.unwrap_or(UNLIMITED), Ordering::SeqCst);
    }

    /// Admits one operation, or reports overload. The slot is reserved
    /// with a compare-and-swap, so an over-cap burst never transiently
    /// counts rejected callers against admitted ones.
    fn admit(&self) -> Result<AdmissionGuard<'_>, ServiceError> {
        // aide-lint: allow(seqcst): the gate's reserve protocol, not a
        // stat counter — every access shares one total order
        let cap = self.max_concurrent.load(Ordering::SeqCst);
        if cap == UNLIMITED {
            // aide-lint: allow(seqcst): see above
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            return Ok(AdmissionGuard {
                counter: &self.in_flight,
            });
        }
        // aide-lint: allow(seqcst): see above
        let mut current = self.in_flight.load(Ordering::SeqCst);
        loop {
            if current >= cap {
                return Err(ServiceError::Overloaded { limit: cap });
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::SeqCst, // aide-lint: allow(seqcst): see above
                Ordering::SeqCst, // aide-lint: allow(seqcst): see above
            ) {
                Ok(_) => {
                    return Ok(AdmissionGuard {
                        counter: &self.in_flight,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The shared lock table (exposed for contention experiments).
    pub fn locks(&self) -> &LockTable {
        &self.locks
    }

    /// Loads `url`'s archive, degrading gracefully on per-key damage: a
    /// [`RepoError::Corrupt`] report is counted and served as "not
    /// archived" rather than failing the request, so one damaged record
    /// never takes the facility down — every other URL keeps serving,
    /// and a subsequent Remember of this URL self-heals it by storing a
    /// fresh archive over the damaged one. Infrastructure failures
    /// (`Io`/`Storage`) still surface as errors: those say the backend
    /// is sick, not the record.
    fn load_degraded(&self, url: &str) -> Result<Option<Arc<Archive>>, ServiceError> {
        match self.repo.load(url) {
            Ok(found) => Ok(found),
            Err(RepoError::Corrupt { .. }) => {
                self.stats.degraded_loads.fetch_add(1, Ordering::Relaxed);
                aide_obs::counter("snapshot.degraded.corrupt", 1);
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Remember: checks `body` in as the state of `url` on behalf of
    /// `user`.
    ///
    /// Locking: the URL's named lock covers the archive
    /// load-modify-store; the user's named lock (taken after the URL lock
    /// is released) covers the control-file update. Remembers of
    /// different URLs by different users share no exclusive lock.
    pub fn remember(
        &self,
        user: &UserId,
        url: &str,
        body: &str,
    ) -> Result<RememberOutcome, ServiceError> {
        let _slot = self.admit()?;
        let now = self.clock.now();
        let url_guard = self.locks.lock(&LockTable::url_key(url));
        let (outcome, created) = match self.load_degraded(url)? {
            Some(existing) => {
                if existing.head_text() == body {
                    // Unchanged: no clone, no store — the same early-out
                    // `Archive::checkin` would take.
                    (CheckinOutcome::Unchanged(existing.head()), false)
                } else {
                    let mut archive = (*existing).clone();
                    let out =
                        archive.checkin(body, &user.0, &format!("checked in by {user}"), now)?;
                    if out.is_new() {
                        self.repo.store(url, &archive)?;
                    }
                    (out, false)
                }
            }
            None => {
                let archive = Archive::create(
                    url,
                    body,
                    &user.0,
                    &format!("initial snapshot by {user}"),
                    now,
                );
                self.repo.store(url, &archive)?;
                (CheckinOutcome::NewRevision(RevId::FIRST), true)
            }
        };
        drop(url_guard);
        let _user_guard = self.locks.lock(&LockTable::user_key(&user.0));
        self.controls
            .update(user, |c| c.entry(url).record(outcome.rev(), now));
        self.stats.remembers.fetch_add(1, Ordering::Relaxed);
        if !outcome.is_new() {
            self.stats
                .unchanged_remembers
                .fetch_add(1, Ordering::Relaxed);
        }
        if aide_obs::enabled() {
            aide_obs::counter("snapshot.remember", 1);
            if !outcome.is_new() {
                aide_obs::counter("snapshot.remember.unchanged", 1);
            }
            aide_obs::observe("snapshot.remember.body_bytes", body.len() as u64);
        }
        Ok(RememberOutcome {
            rev: outcome.rev(),
            stored_new_revision: outcome.is_new(),
            created_archive: created,
        })
    }

    /// Diff: renders the changes between `user`'s last-remembered version
    /// of `url` and `current_body` (the page as it looks now). The
    /// current body is checked in first (so the comparison target is a
    /// stable revision), exactly as the CGI retrieved the page before
    /// comparing.
    pub fn diff_since_last(
        &self,
        user: &UserId,
        url: &str,
        current_body: &str,
        opts: &DiffOptions,
    ) -> Result<DiffOutcome, ServiceError> {
        let from = self
            .controls
            .read(user, |c| {
                c.and_then(|c| c.get(url)).and_then(|e| e.last_seen())
            })
            .ok_or_else(|| ServiceError::NoUserHistory {
                user: user.clone(),
                url: url.to_string(),
            })?;
        let to = self.remember(user, url, current_body)?.rev;
        self.diff_versions(url, from, to, opts)
    }

    /// Diff between two stored revisions, via the output cache.
    pub fn diff_versions(
        &self,
        url: &str,
        from: RevId,
        to: RevId,
        opts: &DiffOptions,
    ) -> Result<DiffOutcome, ServiceError> {
        let _slot = self.admit()?;
        let now = self.clock.now();
        aide_obs::counter("snapshot.diff", 1);
        let fp = ShardedDiffCache::options_fingerprint(&format!("{opts:?}"));
        if let Some(html) = self.diff_cache.get(url, from, to, fp, now) {
            aide_obs::counter("snapshot.diff.cache_hit.primary", 1);
            return Ok(DiffOutcome {
                html,
                from,
                to,
                from_cache: true,
            });
        }
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        let old = archive.checkout(from)?;
        let new = archive.checkout(to)?;
        if aide_obs::enabled() {
            // Chain length of the older checkout dominates archive cost:
            // RCS reverse deltas make the head free and ancient
            // revisions linear in their distance from it.
            aide_obs::observe(
                "snapshot.diff.delta_chain",
                u64::from(archive.head().0.saturating_sub(from.0)),
            );
        }
        drop(archive);
        let mut labeled = opts.clone();
        labeled.old_label = from.to_string();
        labeled.new_label = to.to_string();
        // Second, content-keyed cache probe: the rendering depends only on
        // the two token streams, the revision labels baked into the banner,
        // and the options — not on the URL. Two URLs (mirrors, re-archived
        // copies) with identical bodies share one HtmlDiff run. Tokenizing
        // is linear and cheap next to alignment, so a hit still wins big;
        // on a miss the tokens feed straight into `diff_tokens` and are
        // not re-lexed.
        let old_tokens = tokenize(&old);
        let new_tokens = tokenize(&new);
        let content_key = {
            let mut h = Fnv1a::new();
            h.update(&token_stream_hash(&old_tokens).to_le_bytes())
                .update(&token_stream_hash(&new_tokens).to_le_bytes())
                .update(labeled.old_label.as_bytes())
                .update(&[0xFF])
                .update(labeled.new_label.as_bytes())
                .update(&[0xFF])
                .update(&fp.to_le_bytes());
            h.finish()
        };
        aide_obs::observe(
            "snapshot.diff.tokens",
            (old_tokens.len() + new_tokens.len()) as u64,
        );
        if let Some(html) = self.diff_cache.get_by_content(content_key, now) {
            aide_obs::counter("snapshot.diff.cache_hit.content", 1);
            // Promote under the primary key so the next probe for this
            // exact (url, from, to) pair hits on the first lookup.
            self.diff_cache.put(url, from, to, fp, html.clone(), now);
            return Ok(DiffOutcome {
                html,
                from,
                to,
                from_cache: true,
            });
        }
        // `diff_tokens` draws its DP tables and token arenas from the
        // per-thread `aide_diffcore::scratch` pools, so a service thread
        // serving many diff requests reuses one set of buffers across
        // calls; the pool's footprint is visible as `diff.scratch.bytes`.
        let result = diff_tokens(&old_tokens, &new_tokens, &labeled);
        self.stats
            .htmldiff_invocations
            .fetch_add(1, Ordering::Relaxed);
        aide_obs::counter("snapshot.diff.cache_miss", 1);
        self.diff_cache
            .put(url, from, to, fp, result.html.clone(), now);
        self.diff_cache
            .put_by_content(content_key, result.html.clone(), now);
        Ok(DiffOutcome {
            html: result.html,
            from,
            to,
            from_cache: false,
        })
    }

    /// History: the full revision log (newest first), with a per-user
    /// seen flag for each revision.
    pub fn history(
        &self,
        user: &UserId,
        url: &str,
    ) -> Result<Vec<(RevisionMeta, bool)>, ServiceError> {
        aide_obs::counter("snapshot.history", 1);
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        Ok(self.controls.read(user, |c| {
            let seen = c.and_then(|c| c.get(url));
            archive
                .log()
                .into_iter()
                .map(|m| {
                    let has = seen.map(|c| c.has_seen(m.id)).unwrap_or(false);
                    (m.clone(), has)
                })
                .collect()
        }))
    }

    /// View: the full text of one revision, with a `BASE` tag inserted so
    /// relative links resolve against the original location (§4.1).
    pub fn view(&self, url: &str, rev: RevId) -> Result<String, ServiceError> {
        aide_obs::counter("snapshot.view", 1);
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        let body = archive.checkout(rev)?;
        drop(archive);
        match Url::parse(url) {
            Ok(base) => Ok(serialize(&rewrite_base(&lex(&body), &base))),
            Err(_) => Ok(body),
        }
    }

    /// The pristine text of one revision (no BASE rewriting) — what a
    /// co-resident service needs to re-remember content on a user's
    /// behalf.
    pub fn revision_text(&self, url: &str, rev: RevId) -> Result<String, ServiceError> {
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        Ok(archive.checkout(rev)?)
    }

    /// The revision in force at `date` (RCS `co -d`).
    pub fn view_at(&self, url: &str, date: Timestamp) -> Result<(RevId, String), ServiceError> {
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        Ok(archive.checkout_at(date)?)
    }

    /// Memento selection: the revision of `url` *closest* to `date`
    /// (RFC 7089 TimeGate semantics — clamped to the archive's first and
    /// last revisions, nearest neighbour in between, earlier on a tie),
    /// with its BASE-rewritten text. Contrast [`SnapshotService::view_at`],
    /// which is strict `co -d` and fails for dates before the first
    /// revision.
    pub fn memento_of(
        &self,
        url: &str,
        date: Timestamp,
    ) -> Result<(RevId, Timestamp, String), ServiceError> {
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        let (rev, rev_date) = archive.closest_to(date);
        let body = archive.checkout(rev)?;
        drop(archive);
        let body = match Url::parse(url) {
            Ok(base) => serialize(&rewrite_base(&lex(&body), &base)),
            Err(_) => body,
        };
        Ok((rev, rev_date, body))
    }

    /// Full revision metadata of `url`, oldest first — the TimeMap's
    /// source of truth (user-independent, unlike
    /// [`SnapshotService::history`]).
    pub fn revisions(&self, url: &str) -> Result<Vec<RevisionMeta>, ServiceError> {
        let archive = self
            .load_degraded(url)?
            .ok_or_else(|| ServiceError::NeverArchived(url.to_string()))?;
        Ok(archive.metas().to_vec())
    }

    /// The head revision of `url`, if archived.
    pub fn head(&self, url: &str) -> Result<Option<(RevId, Timestamp)>, ServiceError> {
        Ok(self
            .load_degraded(url)?
            .and_then(|a| a.metas().last().map(|m| (m.id, m.date))))
    }

    /// The most recent revision `user` has remembered of `url`.
    pub fn last_seen(&self, user: &UserId, url: &str) -> Option<RevId> {
        self.controls.read(user, |c| {
            c.and_then(|c| c.get(url)).and_then(|e| e.last_seen())
        })
    }

    /// All URLs anyone has archived.
    pub fn archived_urls(&self) -> Result<Vec<String>, ServiceError> {
        Ok(self.repo.keys()?)
    }

    /// Repository storage accounting (the §7 numbers).
    pub fn storage(&self) -> Result<StorageStats, ServiceError> {
        Ok(self.repo.stats()?)
    }

    /// Per-URL storage, largest first (§7 singles out the top three).
    pub fn storage_by_url(&self) -> Result<Vec<(String, usize)>, ServiceError> {
        Ok(self.repo.sizes()?)
    }

    /// A consistent-enough snapshot of the service counters, read from
    /// atomics without taking any lock.
    pub fn snapshot_stats(&self) -> ServiceStats {
        ServiceStats {
            htmldiff_invocations: self.stats.htmldiff_invocations.load(Ordering::Relaxed),
            remembers: self.stats.remembers.load(Ordering::Relaxed),
            unchanged_remembers: self.stats.unchanged_remembers.load(Ordering::Relaxed),
            degraded_loads: self.stats.degraded_loads.load(Ordering::Relaxed),
        }
    }

    /// Service counters (alias of [`SnapshotService::snapshot_stats`]).
    pub fn service_stats(&self) -> ServiceStats {
        self.snapshot_stats()
    }

    /// Diff-cache counters.
    pub fn diff_cache_stats(&self) -> crate::diffcache::DiffCacheStats {
        self.diff_cache.stats()
    }

    /// Publishes the service's aggregate counters — [`ServiceStats`],
    /// [`LockStats`](crate::locks::LockStats), and
    /// [`DiffCacheStats`](crate::diffcache::DiffCacheStats) — as
    /// `snapshot.*` gauges on the installed observability subscriber;
    /// no-op without one. The bespoke atomic structs remain the source
    /// of truth; this mirrors them into the registry at export time so
    /// the hot paths stay uninstrumented.
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        let s = self.snapshot_stats();
        aide_obs::gauge("snapshot.remembers", s.remembers);
        aide_obs::gauge("snapshot.unchanged_remembers", s.unchanged_remembers);
        aide_obs::gauge("snapshot.htmldiff_invocations", s.htmldiff_invocations);
        aide_obs::gauge("snapshot.degraded_loads", s.degraded_loads);
        let l = self.locks.stats();
        aide_obs::gauge("snapshot.locks.acquisitions", l.acquisitions);
        aide_obs::gauge("snapshot.locks.contended", l.contended);
        aide_obs::gauge("snapshot.locks.flights", l.flights);
        aide_obs::gauge("snapshot.locks.piggybacked", l.piggybacked);
        let d = self.diff_cache.stats();
        aide_obs::gauge("snapshot.diff_cache.hits", d.hits);
        aide_obs::gauge("snapshot.diff_cache.misses", d.misses);
        aide_obs::gauge("snapshot.diff_cache.evictions", d.evictions);
        aide_obs::gauge(
            "snapshot.diff_cache.hit_permille",
            (d.hit_ratio() * 1000.0).round() as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_rcs::repo::MemRepository;

    fn service() -> (Clock, SnapshotService<MemRepository>) {
        let clock = Clock::starting_at(Timestamp(1_000_000));
        let s = SnapshotService::new(MemRepository::new(), clock.clone(), 64, Duration::hours(4));
        (clock, s)
    }

    fn fred() -> UserId {
        UserId::new("douglis@research.att.com")
    }

    fn tom() -> UserId {
        UserId::new("tball@research.att.com")
    }

    const URL: &str = "http://www.usenix.org/index.html";

    #[test]
    fn first_remember_creates_archive() {
        let (_, s) = service();
        let out = s
            .remember(&fred(), URL, "<HTML><P>v1 body.</HTML>")
            .unwrap();
        assert!(out.created_archive);
        assert!(out.stored_new_revision);
        assert_eq!(out.rev, RevId(1));
    }

    #[test]
    fn unchanged_remember_stores_nothing() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "<HTML>same</HTML>").unwrap();
        clock.advance(Duration::days(1));
        let out = s.remember(&fred(), URL, "<HTML>same</HTML>").unwrap();
        assert!(!out.stored_new_revision);
        assert_eq!(out.rev, RevId(1));
        assert_eq!(s.snapshot_stats().unchanged_remembers, 1);
    }

    #[test]
    fn memento_clamps_and_revisions_list_oldest_first() {
        let (clock, s) = service();
        let t1 = clock.now();
        s.remember(&fred(), URL, "<HTML>v1</HTML>").unwrap();
        clock.advance(Duration::days(2));
        let t2 = clock.now();
        s.remember(&fred(), URL, "<HTML>v2</HTML>").unwrap();

        // Before the first revision: clamp to it (view_at would fail).
        let (rev, date, body) = s.memento_of(URL, Timestamp::EPOCH).unwrap();
        assert_eq!((rev, date), (RevId(1), t1));
        assert!(body.contains("v1"));
        // After the last: clamp to the head.
        let (rev, date, _) = s.memento_of(URL, t2 + Duration::days(30)).unwrap();
        assert_eq!((rev, date), (RevId(2), t2));
        // Closer to the first: the first wins.
        let (rev, _, _) = s.memento_of(URL, t1 + Duration::hours(1)).unwrap();
        assert_eq!(rev, RevId(1));
        // Memento bodies get the same BASE rewrite as view().
        assert!(body.contains("BASE"), "{body}");

        let metas = s.revisions(URL).unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!((metas[0].id, metas[0].date), (RevId(1), t1));
        assert_eq!((metas[1].id, metas[1].date), (RevId(2), t2));

        assert!(matches!(
            s.revisions("http://nowhere/x"),
            Err(ServiceError::NeverArchived(_))
        ));
        assert!(matches!(
            s.memento_of("http://nowhere/x", t1),
            Err(ServiceError::NeverArchived(_))
        ));
    }

    #[test]
    fn two_users_share_one_archive() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "<HTML>v1</HTML>").unwrap();
        clock.advance(Duration::hours(1));
        // Tom remembers the same unchanged page: no new revision, but
        // Tom's control file now records 1.1.
        let out = s.remember(&tom(), URL, "<HTML>v1</HTML>").unwrap();
        assert!(!out.stored_new_revision);
        assert_eq!(s.last_seen(&tom(), URL), Some(RevId(1)));
        assert_eq!(
            s.storage().unwrap().revisions,
            1,
            "saved at most once per change"
        );
    }

    #[test]
    fn diff_since_last_compares_and_advances() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "<HTML><P>original sentence stays.</HTML>")
            .unwrap();
        clock.advance(Duration::days(3));
        let out = s
            .diff_since_last(
                &fred(),
                URL,
                "<HTML><P>original sentence stays. a new one arrives!</HTML>",
                &DiffOptions::default(),
            )
            .unwrap();
        assert_eq!(out.from, RevId(1));
        assert_eq!(out.to, RevId(2));
        assert!(out
            .html
            .contains("<STRONG><I>a new one arrives!</I></STRONG>"));
        assert!(
            out.html.contains("1.1"),
            "banner labels revisions: {}",
            out.html
        );
    }

    #[test]
    fn diff_without_history_errors() {
        let (_, s) = service();
        s.remember(&fred(), URL, "x").unwrap();
        let err = s
            .diff_since_last(&tom(), URL, "y", &DiffOptions::default())
            .unwrap_err();
        assert!(matches!(err, ServiceError::NoUserHistory { .. }));
    }

    #[test]
    fn diff_cache_shares_renderings() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "<HTML><P>v1 text.</HTML>")
            .unwrap();
        clock.advance(Duration::hours(1));
        s.remember(&fred(), URL, "<HTML><P>v2 text!</HTML>")
            .unwrap();
        let opts = DiffOptions::default();
        let a = s.diff_versions(URL, RevId(1), RevId(2), &opts).unwrap();
        assert!(!a.from_cache);
        let b = s.diff_versions(URL, RevId(1), RevId(2), &opts).unwrap();
        assert!(b.from_cache);
        assert_eq!(a.html, b.html);
        assert_eq!(
            s.snapshot_stats().htmldiff_invocations,
            1,
            "HtmlDiff ran once"
        );
        assert_eq!(s.diff_cache_stats().hits, 1);
    }

    #[test]
    fn content_key_shares_renderings_across_urls() {
        // Two URLs carry the same bodies at the same revision numbers
        // (mirror sites). The second diff finds the first one's rendering
        // through the content-keyed cache path: HtmlDiff runs once.
        let (clock, s) = service();
        const MIRROR: &str = "http://mirror.usenix.org/index.html";
        for url in [URL, MIRROR] {
            s.remember(&fred(), url, "<HTML><P>v1 text.</HTML>")
                .unwrap();
        }
        clock.advance(Duration::hours(1));
        for url in [URL, MIRROR] {
            s.remember(&fred(), url, "<HTML><P>v2 text!</HTML>")
                .unwrap();
        }
        let opts = DiffOptions::default();
        let a = s.diff_versions(URL, RevId(1), RevId(2), &opts).unwrap();
        assert!(!a.from_cache);
        let b = s.diff_versions(MIRROR, RevId(1), RevId(2), &opts).unwrap();
        assert!(b.from_cache, "mirror body should hit via content key");
        assert_eq!(a.html, b.html);
        assert_eq!(s.snapshot_stats().htmldiff_invocations, 1);
        // The hit was promoted under the mirror's primary key: the next
        // probe short-circuits before tokenizing anything.
        let c = s.diff_versions(MIRROR, RevId(1), RevId(2), &opts).unwrap();
        assert!(c.from_cache);
        assert_eq!(s.snapshot_stats().htmldiff_invocations, 1);
    }

    #[test]
    fn content_key_distinguishes_revision_labels() {
        // Same bodies but different revision pairs render different
        // banners, so the content key must not conflate them.
        let (clock, s) = service();
        s.remember(&fred(), URL, "<P>a.").unwrap();
        clock.advance(Duration::hours(1));
        s.remember(&fred(), URL, "<P>b.").unwrap();
        clock.advance(Duration::hours(1));
        s.remember(&fred(), URL, "<P>a.").unwrap();
        let opts = DiffOptions::default();
        // 1→2 and 3→2 compare the same two bodies in opposite roles with
        // different labels; 1→2 and 1→2 would share. Use 1→2 then 3→2.
        let a = s.diff_versions(URL, RevId(1), RevId(2), &opts).unwrap();
        let b = s.diff_versions(URL, RevId(3), RevId(2), &opts).unwrap();
        assert!(!a.from_cache);
        assert!(!b.from_cache, "different labels must miss the content key");
        assert_eq!(s.snapshot_stats().htmldiff_invocations, 2);
    }

    #[test]
    fn different_options_bypass_cache() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "<P>v1.").unwrap();
        clock.advance(Duration::hours(1));
        s.remember(&fred(), URL, "<P>v2.").unwrap();
        let merged = DiffOptions::default();
        let only = DiffOptions {
            presentation: aide_htmldiff::Presentation::OnlyDifferences,
            ..DiffOptions::default()
        };
        s.diff_versions(URL, RevId(1), RevId(2), &merged).unwrap();
        let b = s.diff_versions(URL, RevId(1), RevId(2), &only).unwrap();
        assert!(!b.from_cache);
        assert_eq!(s.snapshot_stats().htmldiff_invocations, 2);
    }

    #[test]
    fn history_marks_seen_revisions() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "v1").unwrap();
        clock.advance(Duration::days(1));
        s.remember(&tom(), URL, "v2").unwrap();
        clock.advance(Duration::days(1));
        s.remember(&fred(), URL, "v3").unwrap();
        let h = s.history(&fred(), URL).unwrap();
        // Newest first: 1.3 (seen), 1.2 (not seen by fred), 1.1 (seen).
        assert_eq!(h.len(), 3);
        assert_eq!((h[0].0.id, h[0].1), (RevId(3), true));
        assert_eq!((h[1].0.id, h[1].1), (RevId(2), false));
        assert_eq!((h[2].0.id, h[2].1), (RevId(1), true));
    }

    #[test]
    fn view_inserts_base() {
        let (_, s) = service();
        s.remember(
            &fred(),
            URL,
            "<HTML><HEAD></HEAD><BODY><A HREF=\"rel.html\">x</A></BODY></HTML>",
        )
        .unwrap();
        let body = s.view(URL, RevId(1)).unwrap();
        assert!(
            body.contains(r#"<BASE HREF="http://www.usenix.org/index.html">"#),
            "{body}"
        );
    }

    #[test]
    fn view_at_date() {
        let (clock, s) = service();
        s.remember(&fred(), URL, "v1").unwrap();
        let t1 = clock.now();
        clock.advance(Duration::days(7));
        s.remember(&fred(), URL, "v2").unwrap();
        let (rev, body) = s.view_at(URL, t1 + Duration::days(1)).unwrap();
        assert_eq!(rev, RevId(1));
        assert!(body.contains("v1"));
    }

    #[test]
    fn errors_for_unknown_urls() {
        let (_, s) = service();
        assert!(matches!(
            s.history(&fred(), "http://never/"),
            Err(ServiceError::NeverArchived(_))
        ));
        assert!(matches!(
            s.view("http://never/", RevId(1)),
            Err(ServiceError::NeverArchived(_))
        ));
        assert_eq!(s.head("http://never/").unwrap(), None);
    }

    #[test]
    fn admission_control_limits_simultaneous_operations() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let clock = Clock::starting_at(Timestamp(1_000_000));
        let s = Arc::new(SnapshotService::new(
            MemRepository::new(),
            clock.clone(),
            64,
            Duration::hours(4),
        ));
        // A saturated service (cap 0) rejects everything, deterministically.
        s.set_max_concurrent(Some(0));
        assert!(matches!(
            s.remember(&UserId::new("u@x"), "http://h/p", "x"),
            Err(ServiceError::Overloaded { limit: 0 })
        ));

        // Under a real cap, concurrent traffic sees only Ok or Overloaded
        // (never a panic or corruption), and the in-flight count returns
        // to zero so subsequent requests are admitted.
        s.set_max_concurrent(Some(2));
        let outcomes = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..8 {
            let s = s.clone();
            let outcomes = outcomes.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..10 {
                    match s.remember(
                        &UserId::new("u@x"),
                        &format!("http://h{i}/p{k}"),
                        &format!("body {i} {k}"),
                    ) {
                        Ok(_) | Err(ServiceError::Overloaded { .. }) => {
                            outcomes.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => panic!("unexpected error under load: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(outcomes.load(Ordering::SeqCst), 80);
        // After the storm, the cap can be lifted and service resumes.
        s.set_max_concurrent(None);
        assert!(s
            .remember(&UserId::new("u@x"), "http://after/", "x")
            .is_ok());
    }

    #[test]
    fn cas_admission_never_penalizes_admitted_callers() {
        // With a cap of 1, a rejected caller must not consume the slot:
        // a subsequent caller is admitted immediately (the old
        // fetch_add-then-check gate could transiently over-count).
        let (_, s) = service();
        s.set_max_concurrent(Some(1));
        for k in 0..20 {
            s.remember(&fred(), &format!("http://seq/{k}"), "body")
                .unwrap();
        }
        assert_eq!(s.snapshot_stats().remembers, 20);
    }

    #[test]
    fn concurrent_remembers_of_distinct_urls() {
        use std::sync::Arc;
        let clock = Clock::starting_at(Timestamp(1_000_000));
        let s = Arc::new(SnapshotService::new(
            MemRepository::new(),
            clock.clone(),
            64,
            Duration::hours(4),
        ));
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let user = UserId::new(&format!("user{t}@x"));
                for k in 0..10 {
                    let url = format!("http://h{t}/p{k}");
                    let out = s.remember(&user, &url, &format!("body {t} {k}")).unwrap();
                    assert!(out.created_archive);
                    assert_eq!(s.last_seen(&user, &url), Some(RevId(1)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.storage().unwrap().archives, 80);
        assert_eq!(s.snapshot_stats().remembers, 80);
        // Distinct keys: the named locks never collided.
        assert_eq!(s.locks().stats().contended, 0);
    }

    /// A repository stub whose `load` reports designated keys as
    /// corrupt — the shape `DiskRepository` produces when a record's
    /// checksum no longer matches its bytes.
    struct CorruptingRepo {
        inner: MemRepository,
        poisoned: RwLock<std::collections::BTreeSet<String>>,
    }

    impl CorruptingRepo {
        fn new() -> CorruptingRepo {
            CorruptingRepo {
                inner: MemRepository::new(),
                poisoned: RwLock::new(Default::default()),
            }
        }

        fn poison(&self, key: &str) {
            self.poisoned.write().insert(key.to_string());
        }
    }

    impl Repository for CorruptingRepo {
        fn load(&self, key: &str) -> Result<Option<std::sync::Arc<Archive>>, RepoError> {
            if self.poisoned.read().contains(key) {
                return Err(RepoError::corrupt(key, "checksum mismatch (stubbed)"));
            }
            self.inner.load(key)
        }
        fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
            // Storing fresh content over a damaged record heals it.
            self.poisoned.write().remove(key);
            self.inner.store(key, archive)
        }
        fn remove(&self, key: &str) -> Result<bool, RepoError> {
            self.inner.remove(key)
        }
        fn keys(&self) -> Result<Vec<String>, RepoError> {
            self.inner.keys()
        }
        fn stats(&self) -> Result<StorageStats, RepoError> {
            self.inner.stats()
        }
        fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
            self.inner.sizes()
        }
    }

    #[test]
    fn corrupt_archive_degrades_instead_of_failing() {
        let clock = Clock::starting_at(Timestamp(1_000_000));
        let repo = CorruptingRepo::new();
        let s = SnapshotService::new(repo, clock.clone(), 64, Duration::hours(4));
        s.remember(&fred(), URL, "<P>good body.").unwrap();
        s.remember(&fred(), "http://other/", "<P>unrelated.")
            .unwrap();

        // The record rots on disk.
        s.repo.poison(URL);

        // Reads degrade to "not archived" — the request completes with a
        // well-defined answer instead of a storage error...
        assert!(matches!(
            s.history(&fred(), URL),
            Err(ServiceError::NeverArchived(_))
        ));
        assert_eq!(s.head(URL).unwrap(), None);
        // ...while untouched URLs are unaffected.
        assert_eq!(s.history(&fred(), "http://other/").unwrap().len(), 1);
        let degraded = s.snapshot_stats().degraded_loads;
        assert!(degraded >= 2, "degradations counted: {degraded}");

        // A fresh Remember self-heals: it sees "no archive", creates a
        // new one, and the URL serves again.
        let out = s.remember(&fred(), URL, "<P>good body.").unwrap();
        assert!(out.created_archive, "healed by storing a fresh archive");
        assert_eq!(s.history(&fred(), URL).unwrap().len(), 1);
        assert_eq!(s.head(URL).unwrap().map(|(r, _)| r), Some(RevId(1)));
    }

    #[test]
    fn storage_accounting() {
        let (clock, s) = service();
        s.remember(&fred(), "http://a/", &"line of text\n".repeat(50))
            .unwrap();
        clock.advance(Duration::hours(1));
        s.remember(&fred(), "http://b/", &"other content\n".repeat(500))
            .unwrap();
        let stats = s.storage().unwrap();
        assert_eq!(stats.archives, 2);
        let by_url = s.storage_by_url().unwrap();
        assert_eq!(by_url[0].0, "http://b/", "largest first");
    }
}
