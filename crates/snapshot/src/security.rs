//! Identity and privacy models (§4.2).
//!
//! The deployed prototype was open: "In order to use the facility one
//! must give an identifier (currently one's email address, which anyone
//! can specify)... Browsing the repository can therefore indicate which
//! user has an interest in which page, how often the user has saved a new
//! checkpoint, and so on." The paper sketches the fix: "By moving to an
//! authenticated system... The repository would associate impersonal
//! account identifiers with a set of URLs and version numbers, and
//! passwords would be needed to access one of these accounts."
//!
//! Both models are implemented. [`IdentityModel::Open`] accepts any
//! email-shaped identifier; [`IdentityModel::Authenticated`] maps
//! passworded accounts to opaque ids so repository keys no longer name
//! people.

use aide_util::checksum::fnv1a64;
use std::collections::BTreeMap;
use std::fmt;

/// Which identity regime the service runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdentityModel {
    /// Anyone may claim any email-shaped identifier (the prototype).
    #[default]
    Open,
    /// Accounts with passwords and opaque storage identifiers.
    Authenticated,
}

/// Errors from the identity layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The identifier is not email-shaped.
    BadIdentifier(String),
    /// Unknown account.
    NoSuchAccount(String),
    /// Wrong password.
    BadPassword,
    /// Account already exists.
    AccountExists(String),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::BadIdentifier(s) => write!(f, "not an email-shaped identifier: {s:?}"),
            AuthError::NoSuchAccount(s) => write!(f, "no such account: {s}"),
            AuthError::BadPassword => write!(f, "bad password"),
            AuthError::AccountExists(s) => write!(f, "account exists: {s}"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Validates the prototype's identifier rule: something email-shaped.
pub fn validate_email_id(id: &str) -> Result<(), AuthError> {
    let ok = id.contains('@')
        && !id.starts_with('@')
        && !id.ends_with('@')
        && id.chars().filter(|&c| c == '@').count() == 1
        && !id.chars().any(|c| c.is_whitespace() || c == '\t');
    if ok {
        Ok(())
    } else {
        Err(AuthError::BadIdentifier(id.to_string()))
    }
}

#[derive(Debug, Clone)]
struct Account {
    /// Salted hash of the password. FNV is *not* a cryptographic hash;
    /// it stands in for crypt(3) here exactly as crypt(3) stood in for a
    /// real KDF in 1996. The interface is what matters for the model.
    password_hash: u64,
    salt: u64,
    /// The opaque identifier used as the storage key.
    storage_id: String,
}

/// The account registry for [`IdentityModel::Authenticated`].
#[derive(Debug, Clone, Default)]
pub struct AccountRegistry {
    accounts: BTreeMap<String, Account>,
    next_serial: u64,
}

impl AccountRegistry {
    /// Creates an empty registry.
    pub fn new() -> AccountRegistry {
        AccountRegistry::default()
    }

    fn hash(password: &str, salt: u64) -> u64 {
        fnv1a64(format!("{salt:016x}:{password}").as_bytes())
    }

    /// Creates an account; returns the opaque storage id.
    pub fn create(&mut self, name: &str, password: &str) -> Result<String, AuthError> {
        if self.accounts.contains_key(name) {
            return Err(AuthError::AccountExists(name.to_string()));
        }
        self.next_serial += 1;
        let salt = fnv1a64(format!("{}:{}", self.next_serial, name).as_bytes());
        let storage_id = format!(
            "acct-{:016x}",
            fnv1a64(format!("{salt:x}:{}", self.next_serial).as_bytes())
        );
        self.accounts.insert(
            name.to_string(),
            Account {
                password_hash: Self::hash(password, salt),
                salt,
                storage_id: storage_id.clone(),
            },
        );
        Ok(storage_id)
    }

    /// Authenticates and returns the opaque storage id.
    pub fn login(&self, name: &str, password: &str) -> Result<String, AuthError> {
        let acct = self
            .accounts
            .get(name)
            .ok_or_else(|| AuthError::NoSuchAccount(name.to_string()))?;
        if Self::hash(password, acct.salt) == acct.password_hash {
            Ok(acct.storage_id.clone())
        } else {
            Err(AuthError::BadPassword)
        }
    }

    /// What a repository-browsing attacker learns under this model: the
    /// opaque ids only — no mapping back to people.
    pub fn visible_storage_ids(&self) -> Vec<String> {
        self.accounts
            .values()
            .map(|a| a.storage_id.clone())
            .collect()
    }
}

/// Resolves a claimed identity to the storage key the service files
/// control data under.
pub fn resolve_storage_id(
    model: IdentityModel,
    registry: &AccountRegistry,
    claimed: &str,
    password: Option<&str>,
) -> Result<String, AuthError> {
    match model {
        IdentityModel::Open => {
            validate_email_id(claimed)?;
            // The storage key IS the email — the privacy leak the paper
            // points out.
            Ok(claimed.to_string())
        }
        IdentityModel::Authenticated => registry.login(claimed, password.unwrap_or("")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn email_validation() {
        assert!(validate_email_id("douglis@research.att.com").is_ok());
        assert!(validate_email_id("no-at-sign").is_err());
        assert!(validate_email_id("@leading").is_err());
        assert!(validate_email_id("trailing@").is_err());
        assert!(validate_email_id("two@@ats").is_err());
        assert!(validate_email_id("has space@x").is_err());
    }

    #[test]
    fn open_model_uses_email_as_key() {
        let reg = AccountRegistry::new();
        let id =
            resolve_storage_id(IdentityModel::Open, &reg, "ball@research.att.com", None).unwrap();
        assert_eq!(id, "ball@research.att.com", "the leak: keys name people");
    }

    #[test]
    fn open_model_accepts_impersonation() {
        // Anyone can claim anyone — the documented weakness.
        let reg = AccountRegistry::new();
        assert!(resolve_storage_id(IdentityModel::Open, &reg, "victim@example.com", None).is_ok());
    }

    #[test]
    fn authenticated_model_requires_password() {
        let mut reg = AccountRegistry::new();
        let sid = reg.create("fred", "difference-engine").unwrap();
        let ok = resolve_storage_id(
            IdentityModel::Authenticated,
            &reg,
            "fred",
            Some("difference-engine"),
        )
        .unwrap();
        assert_eq!(ok, sid);
        assert_eq!(
            resolve_storage_id(IdentityModel::Authenticated, &reg, "fred", Some("wrong")),
            Err(AuthError::BadPassword)
        );
        assert!(matches!(
            resolve_storage_id(IdentityModel::Authenticated, &reg, "ghost", Some("x")),
            Err(AuthError::NoSuchAccount(_))
        ));
    }

    #[test]
    fn storage_ids_are_opaque() {
        let mut reg = AccountRegistry::new();
        let sid = reg.create("fred@research.att.com", "pw").unwrap();
        assert!(
            !sid.contains("fred"),
            "opaque id must not embed the name: {sid}"
        );
        assert!(sid.starts_with("acct-"));
        for visible in reg.visible_storage_ids() {
            assert!(!visible.contains("fred"));
        }
    }

    #[test]
    fn duplicate_account_rejected() {
        let mut reg = AccountRegistry::new();
        reg.create("a", "1").unwrap();
        assert!(matches!(
            reg.create("a", "2"),
            Err(AuthError::AccountExists(_))
        ));
    }

    #[test]
    fn distinct_accounts_get_distinct_ids() {
        let mut reg = AccountRegistry::new();
        let a = reg.create("a", "pw").unwrap();
        let b = reg.create("b", "pw").unwrap();
        assert_ne!(a, b);
    }
}
