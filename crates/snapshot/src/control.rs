//! Per-user control files.
//!
//! "A slight twist on the versioning is that we wish to track the times
//! at which each user checked in a page, even if the page hasn't changed
//! between check-ins of that page by different users. This is
//! accomplished outside of RCS by maintaining a per-user control file,
//! allowing quick access to a user's access history" (§2.2). The second
//! prototype keeps "a set of version numbers... for each ⟨user,URL⟩
//! combination" (§4.1); this module stores both: the version list and the
//! check-in times.
//!
//! The file format is line-oriented text, one URL per line:
//!
//! ```text
//! <url>\t<rev>,<rev>,...\t<time>,<time>,...
//! ```

use aide_rcs::archive::RevId;
use aide_util::time::Timestamp;
use std::collections::BTreeMap;

/// The record for one URL in one user's control file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UserControl {
    /// Versions this user has checked in / seen, in check-in order.
    pub revisions: Vec<RevId>,
    /// The times of those check-ins (same length as `revisions`).
    pub times: Vec<Timestamp>,
}

impl UserControl {
    /// The most recent version this user has seen.
    pub fn last_seen(&self) -> Option<RevId> {
        self.revisions.last().copied()
    }

    /// The time of the user's most recent check-in of this URL.
    pub fn last_time(&self) -> Option<Timestamp> {
        self.times.last().copied()
    }

    /// Records a check-in. Consecutive duplicates update the time only —
    /// "the times at which each user checked in a page, even if the page
    /// hasn't changed".
    pub fn record(&mut self, rev: RevId, when: Timestamp) {
        if self.revisions.last() == Some(&rev) {
            if let Some(t) = self.times.last_mut() {
                *t = when;
            }
            return;
        }
        self.revisions.push(rev);
        self.times.push(when);
    }

    /// Whether the user has ever seen `rev`.
    pub fn has_seen(&self, rev: RevId) -> bool {
        self.revisions.contains(&rev)
    }
}

/// One user's complete control file: URL → record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlFile {
    entries: BTreeMap<String, UserControl>,
}

impl ControlFile {
    /// Creates an empty control file.
    pub fn new() -> ControlFile {
        ControlFile::default()
    }

    /// The record for `url`, if any.
    pub fn get(&self, url: &str) -> Option<&UserControl> {
        self.entries.get(url)
    }

    /// Mutable record for `url`, created on demand.
    pub fn entry(&mut self, url: &str) -> &mut UserControl {
        self.entries.entry(url.to_string()).or_default()
    }

    /// All URLs this user tracks, sorted.
    pub fn urls(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of tracked URLs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the user tracks nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the text format.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (url, c) in &self.entries {
            let revs: Vec<String> = c.revisions.iter().map(|r| r.to_string()).collect();
            let times: Vec<String> = c.times.iter().map(|t| t.0.to_string()).collect();
            out.push_str(&format!("{url}\t{}\t{}\n", revs.join(","), times.join(",")));
        }
        out
    }

    /// Parses the text format. Malformed lines are skipped (a corrupted
    /// entry loses one URL's history, not the whole file).
    pub fn parse(text: &str) -> ControlFile {
        let mut out = ControlFile::new();
        for line in text.lines() {
            let mut parts = line.split('\t');
            let (Some(url), Some(revs), Some(times)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let revisions: Option<Vec<RevId>> = revs
                .split(',')
                .filter(|s| !s.is_empty())
                .map(RevId::parse)
                .collect();
            let stamps: Option<Vec<Timestamp>> = times
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse::<u64>().ok().map(Timestamp))
                .collect();
            if let (Some(revisions), Some(times)) = (revisions, stamps) {
                if revisions.len() == times.len() && !revisions.is_empty() {
                    out.entries
                        .insert(url.to_string(), UserControl { revisions, times });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut c = UserControl::default();
        assert_eq!(c.last_seen(), None);
        c.record(RevId(1), Timestamp(100));
        c.record(RevId(3), Timestamp(200));
        assert_eq!(c.last_seen(), Some(RevId(3)));
        assert!(c.has_seen(RevId(1)));
        assert!(!c.has_seen(RevId(2)));
    }

    #[test]
    fn duplicate_record_updates_time_only() {
        let mut c = UserControl::default();
        c.record(RevId(2), Timestamp(100));
        c.record(RevId(2), Timestamp(500));
        assert_eq!(c.revisions.len(), 1);
        assert_eq!(c.last_time(), Some(Timestamp(500)));
    }

    #[test]
    fn nonconsecutive_repeat_is_recorded() {
        // Seeing 1.1, then 1.2, then 1.1 again (via History) is three events.
        let mut c = UserControl::default();
        c.record(RevId(1), Timestamp(1));
        c.record(RevId(2), Timestamp(2));
        c.record(RevId(1), Timestamp(3));
        assert_eq!(c.revisions.len(), 3);
    }

    #[test]
    fn file_roundtrip() {
        let mut f = ControlFile::new();
        f.entry("http://b/page").record(RevId(1), Timestamp(10));
        f.entry("http://b/page").record(RevId(2), Timestamp(20));
        f.entry("http://a/other").record(RevId(5), Timestamp(30));
        let parsed = ControlFile::parse(&f.emit());
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_skips_malformed_lines() {
        let text = "http://good/\t1.1,1.2\t5,9\ngarbage without tabs\nhttp://bad/\t1.x\t7\nhttp://short/\t1.1\t\n";
        let f = ControlFile::parse(text);
        assert_eq!(f.len(), 1);
        assert!(f.get("http://good/").is_some());
    }

    #[test]
    fn urls_sorted() {
        let mut f = ControlFile::new();
        f.entry("http://z/").record(RevId(1), Timestamp(1));
        f.entry("http://a/").record(RevId(1), Timestamp(1));
        assert_eq!(f.urls(), vec!["http://a/", "http://z/"]);
    }

    #[test]
    fn empty_file() {
        let f = ControlFile::parse("");
        assert!(f.is_empty());
        assert_eq!(f.emit(), "");
    }
}
