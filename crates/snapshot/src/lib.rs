//! The snapshot facility: AIDE's version service (§4).
//!
//! "Our approach is to run a service that is separate from both the
//! content provider and the client, and uses RCS to store versions."
//! Pages are checked in on request; "subsequent requests to remember the
//! state of the page result in an RCS check-in operation that saves only
//! the differences". A per-`<user,URL>` control file records "a set of
//! version numbers... for each ⟨user,URL⟩ combination", replacing the
//! first prototype's fragile date addressing. §4.2 adds the systems
//! concerns this crate models explicitly: CGI keep-alives, lock-based
//! synchronization, HtmlDiff output caching, and the security and privacy
//! properties of the open repository.
//!
//! - [`service`]: the [`SnapshotService`] — remember / diff / history /
//!   view, over any [`aide_rcs::Repository`].
//! - [`control`]: per-user control files (text format, like the perl
//!   original kept beside the RCS area).
//! - [`locks`]: the per-URL + per-user lock table, with the queued-wait
//!   duplicate-work suppression §4.2 wishes for.
//! - [`diffcache`]: the HtmlDiff output cache ("many users who have seen
//!   versions N and N+1 of a page could retrieve HtmlDiff(pageN, pageN+1)
//!   with a single invocation").
//! - [`keepalive`]: the CGI timeout/heartbeat dance (the forked child
//!   emitting spaces).
//! - [`security`]: the open-vs-authenticated identity models and what
//!   each exposes.

pub mod control;
pub mod diffcache;
pub mod keepalive;
pub mod locks;
pub mod security;
pub mod service;

pub use control::{ControlFile, UserControl};
pub use diffcache::{DiffCache, ShardedDiffCache};
pub use locks::LockTable;
pub use service::{DiffOutcome, RememberOutcome, ServiceError, SnapshotService, UserId};
