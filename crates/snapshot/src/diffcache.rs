//! The HtmlDiff output cache (§4.2).
//!
//! "The need to execute HtmlDiff on the server can result in high
//! processor loads if the facility is heavily used. These loads can be
//! alleviated by caching the output of HtmlDiff for a while, so many
//! users who have seen versions N and N+1 of a page could retrieve
//! HtmlDiff(pageN, pageN+1) with a single invocation of HtmlDiff."
//!
//! Keys are `(url, old_rev, new_rev, options-fingerprint)`; entries
//! expire after a TTL and the cache is capacity-bounded with LRU
//! eviction.

use aide_rcs::archive::RevId;
use aide_util::checksum::fnv1a64;
use aide_util::sync::Mutex;
use aide_util::time::{Duration, Timestamp};
use std::collections::HashMap;

/// Cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiffCacheStats {
    /// Lookups that found a fresh entry.
    pub hits: u64,
    /// Lookups that missed (absent or expired).
    pub misses: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl DiffCacheStats {
    /// Hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    html: String,
    stored_at: Timestamp,
    last_used: Timestamp,
}

/// A bounded, TTL'd cache of rendered diffs.
#[derive(Debug)]
pub struct DiffCache {
    entries: HashMap<(String, RevId, RevId, u64), Entry>,
    capacity: usize,
    ttl: Duration,
    stats: DiffCacheStats,
}

impl DiffCache {
    /// Creates a cache holding up to `capacity` rendered diffs for `ttl`.
    pub fn new(capacity: usize, ttl: Duration) -> DiffCache {
        DiffCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            ttl,
            stats: DiffCacheStats::default(),
        }
    }

    /// Fingerprints a rendering-options description (e.g. `format!("{opts:?}")`),
    /// so differently-rendered diffs do not collide.
    pub fn options_fingerprint(description: &str) -> u64 {
        fnv1a64(description.as_bytes())
    }

    /// Looks up a rendered diff.
    pub fn get(
        &mut self,
        url: &str,
        from: RevId,
        to: RevId,
        opts_fp: u64,
        now: Timestamp,
    ) -> Option<String> {
        let key = (url.to_string(), from, to, opts_fp);
        match self.entries.get_mut(&key) {
            Some(e) if now - e.stored_at < self.ttl => {
                e.last_used = now;
                self.stats.hits += 1;
                Some(e.html.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a rendered diff, evicting the least-recently-used entry if
    /// at capacity.
    pub fn put(
        &mut self,
        url: &str,
        from: RevId,
        to: RevId,
        opts_fp: u64,
        html: String,
        now: Timestamp,
    ) {
        if self.entries.len() >= self.capacity
            && !self
                .entries
                .contains_key(&(url.to_string(), from, to, opts_fp))
        {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            (url.to_string(), from, to, opts_fp),
            Entry {
                html,
                stored_at: now,
                last_used: now,
            },
        );
    }

    /// Looks up a rendered diff by *content key* — a hash of the two
    /// token streams, the revision labels baked into the rendering, and
    /// the options fingerprint. Content keys give a second, cheaper hit
    /// path: two URLs (or two revision pairs of one URL) whose bodies are
    /// identical share one rendering. Stored under a synthetic primary
    /// key (`("", RevId(0), RevId(0), content_key)`), which cannot
    /// collide with real entries because URLs are never empty.
    pub fn get_by_content(&mut self, content_key: u64, now: Timestamp) -> Option<String> {
        self.get("", RevId(0), RevId(0), content_key, now)
    }

    /// Stores a rendered diff under its content key. See
    /// [`DiffCache::get_by_content`].
    pub fn put_by_content(&mut self, content_key: u64, html: String, now: Timestamp) {
        self.put("", RevId(0), RevId(0), content_key, html, now);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> DiffCacheStats {
        self.stats
    }
}

/// Number of independent buckets in [`ShardedDiffCache`].
const CACHE_SHARDS: usize = 16;

/// A concurrently shareable diff cache: [`DiffCache`] split into shards
/// keyed by URL, each behind its own mutex, so renderings of different
/// pages never serialize on a common cache lock.
///
/// Shard guards are held only for the map operation itself — never
/// across diffing — per the lock-ordering invariant in [`crate::locks`].
#[derive(Debug)]
pub struct ShardedDiffCache {
    shards: Vec<Mutex<DiffCache>>,
}

impl ShardedDiffCache {
    /// Creates a cache holding up to `capacity` rendered diffs in total
    /// (distributed across shards) for `ttl`.
    pub fn new(capacity: usize, ttl: Duration) -> ShardedDiffCache {
        let per_shard = capacity.div_ceil(CACHE_SHARDS).max(1);
        ShardedDiffCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(DiffCache::new(per_shard, ttl)))
                .collect(),
        }
    }

    fn shard(&self, url: &str) -> &Mutex<DiffCache> {
        &self.shards[fnv1a64(url.as_bytes()) as usize % CACHE_SHARDS]
    }

    /// See [`DiffCache::options_fingerprint`].
    pub fn options_fingerprint(description: &str) -> u64 {
        DiffCache::options_fingerprint(description)
    }

    /// Looks up a rendered diff. See [`DiffCache::get`].
    pub fn get(
        &self,
        url: &str,
        from: RevId,
        to: RevId,
        opts_fp: u64,
        now: Timestamp,
    ) -> Option<String> {
        self.shard(url).lock().get(url, from, to, opts_fp, now)
    }

    /// Stores a rendered diff. See [`DiffCache::put`].
    pub fn put(
        &self,
        url: &str,
        from: RevId,
        to: RevId,
        opts_fp: u64,
        html: String,
        now: Timestamp,
    ) {
        self.shard(url)
            .lock()
            .put(url, from, to, opts_fp, html, now);
    }

    /// Looks up a rendered diff by content key (sharded by the key, not
    /// by URL). See [`DiffCache::get_by_content`].
    pub fn get_by_content(&self, content_key: u64, now: Timestamp) -> Option<String> {
        self.shards[content_key as usize % CACHE_SHARDS]
            .lock()
            .get_by_content(content_key, now)
    }

    /// Stores a rendered diff under its content key. See
    /// [`DiffCache::put_by_content`].
    pub fn put_by_content(&self, content_key: u64, html: String, now: Timestamp) {
        self.shards[content_key as usize % CACHE_SHARDS]
            .lock()
            .put_by_content(content_key, html, now);
    }

    /// Total cached entries across shards (shards visited in index
    /// order).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters summed across shards.
    pub fn stats(&self) -> DiffCacheStats {
        let mut total = DiffCacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> DiffCache {
        DiffCache::new(3, Duration::hours(1))
    }

    #[test]
    fn put_get_hit() {
        let mut c = cache();
        c.put("u", RevId(1), RevId(2), 0, "diff html".into(), Timestamp(0));
        assert_eq!(
            c.get("u", RevId(1), RevId(2), 0, Timestamp(10)).as_deref(),
            Some("diff html")
        );
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut c = cache();
        c.put("u", RevId(1), RevId(2), 0, "a".into(), Timestamp(0));
        assert!(
            c.get("u", RevId(2), RevId(1), 0, Timestamp(0)).is_none(),
            "direction matters"
        );
        assert!(
            c.get("u", RevId(1), RevId(2), 99, Timestamp(0)).is_none(),
            "options matter"
        );
        assert!(
            c.get("v", RevId(1), RevId(2), 0, Timestamp(0)).is_none(),
            "url matters"
        );
    }

    #[test]
    fn ttl_expiry() {
        let mut c = cache();
        c.put("u", RevId(1), RevId(2), 0, "x".into(), Timestamp(0));
        assert!(c.get("u", RevId(1), RevId(2), 0, Timestamp(3600)).is_none());
        assert!(c.is_empty(), "expired entry removed");
    }

    #[test]
    fn lru_eviction() {
        let mut c = cache();
        c.put("a", RevId(1), RevId(2), 0, "a".into(), Timestamp(0));
        c.put("b", RevId(1), RevId(2), 0, "b".into(), Timestamp(1));
        c.put("c", RevId(1), RevId(2), 0, "c".into(), Timestamp(2));
        // Touch "a" so "b" becomes LRU.
        c.get("a", RevId(1), RevId(2), 0, Timestamp(3));
        c.put("d", RevId(1), RevId(2), 0, "d".into(), Timestamp(4));
        assert_eq!(c.len(), 3);
        assert!(
            c.get("b", RevId(1), RevId(2), 0, Timestamp(5)).is_none(),
            "b evicted"
        );
        assert!(c.get("a", RevId(1), RevId(2), 0, Timestamp(5)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn hit_ratio() {
        let mut c = cache();
        c.put("u", RevId(1), RevId(2), 0, "x".into(), Timestamp(0));
        c.get("u", RevId(1), RevId(2), 0, Timestamp(1));
        c.get("u", RevId(1), RevId(3), 0, Timestamp(1));
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_distinguishes_options() {
        let a = DiffCache::options_fingerprint("Options { merged }");
        let b = DiffCache::options_fingerprint("Options { only-differences }");
        assert_ne!(a, b);
    }

    #[test]
    fn content_keys_round_trip_and_expire() {
        let mut c = cache();
        c.put_by_content(0xDEAD_BEEF, "shared".into(), Timestamp(0));
        assert_eq!(
            c.get_by_content(0xDEAD_BEEF, Timestamp(10)).as_deref(),
            Some("shared")
        );
        assert!(c.get_by_content(0xBAD, Timestamp(10)).is_none());
        assert!(c.get_by_content(0xDEAD_BEEF, Timestamp(3600)).is_none());
    }

    #[test]
    fn content_keys_never_collide_with_real_urls() {
        // A real entry whose fingerprint equals a content key stays
        // distinct: the synthetic primary key uses the empty URL, which
        // no archived page can have.
        let mut c = cache();
        c.put("u", RevId(0), RevId(0), 7, "by url".into(), Timestamp(0));
        c.put_by_content(7, "by content".into(), Timestamp(0));
        assert_eq!(
            c.get("u", RevId(0), RevId(0), 7, Timestamp(1)).as_deref(),
            Some("by url")
        );
        assert_eq!(
            c.get_by_content(7, Timestamp(1)).as_deref(),
            Some("by content")
        );
    }

    #[test]
    fn sharded_content_keys_round_trip() {
        let c = ShardedDiffCache::new(64, Duration::hours(1));
        // Keys spread across shards; each must find its own entry.
        for k in 0..64u64 {
            c.put_by_content(k * 0x9E37, format!("r{k}"), Timestamp(0));
        }
        for k in 0..64u64 {
            assert_eq!(
                c.get_by_content(k * 0x9E37, Timestamp(1)).as_deref(),
                Some(format!("r{k}").as_str())
            );
        }
        assert_eq!(c.stats().hits, 64);
    }

    #[test]
    fn sharded_cache_behaves_like_flat() {
        let c = ShardedDiffCache::new(64, Duration::hours(1));
        c.put("http://a/", RevId(1), RevId(2), 0, "a".into(), Timestamp(0));
        c.put("http://b/", RevId(1), RevId(2), 0, "b".into(), Timestamp(0));
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.get("http://a/", RevId(1), RevId(2), 0, Timestamp(1))
                .as_deref(),
            Some("a")
        );
        assert!(
            c.get("http://a/", RevId(1), RevId(2), 0, Timestamp(3600))
                .is_none(),
            "ttl applies"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn sharded_cache_concurrent_distinct_urls() {
        let c = std::sync::Arc::new(ShardedDiffCache::new(256, Duration::hours(1)));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for k in 0..20u64 {
                    let url = format!("http://h{t}/p{k}");
                    c.put(&url, RevId(1), RevId(2), 0, url.clone(), Timestamp(k));
                    assert_eq!(
                        c.get(&url, RevId(1), RevId(2), 0, Timestamp(k)).as_deref(),
                        Some(url.as_str())
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().hits, 160);
    }
}
