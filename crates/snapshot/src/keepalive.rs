//! The CGI keep-alive dance (§4.2).
//!
//! "When a CGI script is invoked, httpd sets up a default timeout, and if
//! the script does not generate output for a full timeout interval, httpd
//! will return an error to the browser... In order to keep the HTTP
//! connection alive, snapshot forks a child process that generates one
//! space character (ignored by the W3 browser) every several seconds
//! while the parent is retrieving a page or executing HtmlDiff."
//!
//! This module models that race deterministically: given httpd's timeout,
//! the work duration, and a heartbeat interval, [`run`] decides whether
//! the connection survives and how many padding bytes the client saw.

use aide_util::time::Duration;

/// Configuration of one CGI invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeepaliveConfig {
    /// httpd's no-output timeout.
    pub server_timeout: Duration,
    /// Interval between heartbeat characters; `None` disables the child.
    pub heartbeat: Option<Duration>,
}

/// Outcome of a CGI invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepaliveOutcome {
    /// The script produced its output; `padding` spaces were emitted
    /// first.
    Completed {
        /// Heartbeat characters the client received before the real body.
        padding: u64,
    },
    /// httpd killed the connection after this much silence.
    TimedOut {
        /// How long into the work the connection died.
        after: Duration,
    },
}

/// Simulates one invocation whose real work takes `work` time.
///
/// # Examples
///
/// ```
/// use aide_snapshot::keepalive::{run, KeepaliveConfig, KeepaliveOutcome};
/// use aide_util::time::Duration;
///
/// // A 5-minute HtmlDiff against a 60s httpd timeout dies without a
/// // heartbeat…
/// let cfg = KeepaliveConfig { server_timeout: Duration::seconds(60), heartbeat: None };
/// assert!(matches!(run(&cfg, Duration::minutes(5)), KeepaliveOutcome::TimedOut { .. }));
///
/// // …and survives with one space every 10s.
/// let cfg = KeepaliveConfig {
///     server_timeout: Duration::seconds(60),
///     heartbeat: Some(Duration::seconds(10)),
/// };
/// assert!(matches!(run(&cfg, Duration::minutes(5)), KeepaliveOutcome::Completed { .. }));
/// ```
pub fn run(cfg: &KeepaliveConfig, work: Duration) -> KeepaliveOutcome {
    let timeout = cfg.server_timeout.as_secs();
    if timeout == 0 {
        return KeepaliveOutcome::TimedOut {
            after: Duration::ZERO,
        };
    }
    match cfg.heartbeat {
        None => {
            if work.as_secs() < timeout {
                KeepaliveOutcome::Completed { padding: 0 }
            } else {
                KeepaliveOutcome::TimedOut {
                    after: Duration::seconds(timeout),
                }
            }
        }
        Some(hb) => {
            let hb = hb.as_secs().max(1);
            if hb >= timeout {
                // The heartbeat itself is too slow to save the connection.
                if work.as_secs() < timeout {
                    KeepaliveOutcome::Completed {
                        padding: work.as_secs() / hb,
                    }
                } else {
                    KeepaliveOutcome::TimedOut {
                        after: Duration::seconds(timeout),
                    }
                }
            } else {
                // A space lands every `hb` seconds — httpd never sees
                // `timeout` seconds of silence.
                KeepaliveOutcome::Completed {
                    padding: work.as_secs() / hb,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T60: Duration = Duration::seconds(60);

    #[test]
    fn fast_work_needs_no_heartbeat() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: None,
        };
        assert_eq!(
            run(&cfg, Duration::seconds(5)),
            KeepaliveOutcome::Completed { padding: 0 }
        );
    }

    #[test]
    fn slow_work_without_heartbeat_dies() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: None,
        };
        assert_eq!(
            run(&cfg, Duration::seconds(61)),
            KeepaliveOutcome::TimedOut { after: T60 }
        );
    }

    #[test]
    fn boundary_work_equal_to_timeout_dies() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: None,
        };
        assert!(matches!(run(&cfg, T60), KeepaliveOutcome::TimedOut { .. }));
    }

    #[test]
    fn heartbeat_saves_long_work() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: Some(Duration::seconds(10)),
        };
        assert_eq!(
            run(&cfg, Duration::minutes(10)),
            KeepaliveOutcome::Completed { padding: 60 }
        );
    }

    #[test]
    fn heartbeat_slower_than_timeout_does_not_help() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: Some(Duration::seconds(90)),
        };
        assert!(matches!(
            run(&cfg, Duration::minutes(5)),
            KeepaliveOutcome::TimedOut { .. }
        ));
    }

    #[test]
    fn zero_timeout_always_dies() {
        let cfg = KeepaliveConfig {
            server_timeout: Duration::ZERO,
            heartbeat: Some(Duration::seconds(1)),
        };
        assert!(matches!(
            run(&cfg, Duration::seconds(1)),
            KeepaliveOutcome::TimedOut { .. }
        ));
    }

    #[test]
    fn padding_scales_with_work() {
        let cfg = KeepaliveConfig {
            server_timeout: T60,
            heartbeat: Some(Duration::seconds(5)),
        };
        let KeepaliveOutcome::Completed { padding: p1 } = run(&cfg, Duration::minutes(1)) else {
            panic!("should complete");
        };
        let KeepaliveOutcome::Completed { padding: p2 } = run(&cfg, Duration::minutes(2)) else {
            panic!("should complete");
        };
        assert!(p2 > p1);
    }
}
