//! Word splitting and sentence-boundary detection.
//!
//! §5.1: a "sentence" is "a sequence of words and certain
//! (non-sentence-breaking) markups... A 'sentence' contains at most one
//! English sentence, but may be a fragment of an English sentence."
//! Whitespace "does not provide any content... and should not affect
//! comparison", so words are whitespace-delimited and the whitespace
//! itself is discarded by the tokenizer (HtmlDiff re-inserts single spaces
//! when rendering).

/// A word plus the information needed to know whether an English sentence
/// ends after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// The word, verbatim (punctuation attached, entities intact).
    pub text: String,
    /// True if this word terminates an English sentence (`.`, `!`, `?`,
    /// possibly followed by closing quotes/brackets).
    pub ends_sentence: bool,
}

/// Splits a text run into words on whitespace, flagging sentence-ending
/// words.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::text::split_words;
///
/// let words = split_words("Hello there. General Kenobi!");
/// assert_eq!(words.len(), 4);
/// assert!(words[1].ends_sentence);
/// assert!(!words[2].ends_sentence);
/// assert!(words[3].ends_sentence);
/// ```
pub fn split_words(text: &str) -> Vec<Word> {
    text.split_whitespace()
        .map(|w| Word {
            text: w.to_string(),
            ends_sentence: word_ends_sentence(w),
        })
        .collect()
}

/// Decides whether a word terminates an English sentence.
///
/// A terminator is `.`, `!` or `?`, optionally followed by closing quotes
/// or brackets. Common abbreviations and single initials (`Dr.`, `U.S.`,
/// `T.`) do not terminate.
pub fn word_ends_sentence(word: &str) -> bool {
    // Strip trailing closers.
    let trimmed = word.trim_end_matches(['"', '\'', ')', ']', '»']);
    let Some(last) = trimmed.chars().last() else {
        return false;
    };
    if last != '.' && last != '!' && last != '?' {
        return false;
    }
    if last == '.' {
        let stem = &trimmed[..trimmed.len() - 1];
        // Single-letter initial: "T." — not a boundary.
        if stem.chars().count() == 1 && stem.chars().all(|c| c.is_alphabetic()) {
            return false;
        }
        // Dotted acronym: "U.S." — not a boundary.
        if stem.contains('.') && stem.chars().all(|c| c.is_alphabetic() || c == '.') {
            return false;
        }
        // Common abbreviations.
        const ABBREV: &[&str] = &[
            "Mr", "Mrs", "Ms", "Dr", "Prof", "St", "Jr", "Sr", "vs", "etc", "e.g", "i.e", "cf",
            "Inc", "Co", "Corp", "Ltd", "Fig", "fig", "Eq", "eq", "Sec", "sec", "No", "no", "Vol",
            "vol", "pp", "Jan", "Feb", "Mar", "Apr", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov",
            "Dec",
        ];
        if ABBREV.contains(&stem) {
            return false;
        }
    }
    true
}

/// Collapses runs of whitespace to single spaces and trims the ends —
/// the normalization under which whitespace "should not affect
/// comparison".
pub fn normalize_whitespace(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sentence_ends() {
        assert!(word_ends_sentence("done."));
        assert!(word_ends_sentence("what?"));
        assert!(word_ends_sentence("now!"));
        assert!(!word_ends_sentence("middle"));
        assert!(!word_ends_sentence("comma,"));
    }

    #[test]
    fn closers_after_terminator() {
        assert!(word_ends_sentence("over.\""));
        assert!(word_ends_sentence("over.)"));
        assert!(word_ends_sentence("over!')"));
    }

    #[test]
    fn abbreviations_do_not_end() {
        assert!(!word_ends_sentence("Dr."));
        assert!(!word_ends_sentence("U.S."));
        assert!(!word_ends_sentence("T."));
        assert!(!word_ends_sentence("etc."));
        assert!(!word_ends_sentence("vs."));
    }

    #[test]
    fn numbers_with_dots_end() {
        // "version 2.0." — ends with a period after digits: boundary.
        assert!(word_ends_sentence("2.0."));
    }

    #[test]
    fn split_counts_and_flags() {
        let w = split_words("One two. Three");
        assert_eq!(
            w.iter().map(|x| x.text.as_str()).collect::<Vec<_>>(),
            vec!["One", "two.", "Three"]
        );
        assert_eq!(
            w.iter().map(|x| x.ends_sentence).collect::<Vec<_>>(),
            vec![false, true, false]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(split_words("").is_empty());
        assert!(split_words("  \t\n ").is_empty());
        assert!(!word_ends_sentence(""));
        assert!(!word_ends_sentence("\"\""));
    }

    #[test]
    fn normalize_whitespace_collapses() {
        assert_eq!(normalize_whitespace("  a\t\tb\n c  "), "a b c");
        assert_eq!(normalize_whitespace(""), "");
    }
}
