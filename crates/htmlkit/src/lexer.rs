//! A forgiving HTML lexer.
//!
//! The paper is explicit that "parsing is not required" (§5.1): HtmlDiff
//! works off a flat token stream produced by "a simple lexical analysis",
//! which also "converts the case of the markup name and associated
//! (variable,value) pairs to uppercase". This lexer follows that design —
//! it never rejects input (1995 HTML was wildly malformed), it tokenizes
//! tags, comments, declarations and text runs, and it normalizes tag and
//! attribute *names* to uppercase while preserving attribute *values*
//! case-sensitively (URLs are case-sensitive); character entities in
//! values are decoded at lex time and re-encoded at serialization.

use crate::entity::{decode_entities, encode_entities};
use std::fmt;

/// Whether a tag opens, closes, or self-closes an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagKind {
    /// `<NAME ...>`
    Open,
    /// `</NAME>`
    Close,
    /// `<NAME ... />` (rare in 1995 HTML, tolerated anyway)
    SelfClose,
}

/// A markup tag with normalized name and attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Tag name, uppercased (`P`, `IMG`, `A`).
    pub name: String,
    /// Attributes in source order: name uppercased, value with quotes
    /// stripped and entities decoded. Valueless attributes carry `None`.
    pub attrs: Vec<(String, Option<String>)>,
    /// Open / close / self-close.
    pub kind: TagKind,
}

impl Tag {
    /// Creates an open tag with no attributes.
    pub fn open(name: &str) -> Tag {
        Tag {
            name: name.to_ascii_uppercase(),
            attrs: Vec::new(),
            kind: TagKind::Open,
        }
    }

    /// Creates a close tag.
    pub fn close(name: &str) -> Tag {
        Tag {
            name: name.to_ascii_uppercase(),
            attrs: Vec::new(),
            kind: TagKind::Close,
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, name: &str, value: &str) -> Tag {
        self.attrs
            .push((name.to_ascii_uppercase(), Some(value.to_string())));
        self
    }

    /// Returns the value of attribute `name` (case-insensitive).
    pub fn attr(&self, name: &str) -> Option<&str> {
        let upper = name.to_ascii_uppercase();
        self.attrs
            .iter()
            .find(|(n, _)| *n == upper)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Replaces or inserts attribute `name`.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let upper = name.to_ascii_uppercase();
        for (n, v) in self.attrs.iter_mut() {
            if *n == upper {
                *v = Some(value.to_string());
                return;
            }
        }
        self.attrs.push((upper, Some(value.to_string())));
    }

    /// Equality modulo attribute order — the comparison the paper's
    /// sentence-breaking markup match uses: "identical (modulo whitespace,
    /// case, and reordering of (variable,value) pairs)".
    pub fn matches_modulo_order(&self, other: &Tag) -> bool {
        if self.name != other.name
            || self.kind != other.kind
            || self.attrs.len() != other.attrs.len()
        {
            return false;
        }
        let mut mine: Vec<_> = self.attrs.iter().collect();
        let mut theirs: Vec<_> = other.attrs.iter().collect();
        mine.sort();
        theirs.sort();
        mine == theirs
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TagKind::Close => write!(f, "</{}>", self.name),
            _ => {
                write!(f, "<{}", self.name)?;
                for (n, v) in &self.attrs {
                    match v {
                        Some(val) => write!(f, " {}=\"{}\"", n, encode_entities(val))?,
                        None => write!(f, " {}", n)?,
                    }
                }
                if self.kind == TagKind::SelfClose {
                    write!(f, " /")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Token {
    /// A run of character data between tags, verbatim (entities intact).
    Text(String),
    /// A markup tag.
    Tag(Tag),
    /// `<!-- ... -->` with the inner text.
    Comment(String),
    /// `<!DOCTYPE ...>` or any other `<!...>` declaration, inner text.
    Declaration(String),
}

impl Token {
    /// Returns the tag if this token is one.
    pub fn as_tag(&self) -> Option<&Tag> {
        match self {
            Token::Tag(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the text if this token is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Token::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// Lexes `html` into tokens. Never fails: malformed constructs degrade to
/// text or best-effort tags, as period browsers treated them.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::lexer::{lex, Token};
///
/// let tokens = lex("<P>Hello <B>world</B>!");
/// assert_eq!(tokens.len(), 6);
/// assert!(matches!(&tokens[0], Token::Tag(t) if t.name == "P"));
/// assert!(matches!(&tokens[1], Token::Text(t) if t == "Hello "));
/// ```
pub fn lex(html: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0;
    let mut text_start = 0;

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        if html[i..].starts_with("<!--") {
            if text_start < i {
                tokens.push(Token::Text(html[text_start..i].to_string()));
            }
            match html[i + 4..].find("-->") {
                Some(end) => {
                    tokens.push(Token::Comment(html[i + 4..i + 4 + end].to_string()));
                    i += 4 + end + 3;
                }
                None => {
                    // Unterminated comment swallows the rest of the file.
                    tokens.push(Token::Comment(html[i + 4..].to_string()));
                    i = bytes.len();
                }
            }
            text_start = i;
            continue;
        }
        if html[i..].starts_with("<!") {
            if text_start < i {
                tokens.push(Token::Text(html[text_start..i].to_string()));
            }
            match html[i..].find('>') {
                Some(end) => {
                    tokens.push(Token::Declaration(html[i + 2..i + end].to_string()));
                    i += end + 1;
                }
                None => {
                    tokens.push(Token::Declaration(html[i + 2..].to_string()));
                    i = bytes.len();
                }
            }
            text_start = i;
            continue;
        }
        // A '<' not followed by a letter or '/' is literal text.
        let next = bytes.get(i + 1).copied();
        let is_tag_start = matches!(next, Some(c) if c.is_ascii_alphabetic() || c == b'/');
        if !is_tag_start {
            i += 1;
            continue;
        }
        match parse_tag(html, i) {
            Some((tag, consumed)) => {
                if text_start < i {
                    tokens.push(Token::Text(html[text_start..i].to_string()));
                }
                tokens.push(Token::Tag(tag));
                i += consumed;
                text_start = i;
            }
            None => {
                // Unterminated tag: flush preceding text, keep the rest as
                // a final text run.
                if text_start < i {
                    tokens.push(Token::Text(html[text_start..i].to_string()));
                }
                text_start = i;
                break;
            }
        }
    }
    if text_start < bytes.len() {
        tokens.push(Token::Text(html[text_start..].to_string()));
    }
    tokens
}

/// Parses a tag beginning at byte `start` (which is `<`). Returns the tag
/// and the number of bytes consumed, or `None` if no closing `>` exists.
fn parse_tag(html: &str, start: usize) -> Option<(Tag, usize)> {
    let bytes = html.as_bytes();
    let mut i = start + 1;
    let kind_close = bytes.get(i) == Some(&b'/');
    if kind_close {
        i += 1;
    }
    let name_start = i;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b'.')
    {
        i += 1;
    }
    let name = html[name_start..i].to_ascii_uppercase();
    if name.is_empty() {
        return None;
    }
    let mut attrs = Vec::new();
    let mut self_close = false;
    loop {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'>' {
            i += 1;
            break;
        }
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'>') {
            self_close = true;
            i += 2;
            break;
        }
        // Attribute name.
        let an_start = i;
        while i < bytes.len()
            && !bytes[i].is_ascii_whitespace()
            && bytes[i] != b'='
            && bytes[i] != b'>'
            && !(bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'>'))
        {
            i += 1;
        }
        if i == an_start {
            // Stray character (e.g. lone '/'); skip it.
            i += 1;
            continue;
        }
        let attr_name = html[an_start..i].to_ascii_uppercase();
        // Skip whitespace before a possible '='.
        let mut j = i;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) == Some(&b'=') {
            j += 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            let value;
            match bytes.get(j) {
                Some(&q) if q == b'"' || q == b'\'' => {
                    let v_start = j + 1;
                    let mut k = v_start;
                    while k < bytes.len() && bytes[k] != q {
                        k += 1;
                    }
                    // Values are stored decoded; serialization re-encodes.
                    value = decode_entities(&html[v_start..k.min(bytes.len())]);
                    j = (k + 1).min(bytes.len());
                }
                _ => {
                    let v_start = j;
                    while j < bytes.len() && !bytes[j].is_ascii_whitespace() && bytes[j] != b'>' {
                        j += 1;
                    }
                    value = decode_entities(&html[v_start..j]);
                }
            }
            attrs.push((attr_name, Some(value)));
            i = j;
        } else {
            attrs.push((attr_name, None));
        }
    }
    let kind = if kind_close {
        TagKind::Close
    } else if self_close {
        TagKind::SelfClose
    } else {
        TagKind::Open
    };
    Some((Tag { name, attrs, kind }, i - start))
}

/// Serializes tokens back to HTML.
///
/// Lex → serialize is not byte-identical (names are uppercased, attribute
/// quoting normalized) but is idempotent: serializing the lex of the
/// output reproduces the output.
pub fn serialize(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            Token::Text(s) => out.push_str(s),
            Token::Tag(tag) => out.push_str(&tag.to_string()),
            Token::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            Token::Declaration(d) => {
                out.push_str("<!");
                out.push_str(d);
                out.push('>');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_document() {
        let tokens = lex("<HTML><BODY><P>Hi</P></BODY></HTML>");
        let names: Vec<&str> = tokens
            .iter()
            .filter_map(|t| t.as_tag())
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(names, vec!["HTML", "BODY", "P", "P", "BODY", "HTML"]);
    }

    #[test]
    fn case_is_normalized_for_names_not_values() {
        let tokens = lex(r#"<a HREF="/Path/File.html">x</A>"#);
        let tag = tokens[0].as_tag().unwrap();
        assert_eq!(tag.name, "A");
        assert_eq!(tag.attrs[0].0, "HREF");
        assert_eq!(tag.attr("href"), Some("/Path/File.html"));
    }

    #[test]
    fn attribute_quoting_styles() {
        let tokens = lex(r#"<IMG src="a.gif" alt='red arrow' width=16 ISMAP>"#);
        let tag = tokens[0].as_tag().unwrap();
        assert_eq!(tag.attr("SRC"), Some("a.gif"));
        assert_eq!(tag.attr("ALT"), Some("red arrow"));
        assert_eq!(tag.attr("WIDTH"), Some("16"));
        assert_eq!(
            tag.attrs
                .iter()
                .find(|(n, _)| n == "ISMAP")
                .map(|(_, v)| v.clone()),
            Some(None)
        );
    }

    #[test]
    fn attr_value_with_spaces_around_equals() {
        let tokens = lex(r#"<A HREF = "x.html">t</A>"#);
        assert_eq!(tokens[0].as_tag().unwrap().attr("HREF"), Some("x.html"));
    }

    #[test]
    fn comments_and_declarations() {
        let tokens = lex("<!DOCTYPE HTML PUBLIC>before<!-- hidden -->after");
        assert!(matches!(&tokens[0], Token::Declaration(d) if d.starts_with("DOCTYPE")));
        assert!(matches!(&tokens[1], Token::Text(t) if t == "before"));
        assert!(matches!(&tokens[2], Token::Comment(c) if c == " hidden "));
        assert!(matches!(&tokens[3], Token::Text(t) if t == "after"));
    }

    #[test]
    fn unterminated_comment() {
        let tokens = lex("x<!-- never closed");
        assert_eq!(tokens.len(), 2);
        assert!(matches!(&tokens[1], Token::Comment(c) if c == " never closed"));
    }

    #[test]
    fn bare_less_than_is_text() {
        let tokens = lex("if a < b then");
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].as_text(), Some("if a < b then"));
    }

    #[test]
    fn less_than_digit_is_text() {
        let tokens = lex("x <3 y");
        assert_eq!(tokens.len(), 1);
    }

    #[test]
    fn unterminated_tag_degrades_to_text() {
        let tokens = lex("ok<A HREF=\"x");
        assert_eq!(tokens.len(), 2);
        assert_eq!(tokens[1].as_text(), Some("<A HREF=\"x"));
    }

    #[test]
    fn self_closing() {
        let tokens = lex("<BR/><HR />");
        assert_eq!(tokens[0].as_tag().unwrap().kind, TagKind::SelfClose);
        assert_eq!(tokens[1].as_tag().unwrap().kind, TagKind::SelfClose);
    }

    #[test]
    fn serialize_is_idempotent() {
        let src = r#"<html><Body BGCOLOR=white><p>One &amp; two<IMG SRC="x.gif"><!-- c --></p>"#;
        let once = serialize(&lex(src));
        let twice = serialize(&lex(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn text_runs_preserved_verbatim() {
        let src = "  leading space <P>  inner\n\nlines  </P> trailing ";
        let round = serialize(&lex(src));
        assert!(round.contains("  leading space "));
        assert!(round.contains("  inner\n\nlines  "));
        assert!(round.contains(" trailing "));
    }

    #[test]
    fn matches_modulo_order() {
        let a = lex(r#"<TABLE BORDER=1 WIDTH="90%">"#)[0]
            .as_tag()
            .unwrap()
            .clone();
        let b = lex(r#"<table width="90%" border=1>"#)[0]
            .as_tag()
            .unwrap()
            .clone();
        assert!(a.matches_modulo_order(&b));
        let c = lex(r#"<TABLE BORDER=2 WIDTH="90%">"#)[0]
            .as_tag()
            .unwrap()
            .clone();
        assert!(!a.matches_modulo_order(&c));
    }

    #[test]
    fn set_attr_replaces_or_inserts() {
        let mut t = Tag::open("A").with_attr("HREF", "old.html");
        t.set_attr("href", "new.html");
        assert_eq!(t.attr("HREF"), Some("new.html"));
        t.set_attr("NAME", "anchor1");
        assert_eq!(t.attrs.len(), 2);
    }

    #[test]
    fn display_escapes_attr_values() {
        let t = Tag::open("A").with_attr("HREF", "x?a=1&b=2");
        assert_eq!(t.to_string(), r#"<A HREF="x?a=1&amp;b=2">"#);
    }

    #[test]
    fn empty_input() {
        assert!(lex("").is_empty());
    }

    #[test]
    fn tag_names_with_digits() {
        let tokens = lex("<H1>Title</H1>");
        assert_eq!(tokens[0].as_tag().unwrap().name, "H1");
    }
}
