//! Link extraction and `BASE` rewriting.
//!
//! Two consumers in AIDE need to see a page's links:
//!
//! - the recursive tracker of §8.3, which follows the links of "Virtual
//!   Library pages" and "collections of related pages";
//! - the snapshot service of §4.1, which must deal with relative links
//!   when "a page is moved away from the machine that originally provided
//!   it" by inserting a `BASE` directive.

use crate::lexer::{Tag, TagKind, Token};
use crate::url::Url;

/// What kind of reference a link is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// `<A HREF=...>` — a hypertext anchor.
    Anchor,
    /// `<IMG SRC=...>` — an inline image.
    Image,
    /// `<FORM ACTION=...>` — a form submission target.
    Form,
    /// `<LINK HREF=...>` or `<BASE HREF=...>` — head metadata.
    Meta,
}

/// A link found in a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// The raw attribute value as written in the page.
    pub raw: String,
    /// The resolved absolute URL, if a base was supplied and resolution
    /// succeeded.
    pub resolved: Option<Url>,
    /// The link's kind.
    pub kind: LinkKind,
}

/// Extracts all links from a token stream, resolving each against `base`
/// when one is given.
///
/// An in-document `<BASE HREF=...>` tag overrides `base` for subsequent
/// links, matching browser behaviour (and the Netscape 1.1N quirk §4.1
/// complains about, where even internal `#` links chase the new BASE).
///
/// # Examples
///
/// ```
/// use aide_htmlkit::lexer::lex;
/// use aide_htmlkit::links::{extract_links, LinkKind};
/// use aide_htmlkit::url::Url;
///
/// let base = Url::parse("http://www.usenix.org/events/index.html").unwrap();
/// let tokens = lex(r#"<A HREF="lisa.html">LISA</A> <IMG SRC="/art/logo.gif">"#);
/// let links = extract_links(&tokens, Some(&base));
/// assert_eq!(links.len(), 2);
/// assert_eq!(links[0].resolved.as_ref().unwrap().to_string(),
///            "http://www.usenix.org/events/lisa.html");
/// assert_eq!(links[1].kind, LinkKind::Image);
/// ```
pub fn extract_links(tokens: &[Token], base: Option<&Url>) -> Vec<Link> {
    let mut links = Vec::new();
    let mut effective_base: Option<Url> = base.cloned();
    for token in tokens {
        let Token::Tag(tag) = token else { continue };
        if tag.kind == TagKind::Close {
            continue;
        }
        let (attr, kind) = match tag.name.as_str() {
            "A" => ("HREF", LinkKind::Anchor),
            "IMG" => ("SRC", LinkKind::Image),
            "FORM" => ("ACTION", LinkKind::Form),
            "LINK" => ("HREF", LinkKind::Meta),
            "BASE" => {
                if let Some(href) = tag.attr("HREF") {
                    if let Ok(u) = Url::parse(href) {
                        effective_base = Some(u);
                    }
                    links.push(Link {
                        raw: href.to_string(),
                        resolved: effective_base.clone(),
                        kind: LinkKind::Meta,
                    });
                }
                continue;
            }
            _ => continue,
        };
        if let Some(value) = tag.attr(attr) {
            let resolved = effective_base.as_ref().and_then(|b| b.join(value).ok());
            links.push(Link {
                raw: value.to_string(),
                resolved,
                kind,
            });
        }
    }
    links
}

/// Anchors (`<A HREF>`) only, resolved, with fragments dropped and
/// duplicates removed — the set the recursive tracker follows.
pub fn extract_followable(tokens: &[Token], base: &Url) -> Vec<Url> {
    let mut out: Vec<Url> = Vec::new();
    for link in extract_links(tokens, Some(base)) {
        if link.kind != LinkKind::Anchor {
            continue;
        }
        if let Some(u) = link.resolved {
            let u = u.without_fragment();
            // Only follow protocols a tracker can poll.
            if u.scheme != "http" && u.scheme != "file" {
                continue;
            }
            if !out.contains(&u) {
                out.push(u);
            }
        }
    }
    out
}

/// Ensures the document carries `<BASE HREF="...">` pointing at
/// `base`, inserting one after `<HEAD>` (or at the front) if absent —
/// what snapshot does before serving an archived copy so that relative
/// links still work (§4.1).
pub fn rewrite_base(tokens: &[Token], base: &Url) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len() + 1);
    let mut replaced = false;
    for token in tokens {
        match token {
            Token::Tag(tag) if tag.name == "BASE" && tag.kind != TagKind::Close => {
                let mut t = tag.clone();
                t.set_attr("HREF", &base.to_string());
                out.push(Token::Tag(t));
                replaced = true;
            }
            other => out.push(other.clone()),
        }
    }
    if !replaced {
        let base_tag = Token::Tag(Tag::open("BASE").with_attr("HREF", &base.to_string()));
        // After <HEAD> if present, else after <HTML>, else at the front.
        let pos = out
            .iter()
            .position(|t| matches!(t, Token::Tag(tag) if tag.name == "HEAD" && tag.kind == TagKind::Open))
            .map(|i| i + 1)
            .or_else(|| {
                out.iter()
                    .position(
                        |t| matches!(t, Token::Tag(tag) if tag.name == "HTML" && tag.kind == TagKind::Open),
                    )
                    .map(|i| i + 1)
            })
            .unwrap_or(0);
        out.insert(pos, base_tag);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, serialize};

    fn base() -> Url {
        Url::parse("http://host/dir/page.html").unwrap()
    }

    #[test]
    fn anchors_images_forms() {
        let tokens = lex(
            r#"<A HREF="a.html">x</A><IMG SRC="i.gif"><FORM ACTION="/cgi-bin/s"><LINK HREF="style">"#,
        );
        let links = extract_links(&tokens, Some(&base()));
        assert_eq!(links.len(), 4);
        assert_eq!(links[0].kind, LinkKind::Anchor);
        assert_eq!(links[1].kind, LinkKind::Image);
        assert_eq!(links[2].kind, LinkKind::Form);
        assert_eq!(links[3].kind, LinkKind::Meta);
        assert_eq!(links[2].resolved.as_ref().unwrap().path, "/cgi-bin/s");
    }

    #[test]
    fn base_tag_overrides() {
        let tokens = lex(
            r#"<A HREF="one.html">1</A><BASE HREF="http://other/sub/"><A HREF="two.html">2</A>"#,
        );
        let links = extract_links(&tokens, Some(&base()));
        let anchors: Vec<_> = links
            .iter()
            .filter(|l| l.kind == LinkKind::Anchor)
            .collect();
        assert_eq!(anchors[0].resolved.as_ref().unwrap().host, "host");
        assert_eq!(
            anchors[1].resolved.as_ref().unwrap().to_string(),
            "http://other/sub/two.html"
        );
    }

    #[test]
    fn no_base_leaves_unresolved() {
        let tokens = lex(r#"<A HREF="rel.html">x</A>"#);
        let links = extract_links(&tokens, None);
        assert_eq!(links[0].resolved, None);
        assert_eq!(links[0].raw, "rel.html");
    }

    #[test]
    fn followable_dedups_and_drops_fragments() {
        let tokens = lex(r#"<A HREF="x.html#a">1</A><A HREF="x.html#b">2</A>
               <A HREF="mailto:douglis@research.att.com">mail</A>
               <IMG SRC="pic.gif">"#);
        let urls = extract_followable(&tokens, &base());
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].to_string(), "http://host/dir/x.html");
    }

    #[test]
    fn anchor_without_href_ignored() {
        // <A NAME="here"> is a target, not a link.
        let tokens = lex(r#"<A NAME="here">sec</A>"#);
        assert!(extract_links(&tokens, Some(&base())).is_empty());
    }

    #[test]
    fn rewrite_base_inserts_after_head() {
        let tokens = lex("<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY></BODY></HTML>");
        let out = rewrite_base(&tokens, &base());
        let html = serialize(&out);
        assert!(
            html.starts_with(r#"<HTML><HEAD><BASE HREF="http://host/dir/page.html">"#),
            "got: {html}"
        );
    }

    #[test]
    fn rewrite_base_replaces_existing() {
        let tokens = lex(r#"<HEAD><BASE HREF="http://stale/"></HEAD>"#);
        let out = rewrite_base(&tokens, &base());
        let html = serialize(&out);
        assert_eq!(html.matches("BASE").count(), 1);
        assert!(html.contains("http://host/dir/page.html"));
    }

    #[test]
    fn rewrite_base_without_head_prepends() {
        let tokens = lex("<P>bare");
        let out = rewrite_base(&tokens, &base());
        assert!(matches!(&out[0], Token::Tag(t) if t.name == "BASE"));
    }
}
