//! HTML character entities.
//!
//! Covers the HTML 2.0 named entities (the ones 1995 documents actually
//! used) plus numeric references. Decoding is forgiving: an unrecognized
//! or malformed entity passes through literally, as browsers of the era
//! rendered it.

/// Decodes character entities in `text`.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::entity::decode_entities;
///
/// assert_eq!(decode_entities("AT&amp;T &lt;labs&gt;"), "AT&T <labs>");
/// assert_eq!(decode_entities("&#65;&#x42;"), "AB");
/// assert_eq!(decode_entities("R&D"), "R&D"); // bare & passes through
/// ```
pub fn decode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&text[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find a terminating ';' within a reasonable distance.
        let end = text[i + 1..]
            .char_indices()
            .take(12)
            .find(|&(_, c)| c == ';')
            .map(|(off, _)| i + 1 + off);
        match end {
            Some(semi) => {
                let name = &text[i + 1..semi];
                match decode_one(name) {
                    Some(decoded) => {
                        out.push_str(&decoded);
                        i = semi + 1;
                    }
                    None => {
                        out.push('&');
                        i += 1;
                    }
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn decode_one(name: &str) -> Option<String> {
    if let Some(rest) = name.strip_prefix('#') {
        let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            rest.parse::<u32>().ok()?
        };
        return char::from_u32(code).map(|c| c.to_string());
    }
    let ch = match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        "nbsp" => '\u{A0}',
        "copy" => '©',
        "reg" => '®',
        "trade" => '™',
        "agrave" => 'à',
        "aacute" => 'á',
        "eacute" => 'é',
        "egrave" => 'è',
        "iacute" => 'í',
        "oacute" => 'ó',
        "uacute" => 'ú',
        "ntilde" => 'ñ',
        "ouml" => 'ö',
        "uuml" => 'ü',
        "auml" => 'ä',
        "szlig" => 'ß',
        "ccedil" => 'ç',
        "Agrave" => 'À',
        "Eacute" => 'É',
        "middot" => '·',
        "para" => '¶',
        "sect" => '§',
        _ => return None,
    };
    Some(ch.to_string())
}

/// Encodes the characters that must be escaped in HTML text content.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::entity::encode_entities;
///
/// assert_eq!(encode_entities("a < b & c > d"), "a &lt; b &amp; c &gt; d");
/// ```
pub fn encode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("&amp;&lt;&gt;&quot;"), "&<>\"");
        assert_eq!(decode_entities("&copy; 1995 AT&amp;T"), "© 1995 AT&T");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_entities("&#72;&#105;"), "Hi");
        assert_eq!(decode_entities("&#x48;&#X69;"), "Hi");
        assert_eq!(decode_entities("&#955;"), "λ");
    }

    #[test]
    fn malformed_entities_pass_through() {
        assert_eq!(decode_entities("&unknown;"), "&unknown;");
        assert_eq!(decode_entities("a & b"), "a & b");
        assert_eq!(decode_entities("&"), "&");
        assert_eq!(decode_entities("&;"), "&;");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // out of range
    }

    #[test]
    fn unterminated_entity_passes_through() {
        assert_eq!(
            decode_entities("&ampersand with no semi"),
            "&ampersand with no semi"
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let raw = "x < y && \"quoted\" > z";
        assert_eq!(decode_entities(&encode_entities(raw)), raw);
    }

    #[test]
    fn multibyte_text_untouched() {
        assert_eq!(decode_entities("caf\u{e9} ☕"), "café ☕");
    }
}
