//! HTML substrate for the AIDE reproduction.
//!
//! HtmlDiff needs exactly what §5.1 of the paper calls "a simple lexical
//! analysis of an HTML document": a token stream of text and markups, with
//! markup names and attribute pairs normalized, plus the two markup
//! classifications the comparison algorithm is built on —
//! *sentence-breaking* markups (`<P>`, `<HR>`, `<LI>`, `<H1>`…) and
//! *content-defining* markups (`<IMG>`, `<A HREF>`…). The snapshot service
//! and the recursive tracker additionally need URL parsing/resolution and
//! link extraction. This crate provides all of it:
//!
//! - [`lexer`]: a forgiving HTML tokenizer (tags, attributes, comments,
//!   declarations, text), with serialization back to HTML.
//! - [`entity`]: character entity encoding/decoding.
//! - [`classify`]: the sentence-breaking and content-defining markup sets.
//! - [`text`]: word splitting and sentence-boundary detection.
//! - [`url`]: absolute/relative URL parsing and resolution (RFC-1808
//!   subset), including the `BASE` semantics §4.1 discusses.
//! - [`links`]: extraction of hypertext references from a token stream.

pub mod classify;
pub mod entity;
pub mod lexer;
pub mod links;
pub mod text;
pub mod url;

pub use classify::{is_content_defining, is_sentence_breaking, MarkupClass};
pub use entity::{decode_entities, encode_entities};
pub use lexer::{lex, serialize, Tag, TagKind, Token};
pub use links::{extract_links, rewrite_base, Link, LinkKind};
pub use url::Url;
