//! Markup classification: sentence-breaking and content-defining tags.
//!
//! §5.1 of the paper: "We view an HTML document as a sequence of sentences
//! and 'sentence-breaking' markups (such as `<P>`, `<HR>`, `<LI>`, or
//! `<H1>`) where a 'sentence' is a sequence of words and certain
//! (non-sentence-breaking) markups (such as `<B>` or `<A>`)". Separately,
//! "certain markups such as images (`<IMG src=...>`) and hypertext
//! references (`<A href=...>`) are 'content-defining'" — they count toward
//! sentence length and get highlighted when changed, where purely
//! presentational markups (`<B>`, `<I>`) do not.
//!
//! The tag inventory is HTML 2.0 plus the Netscape 1.1 extensions that
//! 1995 pages used (`CENTER`, `FONT`, `BLINK`, tables).

use crate::lexer::Tag;

/// The two classification axes a markup can fall on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkupClass {
    /// Starts a new "sentence" token in the HtmlDiff token stream.
    pub sentence_breaking: bool,
    /// Counts toward sentence length and is highlighted when changed.
    pub content_defining: bool,
}

/// Block-level / structural tags that break sentences.
const SENTENCE_BREAKING: &[&str] = &[
    "HTML",
    "HEAD",
    "BODY",
    "TITLE",
    "P",
    "BR",
    "HR",
    "H1",
    "H2",
    "H3",
    "H4",
    "H5",
    "H6",
    "UL",
    "OL",
    "LI",
    "DL",
    "DT",
    "DD",
    "DIR",
    "MENU",
    "PRE",
    "BLOCKQUOTE",
    "ADDRESS",
    "TABLE",
    "TR",
    "TD",
    "TH",
    "CAPTION",
    "FORM",
    "CENTER",
    "DIV",
    "ISINDEX",
    "META",
    "LINK",
    "BASE",
    "XMP",
    "LISTING",
    "PLAINTEXT",
    "FRAME",
    "FRAMESET",
    "NOFRAMES",
    "MAP",
    "AREA",
    "SELECT",
    "OPTION",
    "TEXTAREA",
];

/// Inline tags that define content rather than presentation.
const CONTENT_DEFINING: &[&str] = &["IMG", "A", "INPUT", "APPLET", "EMBED", "AREA", "ISINDEX"];

/// Returns true if `name` (any case) is a sentence-breaking markup.
///
/// Unknown tags are treated as *non*-breaking: an unrecognized inline
/// extension should not shatter a sentence.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::classify::is_sentence_breaking;
///
/// assert!(is_sentence_breaking("P"));
/// assert!(is_sentence_breaking("li"));
/// assert!(!is_sentence_breaking("B"));
/// assert!(!is_sentence_breaking("BLINK"));
/// ```
pub fn is_sentence_breaking(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    SENTENCE_BREAKING.contains(&upper.as_str())
}

/// Returns true if `name` (any case) is a content-defining markup.
///
/// # Examples
///
/// ```
/// use aide_htmlkit::classify::is_content_defining;
///
/// assert!(is_content_defining("IMG"));
/// assert!(is_content_defining("a"));
/// assert!(!is_content_defining("STRONG"));
/// ```
pub fn is_content_defining(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    CONTENT_DEFINING.contains(&upper.as_str())
}

/// Classifies a tag on both axes.
pub fn classify(tag: &Tag) -> MarkupClass {
    MarkupClass {
        sentence_breaking: is_sentence_breaking(&tag.name),
        content_defining: is_content_defining(&tag.name),
    }
}

/// Tags inside which whitespace is significant (the paper's parenthetical:
/// whitespace "does not provide any content (except perhaps inside a
/// `<PRE>`)").
pub fn preserves_whitespace(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "PRE" | "XMP" | "LISTING" | "PLAINTEXT" | "TEXTAREA"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Tag;

    #[test]
    fn paper_examples_break_sentences() {
        for t in ["P", "HR", "LI", "H1"] {
            assert!(is_sentence_breaking(t), "{t} should break sentences");
        }
    }

    #[test]
    fn paper_examples_do_not_break_sentences() {
        for t in ["B", "A", "I", "EM", "STRONG", "TT", "FONT", "STRIKE"] {
            assert!(!is_sentence_breaking(t), "{t} should not break sentences");
        }
    }

    #[test]
    fn paper_examples_content_defining() {
        assert!(is_content_defining("IMG"));
        assert!(is_content_defining("A"));
        assert!(!is_content_defining("B"));
        assert!(!is_content_defining("I"));
        assert!(!is_content_defining("P"));
    }

    #[test]
    fn classification_is_case_insensitive() {
        assert!(is_sentence_breaking("table"));
        assert!(is_content_defining("Img"));
    }

    #[test]
    fn unknown_tags_are_inline_noncontent() {
        let c = classify(&Tag::open("MARQUEE"));
        assert!(!c.sentence_breaking);
        assert!(!c.content_defining);
    }

    #[test]
    fn pre_preserves_whitespace() {
        assert!(preserves_whitespace("PRE"));
        assert!(preserves_whitespace("pre"));
        assert!(!preserves_whitespace("P"));
    }

    #[test]
    fn anchor_is_content_defining_but_not_breaking() {
        // The subtle case from §5.1: <A> joins a sentence yet defines content.
        let c = classify(&Tag::open("A").with_attr("HREF", "x.html"));
        assert!(!c.sentence_breaking);
        assert!(c.content_defining);
    }
}
