//! URL parsing and relative resolution (RFC-1808 subset).
//!
//! AIDE keys everything on URLs: the snapshot archive is "addressed by
//! their URLs" (§2.2), w3newer matches configuration patterns against
//! them, and §4.1 describes the relative-link problem that the `BASE`
//! directive addresses when a page is served away from its origin. This
//! module implements the 1995-era URL model: `scheme://host:port/path?query`
//! plus `file:` and fragment handling, with relative resolution and dot
//! segment normalization.

use std::fmt;

/// A parsed URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    /// Lowercased scheme (`http`, `file`, `ftp`, …).
    pub scheme: String,
    /// Lowercased host; empty for `file:` URLs.
    pub host: String,
    /// Port if explicitly given.
    pub port: Option<u16>,
    /// Path beginning with `/` (or the opaque remainder for `mailto:`).
    pub path: String,
    /// Query string without the `?`, if present.
    pub query: Option<String>,
    /// Fragment without the `#`, if present.
    pub fragment: Option<String>,
}

/// Error from [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlError(pub String);

impl fmt::Display for UrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad URL: {}", self.0)
    }
}

impl std::error::Error for UrlError {}

impl Url {
    /// Parses an absolute URL.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_htmlkit::url::Url;
    ///
    /// let u = Url::parse("http://www.research.att.com:8000/orgs/ssr?q=1#top").unwrap();
    /// assert_eq!(u.scheme, "http");
    /// assert_eq!(u.host, "www.research.att.com");
    /// assert_eq!(u.port, Some(8000));
    /// assert_eq!(u.path, "/orgs/ssr");
    /// assert_eq!(u.query.as_deref(), Some("q=1"));
    /// assert_eq!(u.fragment.as_deref(), Some("top"));
    /// ```
    pub fn parse(s: &str) -> Result<Url, UrlError> {
        let s = s.trim();
        let colon = s
            .find(':')
            .ok_or_else(|| UrlError(format!("{s:?}: no scheme")))?;
        let scheme = s[..colon].to_ascii_lowercase();
        if scheme.is_empty()
            || !scheme
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
            || !scheme
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
        {
            return Err(UrlError(format!("{s:?}: invalid scheme")));
        }
        let rest = &s[colon + 1..];
        let (host, port, after_authority) = if let Some(auth_rest) = rest.strip_prefix("//") {
            let auth_end = auth_rest.find(['/', '?', '#']).unwrap_or(auth_rest.len());
            let authority = &auth_rest[..auth_end];
            let (host, port) = match authority.rfind(':') {
                Some(i) => {
                    let p = authority[i + 1..]
                        .parse::<u16>()
                        .map_err(|_| UrlError(format!("{s:?}: bad port")))?;
                    (authority[..i].to_ascii_lowercase(), Some(p))
                }
                None => (authority.to_ascii_lowercase(), None),
            };
            (host, port, &auth_rest[auth_end..])
        } else {
            (String::new(), None, rest)
        };
        let (body, fragment) = match after_authority.find('#') {
            Some(i) => (
                &after_authority[..i],
                Some(after_authority[i + 1..].to_string()),
            ),
            None => (after_authority, None),
        };
        let (path, query) = match body.find('?') {
            Some(i) => (body[..i].to_string(), Some(body[i + 1..].to_string())),
            None => (body.to_string(), None),
        };
        let path = if path.is_empty() && !host.is_empty() {
            "/".to_string()
        } else {
            path
        };
        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
            fragment,
        })
    }

    /// The default port for well-known schemes.
    pub fn default_port(&self) -> Option<u16> {
        match self.scheme.as_str() {
            "http" => Some(80),
            "https" => Some(443),
            "ftp" => Some(21),
            "gopher" => Some(70),
            _ => None,
        }
    }

    /// The effective port (explicit or scheme default).
    pub fn effective_port(&self) -> Option<u16> {
        self.port.or_else(|| self.default_port())
    }

    /// Returns this URL without its fragment.
    pub fn without_fragment(&self) -> Url {
        Url {
            fragment: None,
            ..self.clone()
        }
    }

    /// Resolves `reference` (possibly relative) against `self` as the base.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_htmlkit::url::Url;
    ///
    /// let base = Url::parse("http://host/a/b/c.html").unwrap();
    /// assert_eq!(base.join("d.html").unwrap().path, "/a/b/d.html");
    /// assert_eq!(base.join("../x.html").unwrap().path, "/a/x.html");
    /// assert_eq!(base.join("/top.html").unwrap().path, "/top.html");
    /// assert_eq!(base.join("#sec2").unwrap().fragment.as_deref(), Some("sec2"));
    /// assert_eq!(base.join("ftp://other/f").unwrap().host, "other");
    /// ```
    pub fn join(&self, reference: &str) -> Result<Url, UrlError> {
        let reference = reference.trim();
        if reference.is_empty() {
            return Ok(self.clone());
        }
        // Absolute URL?
        if let Some(colon) = reference.find(':') {
            let scheme = &reference[..colon];
            if !scheme.is_empty()
                && scheme
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic())
                && scheme
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '+' || c == '-' || c == '.')
                && !reference[..colon].contains('/')
            {
                return Url::parse(reference);
            }
        }
        // Network-path reference: //host/path
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        // Fragment-only reference.
        if let Some(frag) = reference.strip_prefix('#') {
            let mut u = self.clone();
            u.fragment = Some(frag.to_string());
            return Ok(u);
        }
        let (body, fragment) = match reference.find('#') {
            Some(i) => (&reference[..i], Some(reference[i + 1..].to_string())),
            None => (reference, None),
        };
        let (ref_path, query) = match body.find('?') {
            Some(i) => (&body[..i], Some(body[i + 1..].to_string())),
            None => (body, None),
        };
        let merged = if ref_path.starts_with('/') {
            ref_path.to_string()
        } else if ref_path.is_empty() {
            self.path.clone()
        } else {
            // Merge with the base path's directory.
            let dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            format!("{dir}{ref_path}")
        };
        Ok(Url {
            scheme: self.scheme.clone(),
            host: self.host.clone(),
            port: self.port,
            path: normalize_path(&merged),
            query,
            fragment,
        })
    }
}

/// Removes `.` and `..` segments from an absolute path.
fn normalize_path(path: &str) -> String {
    let trailing_slash = path.ends_with('/') || path.ends_with("/.") || path.ends_with("/..");
    let mut stack: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                stack.pop();
            }
            s => stack.push(s),
        }
    }
    let mut out = String::from("/");
    out.push_str(&stack.join("/"));
    if trailing_slash && out.len() > 1 {
        out.push('/');
    }
    out
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.scheme)?;
        if !self.host.is_empty() {
            write!(f, "//{}", self.host)?;
            if let Some(p) = self.port {
                write!(f, ":{p}")?;
            }
        }
        write!(f, "{}", self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        if let Some(fr) = &self.fragment {
            write!(f, "#{fr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_http() {
        let u = Url::parse("http://www.yahoo.com/").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "www.yahoo.com");
        assert_eq!(u.path, "/");
        assert_eq!(u.port, None);
        assert_eq!(u.effective_port(), Some(80));
    }

    #[test]
    fn parse_host_only_gets_root_path() {
        let u = Url::parse("http://c2.com").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "http://c2.com/");
    }

    #[test]
    fn parse_with_port() {
        // The paper's example: http://snapple.cs.washington.edu:600/mobile/
        let u = Url::parse("http://snapple.cs.washington.edu:600/mobile/").unwrap();
        assert_eq!(u.port, Some(600));
        assert_eq!(u.path, "/mobile/");
    }

    #[test]
    fn parse_file_url() {
        let u = Url::parse("file:/home/douglis/hotlist.html").unwrap();
        assert_eq!(u.scheme, "file");
        assert_eq!(u.host, "");
        assert_eq!(u.path, "/home/douglis/hotlist.html");
    }

    #[test]
    fn host_and_scheme_lowercased_path_untouched() {
        let u = Url::parse("HTTP://WWW.ATT.COM/Research/INDEX.html").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "www.att.com");
        assert_eq!(u.path, "/Research/INDEX.html");
    }

    #[test]
    fn parse_errors() {
        assert!(Url::parse("no-scheme-here").is_err());
        assert!(Url::parse("http://host:notaport/").is_err());
        assert!(Url::parse("1http://x/").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://www.usenix.org/",
            "http://host:8080/a/b?x=1",
            "file:/etc/hosts",
            "http://host/path#frag",
            "gopher://gopher.tc.umn.edu/",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u, "roundtrip {s}");
        }
    }

    #[test]
    fn join_relative_document() {
        let base = Url::parse("http://h/dir/page.html").unwrap();
        assert_eq!(
            base.join("other.html").unwrap().to_string(),
            "http://h/dir/other.html"
        );
    }

    #[test]
    fn join_dotdot_chains() {
        let base = Url::parse("http://h/a/b/c/d.html").unwrap();
        assert_eq!(base.join("../../x.html").unwrap().path, "/a/x.html");
        assert_eq!(
            base.join("../../../../x.html").unwrap().path,
            "/x.html",
            "over-popping clamps at root"
        );
        assert_eq!(base.join("./y.html").unwrap().path, "/a/b/c/y.html");
    }

    #[test]
    fn join_absolute_path_and_url() {
        let base = Url::parse("http://h/a/b.html").unwrap();
        assert_eq!(base.join("/top").unwrap().to_string(), "http://h/top");
        assert_eq!(base.join("http://other/x").unwrap().host, "other");
    }

    #[test]
    fn join_network_path() {
        let base = Url::parse("http://h/a").unwrap();
        let u = base.join("//mirror.example.org/b").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "mirror.example.org");
        assert_eq!(u.path, "/b");
    }

    #[test]
    fn join_query_and_fragment() {
        let base = Url::parse("http://h/cgi-bin/s").unwrap();
        assert_eq!(
            base.join("?q=web").unwrap().to_string(),
            "http://h/cgi-bin/s?q=web"
        );
        let f = base.join("#middle").unwrap();
        assert_eq!(f.fragment.as_deref(), Some("middle"));
        assert_eq!(f.path, "/cgi-bin/s");
    }

    #[test]
    fn join_empty_reference_is_base() {
        let base = Url::parse("http://h/x").unwrap();
        assert_eq!(base.join("").unwrap(), base);
    }

    #[test]
    fn join_preserves_directory_trailing_slash() {
        let base = Url::parse("http://h/dir/").unwrap();
        assert_eq!(base.join("sub/").unwrap().path, "/dir/sub/");
        assert_eq!(base.join("..").unwrap().path, "/");
    }

    #[test]
    fn without_fragment() {
        let u = Url::parse("http://h/p#s").unwrap();
        assert_eq!(u.without_fragment().to_string(), "http://h/p");
    }

    #[test]
    fn relative_with_colon_in_path_is_not_absolute() {
        let base = Url::parse("http://h/dir/x").unwrap();
        // "a/b:c" has a '/' before ':' so it is a relative path.
        let u = base.join("a/b:c").unwrap();
        assert_eq!(u.host, "h");
        assert_eq!(u.path, "/dir/a/b:c");
    }
}
