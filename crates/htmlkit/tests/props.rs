//! Property-based tests for the HTML substrate.
//!
//! Invariants:
//! - the lexer never panics on arbitrary input, and serialize∘lex is
//!   idempotent (a fixpoint after one round);
//! - text content survives lexing;
//! - URL join results are well-formed (absolute path, no dot segments)
//!   and display→parse round-trips;
//! - entity decode of encode is the identity.

use aide_htmlkit::entity::{decode_entities, encode_entities};
use aide_htmlkit::lexer::{lex, serialize, Token};
use aide_htmlkit::url::Url;
use proptest::prelude::*;

fn html_soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("<".to_string()),
            Just(">".to_string()),
            Just("</".to_string()),
            Just("<P>".to_string()),
            Just("</P>".to_string()),
            Just("<A HREF=\"x\">".to_string()),
            Just("<IMG SRC='y.gif'>".to_string()),
            Just("<!-- c -->".to_string()),
            Just("<!DOCTYPE html>".to_string()),
            Just("text ".to_string()),
            Just("a&amp;b ".to_string()),
            Just("& ".to_string()),
            Just("\"quote'".to_string()),
            Just("=".to_string()),
            Just("<B".to_string()),
            "[ -~]{0,6}".prop_map(|s| s),
        ],
        0..30,
    )
    .prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn lexer_never_panics(s in html_soup()) {
        let _ = lex(&s);
    }

    #[test]
    fn serialize_lex_is_idempotent(s in html_soup()) {
        let once = serialize(&lex(&s));
        let twice = serialize(&lex(&once));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn tokens_roundtrip_through_serialization(s in html_soup()) {
        let tokens = lex(&s);
        let round = lex(&serialize(&tokens));
        // Token streams are equal after one normalization pass.
        prop_assert_eq!(lex(&serialize(&round)), round);
    }

    #[test]
    fn plain_text_survives(words in proptest::collection::vec("[a-z]{1,8}", 1..10)) {
        let text = words.join(" ");
        let tokens = lex(&text);
        prop_assert_eq!(tokens.len(), 1);
        match &tokens[0] {
            Token::Text(t) => prop_assert_eq!(t, &text),
            other => prop_assert!(false, "expected text, got {:?}", other),
        }
    }

    #[test]
    fn entity_encode_decode_identity(s in "[ -~]{0,40}") {
        prop_assert_eq!(decode_entities(&encode_entities(&s)), s);
    }

    #[test]
    fn url_join_yields_wellformed(path in "[a-z0-9./]{0,20}") {
        let base = Url::parse("http://host/dir/sub/page.html").unwrap();
        if let Ok(joined) = base.join(&path) {
            prop_assert!(joined.path.starts_with('/'), "path {:?}", joined.path);
            prop_assert!(!joined.path.contains("/../"), "unnormalized {:?}", joined.path);
            prop_assert!(!joined.path.ends_with("/.."), "unnormalized {:?}", joined.path);
            // Display → parse round-trips.
            let reparsed = Url::parse(&joined.to_string()).unwrap();
            prop_assert_eq!(reparsed, joined);
        }
    }

    #[test]
    fn url_display_parse_roundtrip(
        host in "[a-z]{1,8}(\\.[a-z]{2,3})?",
        path in "(/[a-z0-9]{1,6}){0,4}",
        port in proptest::option::of(1u16..60000),
    ) {
        let mut url = format!("http://{host}");
        if let Some(p) = port {
            url.push_str(&format!(":{p}"));
        }
        url.push_str(if path.is_empty() { "/" } else { &path });
        let parsed = Url::parse(&url).unwrap();
        prop_assert_eq!(Url::parse(&parsed.to_string()).unwrap(), parsed);
    }
}
