//! Myers' `O((N+M)D)` greedy diff algorithm.
//!
//! For plain equality comparison (the line-diff case, where RCS deltas and
//! the UNIX `diff` baseline live) the Myers algorithm is far faster than
//! the LCS dynamic program when the inputs are similar, which is exactly
//! the common case for successive versions of a Web page. It spends time
//! proportional to the number of differences `D`, not to `N·M`.
//!
//! The implementation records the contour of furthest-reaching paths per
//! edit distance (the `V` arrays) and backtracks through them to recover
//! the alignment. That trace costs `O(D²)` memory; above
//! [`MAX_EDIT_DISTANCE`] the algorithm degrades gracefully to aligning the
//! common prefix and suffix only — a correct (if non-minimal) edit script,
//! appropriate for "the page was completely replaced", which §8.2 of the
//! paper observes defeats differencing anyway.

/// Edit-distance cap before falling back to prefix/suffix alignment.
pub const MAX_EDIT_DISTANCE: usize = 4096;

/// Computes matched index pairs between `a` and `b` (strictly increasing
/// in both components), minimizing insertions + deletions.
///
/// # Examples
///
/// ```
/// use aide_diffcore::myers::myers_diff;
///
/// let a = [1, 2, 3, 4];
/// let b = [1, 3, 4, 5];
/// assert_eq!(myers_diff(&a, &b), vec![(0, 0), (2, 1), (3, 2)]);
/// ```
pub fn myers_diff<T: PartialEq>(a: &[T], b: &[T]) -> Vec<(usize, usize)> {
    // Trim the common prefix and suffix first; it is both the classic
    // speed optimization and the fallback skeleton.
    let n = a.len();
    let m = b.len();
    let mut prefix = 0;
    while prefix < n && prefix < m && a[prefix] == b[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < n - prefix && suffix < m - prefix && a[n - 1 - suffix] == b[m - 1 - suffix] {
        suffix += 1;
    }
    let core_a = &a[prefix..n - suffix];
    let core_b = &b[prefix..m - suffix];

    let mut pairs: Vec<(usize, usize)> = (0..prefix).map(|i| (i, i)).collect();
    match myers_core(core_a, core_b) {
        Some(core_pairs) => {
            pairs.extend(
                core_pairs
                    .into_iter()
                    .map(|(i, j)| (i + prefix, j + prefix)),
            );
        }
        None => {
            // Edit distance exceeded the cap: treat the middle as a full
            // replacement (no matches).
        }
    }
    for k in 0..suffix {
        pairs.push((n - suffix + k, m - suffix + k));
    }
    pairs
}

/// Greedy Myers over the trimmed middle. Returns `None` if the edit
/// distance exceeds [`MAX_EDIT_DISTANCE`].
fn myers_core<T: PartialEq>(a: &[T], b: &[T]) -> Option<Vec<(usize, usize)>> {
    let n = a.len() as isize;
    let m = b.len() as isize;
    if n == 0 || m == 0 {
        return Some(Vec::new());
    }
    let max = ((n + m) as usize).min(MAX_EDIT_DISTANCE);
    let offset = max as isize;
    let width = 2 * max + 1;
    let mut v = vec![0isize; width];
    let mut trace: Vec<Vec<isize>> = Vec::new();
    let mut found = false;

    'search: for d in 0..=max as isize {
        // Record V as it stood when depth d began; backtracking reads it.
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && a[x as usize] == b[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                found = true;
                break 'search;
            }
            k += 2;
        }
    }
    if !found {
        return None;
    }

    // Backtrack through the trace (Myers path recovery): at each depth,
    // decide whether the last edit was a vertical or horizontal move, and
    // record the diagonal snake walked after it.
    let mut pairs = Vec::new();
    let mut x = n;
    let mut y = m;
    for d in (0..trace.len() as isize).rev() {
        let v = &trace[d as usize];
        let k = x - y;
        let idx = (k + offset) as usize;
        let prev_k = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
            k + 1
        } else {
            k - 1
        };
        let prev_x = v[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            pairs.push((x as usize, y as usize));
        }
        if d > 0 {
            x = prev_x;
            y = prev_y;
        }
    }
    pairs.reverse();
    Some(pairs)
}

/// Returns the minimal edit distance (insertions + deletions) between the
/// sequences, or `None` if it exceeds [`MAX_EDIT_DISTANCE`].
pub fn edit_distance<T: PartialEq>(a: &[T], b: &[T]) -> Option<usize> {
    let pairs = myers_diff(a, b);
    let matched = pairs.len();
    // The fallback path can under-match, in which case this is an upper
    // bound rather than the true distance; detect by recomputing honestly.
    let dist = a.len() + b.len() - 2 * matched;
    if dist > MAX_EDIT_DISTANCE {
        None
    } else {
        Some(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_valid<T: PartialEq>(pairs: &[(usize, usize)], a: &[T], b: &[T]) {
        let mut last: Option<(usize, usize)> = None;
        for &(i, j) in pairs {
            assert!(i < a.len() && j < b.len());
            assert!(a[i] == b[j], "pair ({i},{j}) does not match");
            if let Some((pi, pj)) = last {
                assert!(i > pi && j > pj, "pairs not increasing");
            }
            last = Some((i, j));
        }
    }

    #[test]
    fn identical() {
        let a = [1, 2, 3];
        assert_eq!(myers_diff(&a, &a), vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(edit_distance(&a, &a), Some(0));
    }

    #[test]
    fn empty_cases() {
        let a: [u8; 0] = [];
        let b = [1u8, 2];
        assert!(myers_diff(&a, &b).is_empty());
        assert!(myers_diff(&b, &a).is_empty());
        assert!(myers_diff(&a, &a).is_empty());
        assert_eq!(edit_distance(&a, &b), Some(2));
    }

    #[test]
    fn single_insert() {
        let a = [1, 2, 4];
        let b = [1, 2, 3, 4];
        let pairs = myers_diff(&a, &b);
        check_valid(&pairs, &a, &b);
        assert_eq!(pairs.len(), 3);
        assert_eq!(edit_distance(&a, &b), Some(1));
    }

    #[test]
    fn single_delete() {
        let a = [1, 2, 3, 4];
        let b = [1, 2, 4];
        assert_eq!(edit_distance(&a, &b), Some(1));
    }

    #[test]
    fn classic_abcabba() {
        let a: Vec<char> = "ABCABBA".chars().collect();
        let b: Vec<char> = "CBABAC".chars().collect();
        let pairs = myers_diff(&a, &b);
        check_valid(&pairs, &a, &b);
        // LCS length of ABCABBA/CBABAC is 4, distance 7+6-8 = 5.
        assert_eq!(pairs.len(), 4);
        assert_eq!(edit_distance(&a, &b), Some(5));
    }

    #[test]
    fn completely_different() {
        let a = [1, 2, 3];
        let b = [4, 5, 6, 7];
        assert!(myers_diff(&a, &b).is_empty());
        assert_eq!(edit_distance(&a, &b), Some(7));
    }

    #[test]
    fn matches_lcs_length_on_random_inputs() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..40 {
            let n = next() % 60;
            let m = next() % 60;
            let a: Vec<usize> = (0..n).map(|_| next() % 6).collect();
            let b: Vec<usize> = (0..m).map(|_| next() % 6).collect();
            let pairs = myers_diff(&a, &b);
            check_valid(&pairs, &a, &b);
            let lcs = crate::lcs::lcs_pairs(&a, &b);
            assert_eq!(pairs.len(), lcs.len(), "trial {trial}: myers not minimal");
        }
    }

    #[test]
    fn prefix_suffix_trim_consistency() {
        // Big common prefix and suffix around a small change.
        let mut a: Vec<u32> = (0..500).collect();
        let mut b = a.clone();
        b[250] = 9999;
        a.insert(100, 7777);
        let pairs = myers_diff(&a, &b);
        check_valid(&pairs, &a, &b);
        assert_eq!(a.len() + b.len() - 2 * pairs.len(), 3); // one insert, one replace
    }

    #[test]
    fn long_similar_sequences_are_cheap_and_correct() {
        let a: Vec<u32> = (0..20_000).collect();
        let mut b = a.clone();
        b.remove(10_000);
        b.insert(5_000, 999_999);
        let pairs = myers_diff(&a, &b);
        check_valid(&pairs, &a, &b);
        assert_eq!(pairs.len(), a.len() - 1);
    }
}
