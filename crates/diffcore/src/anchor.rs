//! Anchored decomposition of the weighted-LCS problem.
//!
//! The full dynamic program of [`crate::lcs`] is `O(n·m)` in the number
//! of tokens, which is the HtmlDiff hot path's dominant cost. Real
//! successive page revisions are overwhelmingly similar, so almost all
//! of that work rediscovers unchanged material. This module exploits the
//! similarity the way patience diff and Myers do, while keeping the
//! weighted-LCS scoring model **and** the naive DP's exact output,
//! tie-breaks included:
//!
//! 1. **Trim** the common suffix (tokens whose class ids match,
//!    confirmed by `verify_eq`). Only the suffix: the DP's backtrack
//!    walks from the bottom-right corner and always takes an identical
//!    trailing pair (an exchange argument shows the diagonal stays
//!    weight-consistent), so suffix trimming reproduces its choices
//!    exactly. Prefix trimming does *not* — against `[7,2]`, the DP
//!    aligns the second `7` of `[7,1,7,2]`, not the first — so common
//!    prefixes are left to the anchor/gap machinery, which handles them
//!    at the same cost.
//! 2. **Anchor** the remaining region at tokens whose class id occurs
//!    exactly once on each side (patience-style) and whose *context
//!    confirms them*: on at least one side, the verified-identical run
//!    adjacent to the anchor must contain another *unique* pair (or
//!    reach a region corner) — which every anchor inside unchanged
//!    material does, while a unique pair stranded in churn — where the
//!    DP may prefer a weight-tied exchange over it — does not, even
//!    when mass-repeated filler (`<P>` against `<P>`) happens to agree
//!    next to it. If any confirmed
//!    pair has to be discarded to keep anchors mutually non-crossing,
//!    the input transposed content across other matches — the one
//!    regime where forcing anchors can lose weight — and the whole
//!    region is aligned as a single gap instead. When *no* unique pair
//!    survives (full-replacement pages), a secondary rescue retries on
//!    rare-but-not-unique hashes confirmed by runs of consecutive
//!    verified-identical pairs — see [`AnchorConfig::rescue_max_freq`].
//! 3. **Align the gaps** between consecutive anchors independently with
//!    the weighted LCS, each gap scored through a flat dense memo keyed
//!    by gap-local indices. Gaps whose tokens all match with weight ≤ 1
//!    (runs of sentence-breaking markup) and which are large enough to
//!    matter run a *banded* DP whose band width comes from a Myers
//!    pre-pass — `O((N+M)·D)` cells instead of `O(N·M)` — with the same
//!    backtrack rule, so even its tie-breaks match the full DP.
//!    Independent gaps can score concurrently via
//!    [`aide_util::sync::parallel_map`].
//!
//! # Exactness
//!
//! Output equality with the naive DP rests on one premise: **a token
//! that is unique on both sides and verified identical is part of every
//! maximum-weight alignment**. Edit-structured revisions — insertions,
//! deletions, replacements, which is what page histories are made of —
//! satisfy it, because edits never move surviving content across other
//! surviving content. Under the premise, every anchor is in every
//! optimal alignment, optimal substructure splits the DP at the anchors,
//! and each gap's rectangle-local backtrack coincides with the global
//! one; the property suite asserts pair-for-pair equality across the
//! workload edit models. Inputs that transpose unique content violate
//! the premise; crossing anchors detect (and defuse) the pairwise case.
//!
//! The premise has a second failure mode with no transposition at all:
//! in a page that was replaced wholesale, a *stray* surviving pair (one
//! image tag amid churn) is unique and verified, yet a chain of partial
//! sentence matches crossing it can outweigh it, so the canonical DP
//! alignment routes around it. No local confirmation can rule this out —
//! it is a global weight question — so anchors are only ever *forced*
//! when they are dense ([`AnchorConfig::min_density_permille`]): on real
//! edit-structured revisions confirmed anchors blanket the unchanged
//! majority of the page (measured ≥ 570‰ across the workload edit
//! models), while replacement-churn middles measure under 100‰ and fall
//! through to the single-gap exact alignment, whose dense, banded, and
//! Hirschberg paths all replay the canonical backtrack by construction.
//! Callers that need the naive path unconditionally (ablation
//! experiments counting score probes) must bypass this module — in
//! HtmlDiff, via `CompareOptions::force_naive`.
//!
//! Class ids (`a_ids` / `b_ids`) are hashes: equal ids are *necessary*
//! for token identity but confirmed through `verify_eq` before any trim
//! or anchor decision, so a hash collision can degrade the decomposition
//! but never corrupt the alignment.

use crate::hirschberg::weighted_lcs_hirschberg;
use crate::lcs::weighted_lcs;
use crate::myers::myers_diff;
use crate::scratch;
use aide_util::sync::parallel_map;
use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;

/// Tunables for [`anchored_weighted_lcs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorConfig {
    /// Middle regions of at most this many DP cells skip anchoring and
    /// run a single gap DP directly.
    pub small_cells: usize,
    /// Unit-weight gaps larger than this many cells try the banded DP.
    pub myers_min_cells: usize,
    /// Worker threads for scoring independent gaps (1 = inline/serial).
    pub workers: usize,
    /// When no unique-hash anchor survives, retry anchoring on hashes
    /// occurring the same number of times on both sides, up to this
    /// frequency ("secondary-anchor rescue"). `< 2` disables rescue.
    pub rescue_max_freq: u32,
    /// A rescue candidate must sit inside a run of at least this many
    /// consecutive verified-identical pairs (with at least one on each
    /// side), so only shared structural material — headers, footers,
    /// navigation — can rescue-anchor, never a coincidental repeat.
    pub rescue_min_run: usize,
    /// Anchors (unique or rescue) are *forced* into the alignment only
    /// when they cover at least this many permille of the shorter middle
    /// side. Below the gate the middle aligns as one exact gap instead:
    /// in anchor-sparse churn the weighted DP can legitimately route
    /// around any individual verified pair (a chain of partial sentence
    /// matches outweighs it), so forcing sparse anchors risks diverging
    /// from the canonical alignment. `0` disables the gate.
    pub min_density_permille: u32,
}

impl Default for AnchorConfig {
    fn default() -> Self {
        AnchorConfig {
            small_cells: 1 << 12,
            myers_min_cells: 1 << 12,
            workers: 1,
            rescue_max_freq: 3,
            rescue_min_run: 3,
            min_density_permille: 300,
        }
    }
}

/// How [`anchored_weighted_lcs`] decomposed the problem (for benches and
/// diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnchorStats {
    /// Tokens trimmed as common suffix.
    pub suffix: usize,
    /// Anchor pairs forced in the middle.
    pub anchors: usize,
    /// Verified unique pairs discarded because they crossed other
    /// anchors. Non-zero means the input transposed content and the
    /// middle was aligned as a single gap.
    pub crossed_anchors: usize,
    /// Gaps aligned between trims/anchors.
    pub gaps: usize,
    /// Total DP cells actually evaluated across gaps.
    pub gap_cells: usize,
    /// Cells the naive full DP would have evaluated (`n·m`).
    pub full_cells: usize,
    /// Anchors recovered by the secondary (rare-hash) rescue after every
    /// unique-hash anchor died.
    pub rescue_anchors: usize,
    /// Gaps aligned through the dense flat memo.
    pub dense_gaps: usize,
    /// Gaps aligned by the banded (Myers-bounded) DP.
    pub banded_gaps: usize,
    /// Gaps aligned by the linear-space Hirschberg replay (too large for
    /// the dense memo).
    pub hirschberg_gaps: usize,
    /// Confirmed anchors withheld by the density gate
    /// ([`AnchorConfig::min_density_permille`]); the middle was aligned
    /// as a single exact gap instead of being split at them.
    pub gated_anchors: usize,
}

impl AnchorStats {
    /// Fraction of the naive DP the anchored path avoided, in permille:
    /// `1000 · (full_cells − gap_cells) / full_cells`. Degenerate
    /// (empty) inputs with `full_cells == 0` count as fully covered.
    /// This is the per-diff "anchor coverage" number the observability
    /// layer histograms.
    pub fn coverage_permille(&self) -> u64 {
        if self.full_cells == 0 {
            return 1000;
        }
        let avoided = self.full_cells.saturating_sub(self.gap_cells) as u64;
        avoided * 1000 / self.full_cells as u64
    }
}

/// Dense-memo size cap per gap; larger gaps fall back to the
/// linear-space Hirschberg replay (unmemoized) so memory stays bounded
/// on pathological inputs.
const DENSE_MEMO_CELL_LIMIT: usize = 1 << 24;

/// Computes a maximum-weight alignment of `0..a_ids.len()` against
/// `0..b_ids.len()` by anchored decomposition.
///
/// * `a_ids` / `b_ids` — per-token class hashes. Equal ids must be
///   necessary for the tokens to be interchangeable (identical content,
///   maximal mutual match weight); `verify_eq(i, j)` confirms it.
/// * `a_unit` / `b_unit` — true for tokens that can only match with
///   weight ≤ 1 (enables the banded fallback on all-unit gaps).
/// * `score` — the pairwise weight function, shared with the naive DP.
///   Must be pure; it may be called from several threads when
///   `cfg.workers > 1`.
///
/// Returns the matched pairs (strictly increasing in both components)
/// and decomposition statistics.
pub fn anchored_weighted_lcs(
    a_ids: &[u64],
    b_ids: &[u64],
    a_unit: &[bool],
    b_unit: &[bool],
    cfg: &AnchorConfig,
    score: &(impl Fn(usize, usize) -> u64 + Sync),
    verify_eq: &(impl Fn(usize, usize) -> bool + Sync),
) -> (Vec<(usize, usize)>, AnchorStats) {
    let n = a_ids.len();
    let m = b_ids.len();
    assert_eq!(n, a_unit.len(), "a_unit must parallel a_ids");
    assert_eq!(m, b_unit.len(), "b_unit must parallel b_ids");
    let mut stats = AnchorStats {
        full_cells: n.saturating_mul(m),
        ..AnchorStats::default()
    };
    if n == 0 || m == 0 {
        return (Vec::new(), stats);
    }

    // 1. Trim the common suffix (see the module docs for why only the
    // suffix is backtrack-exact).
    let mut suffix = 0;
    while suffix < n
        && suffix < m
        && a_ids[n - 1 - suffix] == b_ids[m - 1 - suffix]
        && verify_eq(n - 1 - suffix, m - 1 - suffix)
    {
        suffix += 1;
    }
    stats.suffix = suffix;

    let mid_a = 0..n - suffix;
    let mid_b = 0..m - suffix;
    let mut pairs: Vec<(usize, usize)> = Vec::new();

    if !mid_a.is_empty() && !mid_b.is_empty() {
        let cells = mid_a.len().saturating_mul(mid_b.len());
        let mut anchors = if cells <= cfg.small_cells {
            Vec::new()
        } else {
            let (chain, crossed) =
                find_anchors(a_ids, b_ids, mid_a.clone(), mid_b.clone(), verify_eq);
            stats.crossed_anchors = crossed;
            if crossed > 0 {
                // Transposed content: forcing any of these anchors could
                // cost weight the full DP would keep. One gap, no forcing.
                Vec::new()
            } else if chain.is_empty() && cfg.rescue_max_freq >= 2 {
                // Every unique hash died (full-replacement pages): retry
                // on rare-but-not-unique hashes before surrendering the
                // whole middle to one giant gap DP.
                let rescue =
                    find_rescue_anchors(a_ids, b_ids, mid_a.clone(), mid_b.clone(), cfg, verify_eq);
                stats.rescue_anchors = rescue.len();
                rescue
            } else {
                chain
            }
        };
        // Density gate: forcing anchors is only trusted in the
        // anchor-dense regime (edit-structured revisions, where confirmed
        // anchors blanket the unchanged material). A sparse chain amid
        // churn — a full replacement that happens to keep one image tag —
        // is exactly where the weighted DP can route *around* a verified
        // unique pair, so those anchors are withheld and the middle runs
        // as one exact gap.
        let min_side = mid_a.len().min(mid_b.len());
        if cfg.min_density_permille > 0
            && anchors.len() * 1000 < cfg.min_density_permille as usize * min_side
        {
            stats.gated_anchors = anchors.len();
            stats.rescue_anchors = 0;
            anchors = Vec::new();
        }
        stats.anchors = anchors.len();

        // 2. Decompose into gaps between consecutive anchors.
        let mut gaps: Vec<(Range<usize>, Range<usize>)> = Vec::with_capacity(anchors.len() + 1);
        let (mut ga, mut gb) = (mid_a.start, mid_b.start);
        for &(ai, bj) in &anchors {
            gaps.push((ga..ai, gb..bj));
            ga = ai + 1;
            gb = bj + 1;
        }
        gaps.push((ga..mid_a.end, gb..mid_b.end));
        stats.gaps = gaps
            .iter()
            .filter(|(a, b)| !a.is_empty() && !b.is_empty())
            .count();
        stats.gap_cells = gaps
            .iter()
            .map(|(a, b)| a.len().saturating_mul(b.len()))
            .sum();

        // 3. Score the gaps (concurrently when configured); results come
        // back in gap order so the stitched alignment is deterministic.
        let gap_pairs = parallel_map(&gaps, cfg.workers, |_, (ra, rb)| {
            align_gap(
                ra.clone(),
                rb.clone(),
                a_ids,
                b_ids,
                a_unit,
                b_unit,
                cfg,
                score,
                verify_eq,
            )
        });

        // Stitch: gap k precedes anchor k; the final gap follows the last
        // anchor.
        for (k, (mut chunk, path)) in gap_pairs.into_iter().enumerate() {
            match path {
                GapPath::Empty => {}
                GapPath::Dense => stats.dense_gaps += 1,
                GapPath::Banded => stats.banded_gaps += 1,
                GapPath::Hirschberg => stats.hirschberg_gaps += 1,
            }
            pairs.append(&mut chunk);
            if let Some(&anchor) = anchors.get(k) {
                pairs.push(anchor);
            }
        }
    }

    for k in 0..suffix {
        pairs.push((n - suffix + k, m - suffix + k));
    }
    (pairs, stats)
}

/// Unique-id anchor pairs in the middle region: ids occurring exactly
/// once on each side, confirmed by `verify_eq`, reduced to the longest
/// strictly-increasing chain. Returns the chain and the number of
/// verified candidates the chain had to discard (crossings).
fn find_anchors(
    a_ids: &[u64],
    b_ids: &[u64],
    mid_a: Range<usize>,
    mid_b: Range<usize>,
    verify_eq: &impl Fn(usize, usize) -> bool,
) -> (Vec<(usize, usize)>, usize) {
    #[derive(Default, Clone, Copy)]
    struct Occ {
        a_count: u32,
        a_idx: usize,
        b_count: u32,
        b_idx: usize,
    }
    let (end_a, end_b) = (mid_a.end, mid_b.end);
    let mut occ: HashMap<u64, Occ> = HashMap::new();
    for i in mid_a {
        let e = occ.entry(a_ids[i]).or_default();
        e.a_count += 1;
        e.a_idx = i;
    }
    for j in mid_b {
        let e = occ.entry(b_ids[j]).or_default();
        e.b_count += 1;
        e.b_idx = j;
    }
    let mut cands: Vec<(usize, usize)> = occ
        .values()
        .filter(|o| o.a_count == 1 && o.b_count == 1)
        .map(|o| (o.a_idx, o.b_idx))
        .collect();
    cands.sort_unstable();
    cands.retain(|&(i, j)| verify_eq(i, j));
    // Context confirmation: keep only anchors whose verified-identical
    // neighborhood contains *another unique pair* (or extends to a region
    // corner) on at least one side. A unique pair stranded inside churn —
    // an image tag a link-churn edit moved across its neighbor, a stray
    // survivor of a full replacement — can tie with (or lose to) an
    // exchange the DP's backtrack prefers; an anchor inside unchanged
    // material never can, and unchanged material is exactly where unique
    // neighbors also agree. Crucially, a neighboring pair of
    // mass-repeated filler (`<P>` against `<P>`) confirms nothing — every
    // filler token matches every other — so the walk skips through
    // verified filler pairs until it reaches a unique pair (confirmed), a
    // mismatch (not confirmed), or the walk cap (not confirmed; a longer
    // filler run carries no more meaning than a short one).
    let pair_eq = |i: usize, j: usize| a_ids[i] == b_ids[j] && verify_eq(i, j);
    let unique_pair = |i: usize, j: usize| {
        a_ids[i] == b_ids[j]
            && occ
                .get(&a_ids[i])
                .is_some_and(|o| o.a_count == 1 && o.b_count == 1)
    };
    const CONFIRM_WALK_CAP: usize = 32;
    let confirmed_back = |i: usize, j: usize| {
        for k in 1..=CONFIRM_WALK_CAP {
            if i < k && j < k {
                return true; // verified run reaches the region corner
            }
            if i < k || j < k || !pair_eq(i - k, j - k) {
                return false;
            }
            if unique_pair(i - k, j - k) {
                return true;
            }
        }
        false
    };
    let confirmed_fwd = |i: usize, j: usize| {
        for k in 1..=CONFIRM_WALK_CAP {
            if i + k == end_a && j + k == end_b {
                return true;
            }
            if i + k >= end_a || j + k >= end_b || !pair_eq(i + k, j + k) {
                return false;
            }
            if unique_pair(i + k, j + k) {
                return true;
            }
        }
        false
    };
    cands.retain(|&(i, j)| confirmed_back(i, j) || confirmed_fwd(i, j));
    let chain = longest_increasing_chain(&cands);
    let crossed = cands.len() - chain.len();
    (chain, crossed)
}

/// Secondary-anchor rescue: anchor pairs drawn from hashes that are
/// *rare but not unique* — occurring the same number of times (2 to
/// `rescue_max_freq`) on both sides.
///
/// Occurrences are paired positionally (the p-th on one side with the
/// p-th on the other), verified by `verify_eq`, and kept only when the
/// pair sits inside a run of at least `rescue_min_run` consecutive
/// verified-identical pairs with at least one neighbor pair on *each*
/// side. Real pages that replace their entire body keep shared
/// structural material — headers, footers, navigation bars — whose
/// tokens repeat across revisions without being unique; those runs are
/// exactly what this recovers. A coincidental repeat inside churn has no
/// surrounding run and is rejected, and — as with unique anchors — any
/// crossing among survivors means transposed content, in which case
/// **all** rescue anchors are dropped and the middle stays one exact
/// gap. The equivalence premise is the same as the unique-anchor one
/// (edits do not move surviving runs across other surviving runs), with
/// strictly stronger local evidence; the property and equivalence suites
/// enforce pair-for-pair DP equality over every edit model, rescue
/// included.
fn find_rescue_anchors(
    a_ids: &[u64],
    b_ids: &[u64],
    mid_a: Range<usize>,
    mid_b: Range<usize>,
    cfg: &AnchorConfig,
    verify_eq: &impl Fn(usize, usize) -> bool,
) -> Vec<(usize, usize)> {
    let max_freq = cfg.rescue_max_freq as usize;
    let mut occ_a: HashMap<u64, Vec<usize>> = HashMap::new();
    for i in mid_a.clone() {
        occ_a.entry(a_ids[i]).or_default().push(i);
    }
    let mut occ_b: HashMap<u64, Vec<usize>> = HashMap::new();
    for j in mid_b.clone() {
        occ_b.entry(b_ids[j]).or_default().push(j);
    }
    let mut cands: Vec<(usize, usize)> = Vec::new();
    for (id, pos_a) in &occ_a {
        if pos_a.len() < 2 || pos_a.len() > max_freq {
            continue;
        }
        let Some(pos_b) = occ_b.get(id) else { continue };
        if pos_b.len() != pos_a.len() {
            continue;
        }
        for (&i, &j) in pos_a.iter().zip(pos_b) {
            if verify_eq(i, j) {
                cands.push((i, j));
            }
        }
    }
    cands.sort_unstable();
    cands.dedup();
    // Run confirmation: count consecutive verified-identical pairs
    // through the candidate at the same relative offset.
    let pair_eq = |i: usize, j: usize| a_ids[i] == b_ids[j] && verify_eq(i, j);
    cands.retain(|&(i, j)| {
        let mut back = 0usize;
        while i > mid_a.start + back
            && j > mid_b.start + back
            && pair_eq(i - back - 1, j - back - 1)
        {
            back += 1;
        }
        let mut fwd = 0usize;
        while i + fwd + 1 < mid_a.end
            && j + fwd + 1 < mid_b.end
            && pair_eq(i + fwd + 1, j + fwd + 1)
        {
            fwd += 1;
        }
        back >= 1 && fwd >= 1 && back + fwd + 1 >= cfg.rescue_min_run
    });
    // Positional pairing can itself produce crossings when occurrence
    // order differs between sides; treat any crossing as transposition.
    let chain = longest_increasing_chain(&cands);
    if chain.len() != cands.len() {
        return Vec::new();
    }
    chain
}

/// Longest subsequence of `cands` (already sorted by first component,
/// which is strictly increasing) whose second components strictly
/// increase — patience sorting with parent pointers, `O(k log k)`.
fn longest_increasing_chain(cands: &[(usize, usize)]) -> Vec<(usize, usize)> {
    if cands.len() <= 1 {
        return cands.to_vec();
    }
    // tails[d] = index into cands of the smallest-ending chain of length
    // d+1 seen so far.
    let mut tails: Vec<usize> = Vec::new();
    let mut parent: Vec<Option<usize>> = vec![None; cands.len()];
    for (k, &(_, j)) in cands.iter().enumerate() {
        let pos = tails.partition_point(|&t| cands[t].1 < j);
        parent[k] = if pos > 0 { Some(tails[pos - 1]) } else { None };
        if pos == tails.len() {
            tails.push(k);
        } else {
            tails[pos] = k;
        }
    }
    let mut chain = Vec::with_capacity(tails.len());
    let mut cur = tails.last().copied();
    while let Some(k) = cur {
        chain.push(cands[k]);
        cur = parent[k];
    }
    chain.reverse();
    chain
}

/// Which algorithm aligned a gap (aggregated into [`AnchorStats`] and,
/// upstream, the `diff.fallback.*` observability counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GapPath {
    /// One side of the gap was empty; nothing to align.
    Empty,
    /// Dense flat memo (possibly walked by the linear-space replay, but
    /// memory is bounded by the dense memo).
    Dense,
    /// Banded (Myers-bounded) DP.
    Banded,
    /// Linear-space Hirschberg replay, unmemoized: the gap was too large
    /// for any dense memo.
    Hirschberg,
}

/// Aligns one gap, returning absolute-index pairs and the path taken.
#[allow(clippy::too_many_arguments)]
fn align_gap(
    ra: Range<usize>,
    rb: Range<usize>,
    a_ids: &[u64],
    b_ids: &[u64],
    a_unit: &[bool],
    b_unit: &[bool],
    cfg: &AnchorConfig,
    score: &impl Fn(usize, usize) -> u64,
    verify_eq: &impl Fn(usize, usize) -> bool,
) -> (Vec<(usize, usize)>, GapPath) {
    let gn = ra.len();
    let gm = rb.len();
    if gn == 0 || gm == 0 {
        return (Vec::new(), GapPath::Empty);
    }
    let cells = gn.saturating_mul(gm);

    // Banded fallback: a big gap where every token on both sides matches
    // with weight ≤ 1 is a plain equality diff; a Myers pre-pass bounds
    // the band the optimal paths can occupy, and a DP restricted to that
    // band is O((N+M)·D) with the naive backtrack's exact tie-breaks.
    if cells > cfg.myers_min_cells && ra.clone().all(|i| a_unit[i]) && rb.clone().all(|j| b_unit[j])
    {
        if let Some(pairs) = banded_unit_gap(ra.clone(), rb.clone(), a_ids, b_ids, score, verify_eq)
        {
            return (pairs, GapPath::Banded);
        }
    }

    let (gap_pairs, path) = if cells <= crate::lcs::DP_CELL_LIMIT {
        // Small enough for the full-matrix DP, which probes each cell
        // exactly once in its forward pass; only the backtrack re-probes
        // (O(gn + gm) cells of a pure score), so a memo would cost more
        // in fill and checks than the recomputation it avoids.
        let pairs = weighted_lcs(gn, gm, &|gi, gj| score(ra.start + gi, rb.start + gj));
        (pairs, GapPath::Dense)
    } else if cells <= DENSE_MEMO_CELL_LIMIT {
        // Gap DP through a flat memo keyed by gap-local indices. The
        // memo matters because the linear-space replay's recursion
        // revisits cells (a log factor) whose scoring is the expensive
        // part. The memo buffer is pooled scratch viewed as cells
        // (`u64::MAX` = unscored) so back-to-back diffs reuse the
        // allocation.
        let mut memo_buf = scratch::take_u64_buf();
        memo_buf.resize(cells, u64::MAX);
        let memo = Cell::from_mut(memo_buf.as_mut_slice()).as_slice_of_cells();
        let gscore = |gi: usize, gj: usize| {
            let c = &memo[gi * gm + gj];
            if c.get() == u64::MAX {
                c.set(score(ra.start + gi, rb.start + gj));
            }
            c.get()
        };
        let pairs = weighted_lcs(gn, gm, &gscore);
        scratch::give_u64_buf(memo_buf);
        (pairs, GapPath::Dense)
    } else {
        // Too large for any dense memo: the linear-space replay, scoring
        // cells on demand. It recomputes scores (a log factor in the
        // worst case) but keeps memory at O(gm·log gn) where the old
        // hash-map memo grew with every cell the recursion touched —
        // quadratic on exactly the inputs this path exists for.
        (
            weighted_lcs_hirschberg(gn, gm, &|gi, gj| score(ra.start + gi, rb.start + gj)),
            GapPath::Hirschberg,
        )
    };
    (
        gap_pairs
            .into_iter()
            .map(|(gi, gj)| (ra.start + gi, rb.start + gj))
            .collect(),
        path,
    )
}

/// Banded DP over an all-unit-weight gap, reproducing the full DP's
/// alignment exactly.
///
/// A Myers diff over the class ids yields `l` verified matches — a lower
/// bound on the optimum — so every maximum-weight path keeps its
/// diagonal offset `j - i` within `[-(gn - l), gm - l]`. The DP table is
/// materialized only inside that band (out-of-band neighbors treated as
/// unreachable, which can only *under*-estimate cells that lie on no
/// optimal path), and the backtrack applies the same match/up/left
/// preference as [`crate::lcs::weighted_lcs_dp`]. Any cell the naive
/// backtrack would step to satisfies an optimality equality, which
/// places it on an optimal path and therefore inside the band with an
/// exact value — so the banded walk makes identical moves. Returns
/// `None` when the band would not be materially smaller than the full
/// rectangle (the caller's plain DP is better) or on a band violation
/// (impossible if `score` is pure; checked defensively).
fn banded_unit_gap(
    ra: Range<usize>,
    rb: Range<usize>,
    a_ids: &[u64],
    b_ids: &[u64],
    score: &impl Fn(usize, usize) -> u64,
    verify_eq: &impl Fn(usize, usize) -> bool,
) -> Option<Vec<(usize, usize)>> {
    let gn = ra.len();
    let gm = rb.len();
    let proxy = myers_diff(&a_ids[ra.clone()], &b_ids[rb.clone()]);
    let l = proxy
        .iter()
        .filter(|&&(i, j)| verify_eq(ra.start + i, rb.start + j))
        .count();
    let down = gn - l; // max skipped a-tokens on an optimal path
    let up = gm - l; // max skipped b-tokens
    let width = down + up + 1;
    let band_cells = (gn + 1).checked_mul(width)?;
    if band_cells.saturating_mul(2) >= gn.saturating_mul(gm) {
        return None;
    }

    let lo = |i: usize| i.saturating_sub(down);
    let hi = |i: usize| (i + up).min(gm);
    let idx = |i: usize, j: usize| i * width + (j + down - i);

    let mut t = vec![0u64; band_cells];
    for i in 1..=gn {
        for j in lo(i)..=hi(i) {
            let mut best = 0;
            if j > lo(i) {
                best = best.max(t[idx(i, j - 1)]); // left
            }
            if j < i + up {
                best = best.max(t[idx(i - 1, j)]); // up
            }
            if j > 0 && j + down >= i {
                let w = score(ra.start + i - 1, rb.start + j - 1);
                if w > 0 {
                    best = best.max(t[idx(i - 1, j - 1)] + w); // diagonal
                }
            }
            t[idx(i, j)] = best;
        }
    }

    // Backtrack with the naive DP's exact preference order.
    let mut rev = Vec::new();
    let (mut i, mut j) = (gn, gm);
    while i > 0 && j > 0 {
        let here = t[idx(i, j)];
        let w = score(ra.start + i - 1, rb.start + j - 1);
        if w > 0 && j + down >= i && here == t[idx(i - 1, j - 1)] + w {
            rev.push((ra.start + i - 1, rb.start + j - 1));
            i -= 1;
            j -= 1;
        } else if j < i + up && here == t[idx(i - 1, j)] {
            i -= 1;
        } else if j > lo(i) {
            j -= 1;
        } else {
            // The walk left the band: only possible if `score` violated
            // its purity contract. Let the caller run the plain DP.
            return None;
        }
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::{alignment_weight, weighted_lcs_dp};

    /// Unit-weight equality scoring over id slices, with deep "verify"
    /// that trusts the ids (tests use collision-free ids).
    fn run(a: &[u64], b: &[u64], cfg: &AnchorConfig) -> (Vec<(usize, usize)>, AnchorStats) {
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let verify = |i: usize, j: usize| a[i] == b[j];
        let a_unit = vec![true; a.len()];
        let b_unit = vec![true; b.len()];
        anchored_weighted_lcs(a, b, &a_unit, &b_unit, cfg, &score, &verify)
    }

    fn dp(a: &[u64], b: &[u64]) -> Vec<(usize, usize)> {
        weighted_lcs_dp(a.len(), b.len(), &|i, j| u64::from(a[i] == b[j]))
    }

    /// Config that forces the anchored machinery on even for tiny inputs.
    fn eager() -> AnchorConfig {
        AnchorConfig {
            small_cells: 0,
            myers_min_cells: usize::MAX,
            ..AnchorConfig::default()
        }
    }

    #[test]
    fn identical_streams_trim_completely() {
        let a: Vec<u64> = (0..50).collect();
        let (pairs, stats) = run(&a, &a, &AnchorConfig::default());
        assert_eq!(pairs, (0..50).map(|k| (k, k)).collect::<Vec<_>>());
        assert_eq!(stats.suffix, 50);
        assert_eq!(stats.gap_cells, 0);
    }

    #[test]
    fn empty_inputs() {
        let (pairs, _) = run(&[], &[1, 2], &AnchorConfig::default());
        assert!(pairs.is_empty());
        let (pairs, _) = run(&[1, 2], &[], &AnchorConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn matches_dp_on_deleted_block_with_repeats() {
        // The prefix-trim counter-example from the module docs: repeated
        // separator (id 7) around a deletion. The DP pairs the *second*
        // separator; the suffix trim reproduces that, where a prefix trim
        // would have paired the first.
        let a = [7, 1, 7, 2];
        let b = [7, 2];
        let (pairs, _) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(pairs, vec![(2, 0), (3, 1)]);
    }

    #[test]
    fn matches_dp_on_inserted_block_with_repeats() {
        let a = [7, 2];
        let b = [7, 1, 7, 2];
        let (pairs, _) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(pairs, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn matches_dp_when_prefix_repeat_is_ambiguous() {
        // A distinct tail keeps the suffix trim out of the picture; the
        // DP matches the *second* 7 against b's first token, which the
        // gap machinery must reproduce (a greedy prefix trim would not).
        let a = [7, 1, 7, 2, 9];
        let b = [7, 2, 8];
        let (pairs, _) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(pairs, vec![(2, 0), (3, 1)]);
    }

    #[test]
    fn matches_dp_on_run_of_equal_tokens() {
        let a = [5, 5];
        let b = [5];
        let (pairs, _) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        let (pairs, _) = run(&b, &a, &eager());
        assert_eq!(pairs, dp(&b, &a));
    }

    #[test]
    fn anchors_decompose_a_large_middle() {
        // Unique anchor runs [40,100,41] and [42,200,43] (each confirming
        // the other's context) + churn, suffix [8, 9].
        let a = [0, 1, 10, 11, 40, 100, 41, 12, 13, 42, 200, 43, 14, 8, 9];
        let b = [0, 1, 20, 40, 100, 41, 21, 22, 42, 200, 43, 23, 24, 8, 9];
        let cfg = AnchorConfig {
            small_cells: 0,
            ..AnchorConfig::default()
        };
        let (pairs, stats) = run(&a, &b, &cfg);
        assert_eq!(pairs, dp(&a, &b));
        assert!(stats.anchors >= 2, "{stats:?}");
        assert!(
            stats.gap_cells < stats.full_cells,
            "decomposition saved no work: {stats:?}"
        );
    }

    #[test]
    fn crossing_anchors_fall_back_to_one_gap() {
        // Two unique runs transposed with their context intact; forcing
        // anchors from either run would cost weight. The crossing must be
        // detected and the middle aligned as a single (exact) gap.
        let a = [40, 100, 41, 50, 200, 51, 7];
        let b = [50, 200, 51, 40, 100, 41, 7];
        let (pairs, stats) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert!(stats.crossed_anchors > 0, "{stats:?}");
        assert_eq!(stats.anchors, 0, "{stats:?}");
    }

    #[test]
    fn weighted_anchors_match_dp_weight() {
        // Heavier "sentence" tokens (weight by id) interleaved with
        // unit "break" tokens, edit-structured.
        let a = [50, 1, 51, 1, 52, 1, 53];
        let b = [50, 1, 99, 1, 52, 1, 53];
        let w = |id: u64| if id >= 50 { id - 45 } else { 1 };
        let score = |i: usize, j: usize| if a[i] == b[j] { w(a[i]) } else { 0 };
        let verify = |i: usize, j: usize| a[i] == b[j];
        let a_unit: Vec<bool> = a.iter().map(|&x| x < 50).collect();
        let b_unit: Vec<bool> = b.iter().map(|&x| x < 50).collect();
        let (pairs, _) = anchored_weighted_lcs(&a, &b, &a_unit, &b_unit, &eager(), &score, &verify);
        let dp_pairs = weighted_lcs_dp(a.len(), b.len(), &score);
        assert_eq!(
            alignment_weight(&pairs, &score),
            alignment_weight(&dp_pairs, &score)
        );
        assert_eq!(pairs, dp_pairs);
    }

    #[test]
    fn banded_fallback_is_exact() {
        // Large all-unit gap with low-entropy churn: force the banded
        // path with a tiny threshold and demand pair-exact DP output —
        // the banded walk mirrors the naive backtrack's tie-breaks.
        let mut a: Vec<u64> = (0..200).map(|x| x % 3).collect();
        let mut b = a.clone();
        b.insert(50, 9999);
        a.insert(120, 8888);
        // Distinct heads/tails prevent trims from eating the middle.
        a.insert(0, 111);
        b.insert(0, 222);
        a.push(333);
        b.push(444);
        let cfg = AnchorConfig {
            small_cells: 0,
            myers_min_cells: 16,
            ..AnchorConfig::default()
        };
        let (pairs, _) = run(&a, &b, &cfg);
        assert_eq!(pairs, dp(&a, &b));
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let a: Vec<u64> = (0..300).map(|x| x % 17).collect();
        let mut b = a.clone();
        b.splice(40..60, [1000, 1001, 1002]);
        b.splice(200..200, (0..10).map(|x| 2000 + x));
        let serial = run(&a, &b, &eager()).0;
        for workers in [2, 4] {
            let cfg = AnchorConfig { workers, ..eager() };
            assert_eq!(run(&a, &b, &cfg).0, serial, "workers={workers}");
        }
    }

    #[test]
    fn rescue_anchors_recover_shared_runs() {
        // Replaced body (all-fresh ids on both sides) framed by a shared
        // header and footer whose tokens repeat twice per side — never
        // unique, so the old path saw zero anchors and ran one giant
        // gap. The shared structure dominates the page (as on real
        // mostly-boilerplate sites), keeping the rescue chain above the
        // density gate; the rescue must anchor inside the header/footer
        // runs and still reproduce the DP exactly.
        let header = [60u64, 61, 62, 60, 61, 62];
        let footer = [70u64, 71, 72, 70, 71, 72];
        let mut a: Vec<u64> = header.to_vec();
        a.extend(1000..1012u64);
        a.extend(footer);
        a.push(900); // distinct tails keep the suffix trim out
        let mut b: Vec<u64> = header.to_vec();
        b.extend(2000..2012u64);
        b.extend(footer);
        b.push(901);
        let (pairs, stats) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert!(stats.rescue_anchors > 0, "{stats:?}");
        assert!(
            stats.gap_cells < stats.full_cells,
            "rescue saved no work: {stats:?}"
        );
    }

    #[test]
    fn rescue_rejects_transposed_runs() {
        // Two repeated runs swap places: positional pairing crosses, so
        // every rescue anchor must be dropped and the middle aligned as
        // one exact gap.
        let run_a = [60u64, 61, 62, 60, 61, 62];
        let run_b = [70u64, 71, 72, 70, 71, 72];
        let mut a: Vec<u64> = run_a.to_vec();
        a.extend(run_b);
        a.push(900);
        let mut b: Vec<u64> = run_b.to_vec();
        b.extend(run_a);
        b.push(901);
        let (pairs, stats) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(stats.rescue_anchors, 0, "{stats:?}");
    }

    #[test]
    fn sparse_anchors_are_density_gated() {
        // The stray-survivor regime: a page replaced wholesale except for
        // one short shared run (an image tag between two <P>s). The run
        // is unique, verified, and context-confirmed — and still not
        // trustworthy, because a weighted DP can route partial matches
        // around it. The gate must withhold it and align one exact gap.
        let mut a: Vec<u64> = (1000..1030).collect();
        a.extend([5000, 5001, 5002]);
        a.extend(1030..1060);
        let mut b: Vec<u64> = (2000..2045).collect();
        b.extend([5000, 5001, 5002]);
        b.extend(2045..2060);
        let (pairs, stats) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(stats.anchors, 0, "{stats:?}");
        assert_eq!(stats.gated_anchors, 3, "{stats:?}");
        assert_eq!(stats.gaps, 1, "{stats:?}");

        // Disabling the gate forces them again (the pre-gate behavior,
        // still DP-exact on this input where the run is genuinely part
        // of the optimum).
        let cfg = AnchorConfig {
            min_density_permille: 0,
            ..eager()
        };
        let (pairs, stats) = run(&a, &b, &cfg);
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(stats.anchors, 3, "{stats:?}");
        assert_eq!(stats.gated_anchors, 0, "{stats:?}");
    }

    #[test]
    fn rescue_disabled_still_matches_dp() {
        let mut a: Vec<u64> = (0..30).map(|x| 100 + x % 3).collect();
        let mut b = a.clone();
        a.push(900);
        b.push(901);
        let cfg = AnchorConfig {
            rescue_max_freq: 0,
            ..eager()
        };
        let (pairs, stats) = run(&a, &b, &cfg);
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(stats.rescue_anchors, 0);
    }

    #[test]
    fn gap_path_stats_classify_gaps() {
        // A middle too churned to anchor runs exactly one dense gap.
        let a: Vec<u64> = (0..100).map(|x| 1000 + x).collect();
        let b: Vec<u64> = (0..100).map(|x| 2000 + x).collect();
        let (pairs, stats) = run(&a, &b, &eager());
        assert_eq!(pairs, dp(&a, &b));
        assert_eq!(stats.dense_gaps, 1, "{stats:?}");
        assert_eq!(stats.banded_gaps, 0, "{stats:?}");
        assert_eq!(stats.hirschberg_gaps, 0, "{stats:?}");
    }

    #[test]
    fn edit_structured_streams_match_dp_exactly() {
        // Deterministic pseudo-random base + edits (insert/delete/replace
        // blocks) over a *token-stream-shaped* alphabet: mostly distinct
        // high-entropy values (sentence content, which anchors key on)
        // interleaved with a handful of endlessly repeated low-entropy
        // values (breaks like <P>, which are never unique and so never
        // anchor). This is the decomposition's documented safe regime —
        // uniqueness implies identity, edits never transpose content. A
        // low-entropy alphabet breaks the premise (a coincidentally
        // unique value anchors a semantically unrelated position) and is
        // exactly what `CompareOptions::force_naive` upstream exists for.
        let mut state = 0xA5EDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut fresh = 1000u64;
        for trial in 0..40 {
            let n = 20 + next() % 60;
            let mut content = |next: &mut dyn FnMut() -> usize| {
                if next().is_multiple_of(4) {
                    (next() % 3) as u64 // a repeated "break" value
                } else {
                    fresh += 1;
                    fresh // distinct "sentence" content
                }
            };
            let a: Vec<u64> = (0..n).map(|_| content(&mut next)).collect();
            let mut b = a.clone();
            for _ in 0..1 + next() % 3 {
                let op = next() % 3;
                let at = next() % (b.len() + 1);
                let len = (next() % 6).min(b.len().saturating_sub(at));
                match op {
                    0 => {
                        let ins: Vec<u64> =
                            (0..1 + next() % 5).map(|_| content(&mut next)).collect();
                        b.splice(at..at, ins);
                    }
                    1 => {
                        b.drain(at..at + len);
                    }
                    _ => {
                        let rep: Vec<u64> =
                            (0..1 + next() % 5).map(|_| content(&mut next)).collect();
                        b.splice(at..at + len, rep);
                    }
                }
            }
            let (pairs, _) = run(&a, &b, &eager());
            assert_eq!(pairs, dp(&a, &b), "trial {trial}: a={a:?} b={b:?}");
        }
    }
}
