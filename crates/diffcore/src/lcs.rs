//! Weighted longest-common-subsequence alignment.
//!
//! The LCS problem, as the paper states it (§5.1): "find a (not
//! necessarily contiguous) common subsequence of two sequences of tokens
//! that has the longest length (or greatest weight). Tokens not in the LCS
//! represent changes." In UNIX `diff` every token has weight 1; in
//! HtmlDiff a token pair may match with a weight reflecting *how much* of
//! two sentences coincide.
//!
//! Two algorithms are provided:
//!
//! - [`weighted_lcs_dp`]: the classic full-matrix dynamic program,
//!   `O(n·m)` time **and** space. Fast and simple for small inputs. Its
//!   backtrack — prefer the diagonal, then up, then left — defines the
//!   *canonical alignment* every other path in the workspace must
//!   reproduce exactly (DESIGN.md §4e).
//! - [`weighted_lcs_hirschberg`] (in [`crate::hirschberg`]): a
//!   divide-and-conquer replay of that same backtrack in `O(m·log n)`
//!   space ([Hirschberg 1977], the paper's reference \[8\], adapted so
//!   the output is pair-for-pair identical to the DP rather than merely
//!   weight-equal), which is what makes sentence-level comparison of
//!   large documents feasible.
//!
//! [`weighted_lcs`] dispatches between them on input size.
//!
//! Scores are supplied by index, `score(i, j) -> u64`, so callers can
//! memoize expensive pairwise comparisons (HtmlDiff's inner sentence LCS)
//! or apply cheap screens (the sentence-length test) before paying for a
//! full comparison. A score of `0` means "these tokens do not match".
//!
//! DP tables and score rows come from the [`crate::scratch`] buffer
//! pool, so back-to-back diffs on one thread reuse their allocations.
//!
//! [Hirschberg 1977]: https://doi.org/10.1145/322033.322044

pub use crate::hirschberg::weighted_lcs_hirschberg;
use crate::scratch;

/// Scores a pair of tokens; `0` means no match.
///
/// Implemented for any `Fn(&A, &B) -> u64`, this is the slice-level
/// counterpart of the index-based closures the raw algorithms take.
pub trait Scorer<A: ?Sized, B: ?Sized> {
    /// Returns the match weight for `(a, b)`; `0` means no match.
    fn score(&self, a: &A, b: &B) -> u64;
}

impl<A: ?Sized, B: ?Sized, F: Fn(&A, &B) -> u64> Scorer<A, B> for F {
    fn score(&self, a: &A, b: &B) -> u64 {
        self(a, b)
    }
}

/// Size (in matrix cells) below which the full DP is used by
/// [`weighted_lcs`]. Above it, the linear-space Hirschberg replay runs.
pub const DP_CELL_LIMIT: usize = 1 << 21;

/// Computes a maximum-weight alignment of `0..n` against `0..m`.
///
/// Returns matched index pairs, strictly increasing in both components.
/// Dispatches to [`weighted_lcs_dp`] for small inputs and
/// [`weighted_lcs_hirschberg`] for large ones; the two produce identical
/// pairs, so the dispatch threshold is invisible in the output.
///
/// # Examples
///
/// ```
/// use aide_diffcore::lcs::weighted_lcs;
///
/// let a = ["the", "quick", "fox"];
/// let b = ["the", "slow", "fox"];
/// let pairs = weighted_lcs(a.len(), b.len(), &|i, j| u64::from(a[i] == b[j]));
/// assert_eq!(pairs, vec![(0, 0), (2, 2)]);
/// ```
pub fn weighted_lcs(
    n: usize,
    m: usize,
    score: &impl Fn(usize, usize) -> u64,
) -> Vec<(usize, usize)> {
    if n == 0 || m == 0 {
        return Vec::new();
    }
    if n.saturating_mul(m) <= DP_CELL_LIMIT {
        weighted_lcs_dp(n, m, score)
    } else {
        weighted_lcs_hirschberg(n, m, score)
    }
}

/// Convenience wrapper: maximum-weight alignment of two slices under a
/// [`Scorer`].
pub fn weighted_lcs_slices<A, B, S: Scorer<A, B>>(
    a: &[A],
    b: &[B],
    scorer: &S,
) -> Vec<(usize, usize)> {
    weighted_lcs(a.len(), b.len(), &|i, j| scorer.score(&a[i], &b[j]))
}

/// Full-matrix weighted LCS: `O(n·m)` time and space.
pub fn weighted_lcs_dp(
    n: usize,
    m: usize,
    score: &impl Fn(usize, usize) -> u64,
) -> Vec<(usize, usize)> {
    // table[i][j] = best weight aligning a[..i] with b[..j].
    let width = m + 1;
    let mut table = scratch::take_u64_buf();
    table.resize((n + 1) * width, 0);
    for i in 1..=n {
        for j in 1..=m {
            let up = table[(i - 1) * width + j];
            let left = table[i * width + (j - 1)];
            let mut best = up.max(left);
            let w = score(i - 1, j - 1);
            if w > 0 {
                best = best.max(table[(i - 1) * width + (j - 1)] + w);
            }
            table[i * width + j] = best;
        }
    }
    // Backtrack, preferring matches so the alignment is deterministic.
    let mut pairs = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        let here = table[i * width + j];
        let w = score(i - 1, j - 1);
        if w > 0 && here == table[(i - 1) * width + (j - 1)] + w {
            pairs.push((i - 1, j - 1));
            i -= 1;
            j -= 1;
        } else if here == table[(i - 1) * width + j] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    scratch::give_u64_buf(table);
    pairs.reverse();
    pairs
}

/// Plain equality LCS over two slices (every match has weight 1).
pub fn lcs_pairs<T: PartialEq>(a: &[T], b: &[T]) -> Vec<(usize, usize)> {
    weighted_lcs(a.len(), b.len(), &|i, j| u64::from(a[i] == b[j]))
}

/// Total weight of an alignment under `score`.
pub fn alignment_weight(pairs: &[(usize, usize)], score: &impl Fn(usize, usize) -> u64) -> u64 {
    pairs.iter().map(|&(i, j)| score(i, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq_score<'a, T: PartialEq>(a: &'a [T], b: &'a [T]) -> impl Fn(usize, usize) -> u64 + 'a {
        move |i, j| u64::from(a[i] == b[j])
    }

    fn check_valid(pairs: &[(usize, usize)], n: usize, m: usize) {
        let mut last: Option<(usize, usize)> = None;
        for &(i, j) in pairs {
            assert!(i < n && j < m, "pair ({i},{j}) out of range");
            if let Some((pi, pj)) = last {
                assert!(i > pi && j > pj, "pairs not strictly increasing");
            }
            last = Some((i, j));
        }
    }

    #[test]
    fn classic_string_lcs() {
        let a: Vec<char> = "ABCBDAB".chars().collect();
        let b: Vec<char> = "BDCABA".chars().collect();
        let pairs = lcs_pairs(&a, &b);
        check_valid(&pairs, a.len(), b.len());
        assert_eq!(pairs.len(), 4, "LCS of ABCBDAB/BDCABA has length 4");
        let common: String = pairs.iter().map(|&(i, _)| a[i]).collect();
        assert!(
            ["BCAB", "BCBA", "BDAB"].contains(&common.as_str()),
            "got {common}"
        );
    }

    #[test]
    fn identical_sequences_align_fully() {
        let a = [1, 2, 3, 4, 5];
        let pairs = lcs_pairs(&a, &a);
        assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]);
    }

    #[test]
    fn disjoint_sequences_have_empty_lcs() {
        let a = [1, 2, 3];
        let b = [4, 5, 6];
        assert!(lcs_pairs(&a, &b).is_empty());
    }

    #[test]
    fn empty_inputs() {
        let a: [i32; 0] = [];
        let b = [1, 2];
        assert!(lcs_pairs(&a, &b).is_empty());
        assert!(lcs_pairs(&b, &a).is_empty());
        assert!(lcs_pairs(&a, &a).is_empty());
    }

    #[test]
    fn weights_prefer_heavy_match() {
        // a[0] could match b[0] (weight 1) or b[1] (weight 10); choosing
        // b[1] blocks b[0] for later tokens, and is still optimal.
        let score = |i: usize, j: usize| -> u64 {
            match (i, j) {
                (0, 0) => 1,
                (0, 1) => 10,
                _ => 0,
            }
        };
        let pairs = weighted_lcs_dp(1, 2, &score);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn weighted_chain_beats_single_heavy() {
        // Two weight-3 matches in sequence beat one weight-5 match that
        // would cross them.
        let score = |i: usize, j: usize| -> u64 {
            match (i, j) {
                (0, 0) => 3,
                (1, 1) => 3,
                (0, 1) => 5,
                _ => 0,
            }
        };
        let pairs = weighted_lcs_dp(2, 2, &score);
        assert_eq!(pairs, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn hirschberg_matches_dp_pairs_on_random_inputs() {
        // Deterministic pseudo-random sequences over a small alphabet.
        // Pair equality, not just weight equality: the linear-space path
        // must reproduce the canonical backtrack exactly.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..30 {
            let n = 1 + next() % 40;
            let m = 1 + next() % 40;
            let a: Vec<usize> = (0..n).map(|_| next() % 5).collect();
            let b: Vec<usize> = (0..m).map(|_| next() % 5).collect();
            let score = eq_score(&a, &b);
            let dp = weighted_lcs_dp(n, m, &score);
            let hi = weighted_lcs_hirschberg(n, m, &score);
            check_valid(&dp, n, m);
            assert_eq!(hi, dp, "trial {trial}: dp and hirschberg pairs differ");
        }
    }

    #[test]
    fn hirschberg_matches_dp_pairs_with_weights() {
        let mut state = 99u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..20 {
            let n = 1 + next() % 25;
            let m = 1 + next() % 25;
            let weights: Vec<Vec<u64>> = (0..n)
                .map(|_| (0..m).map(|_| (next() % 4) as u64).collect())
                .collect();
            let score = |i: usize, j: usize| weights[i][j];
            let dp = weighted_lcs_dp(n, m, &score);
            let hi = weighted_lcs_hirschberg(n, m, &score);
            assert_eq!(hi, dp);
        }
    }

    #[test]
    fn dispatcher_handles_both_regimes() {
        let a: Vec<u32> = (0..10).collect();
        let b: Vec<u32> = (5..15).collect();
        let pairs = weighted_lcs(a.len(), b.len(), &eq_score(&a, &b));
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0], (5, 0));
    }

    #[test]
    fn single_row_base_case_picks_dp_choice() {
        let score = |_i: usize, j: usize| [2u64, 7, 3][j];
        let pairs = weighted_lcs_hirschberg(1, 3, &score);
        assert_eq!(pairs, weighted_lcs_dp(1, 3, &score));
    }

    #[test]
    fn single_row_no_match_yields_empty() {
        let pairs = weighted_lcs_hirschberg(1, 3, &|_, _| 0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn zero_scores_never_pair() {
        // Even when everything has score 0, no pairs may be emitted.
        let pairs = weighted_lcs_dp(5, 5, &|_, _| 0);
        assert!(pairs.is_empty());
        let pairs = weighted_lcs_hirschberg(5, 5, &|_, _| 0);
        assert!(pairs.is_empty());
    }

    #[test]
    fn slices_wrapper() {
        let a = ["x", "y", "z"];
        let b = ["y", "z", "w"];
        let pairs = weighted_lcs_slices(&a, &b, &|x: &&str, y: &&str| u64::from(x == y));
        assert_eq!(pairs, vec![(1, 0), (2, 1)]);
    }
}
