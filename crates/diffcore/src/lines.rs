//! Line-oriented diffing: the UNIX `diff` model.
//!
//! "Line-based comparison utilities such as UNIX diff clearly are
//! ill-suited to the comparison of structured documents such as HTML"
//! (§2.3) — but they are exactly right for RCS deltas, and they are the
//! baseline HtmlDiff is evaluated against. This module compares two texts
//! line by line (interning lines, trimming common prefix/suffix, then
//! Myers), and renders the result as a unified diff or a classic `ed`
//! script.

use crate::intern::Interner;
use crate::myers::myers_diff;
use crate::script::{Alignment, EditOp};
use aide_util::lines::split_keep_newlines;

/// The result of comparing two texts line by line.
#[derive(Debug, Clone)]
pub struct LineDiff {
    /// Old text split into lines (newlines retained).
    pub old_lines: Vec<String>,
    /// New text split into lines (newlines retained).
    pub new_lines: Vec<String>,
    /// Alignment between the two line sequences.
    pub alignment: Alignment,
}

/// Compares two texts line by line.
///
/// # Examples
///
/// ```
/// use aide_diffcore::lines::diff_lines;
///
/// let d = diff_lines("a\nb\nc\n", "a\nx\nc\n");
/// assert_eq!(d.alignment.edit_distance(), 2); // one line replaced
/// assert!(!d.is_identical());
/// ```
pub fn diff_lines(old: &str, new: &str) -> LineDiff {
    let old_lines: Vec<String> = split_keep_newlines(old)
        .into_iter()
        .map(str::to_string)
        .collect();
    let new_lines: Vec<String> = split_keep_newlines(new)
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut interner = Interner::new();
    let ia: Vec<u32> = old_lines
        .iter()
        .map(|l| interner.intern(l.clone()))
        .collect();
    let ib: Vec<u32> = new_lines
        .iter()
        .map(|l| interner.intern(l.clone()))
        .collect();
    let pairs = myers_diff(&ia, &ib);
    let alignment = Alignment::new(pairs, ia.len(), ib.len());
    LineDiff {
        old_lines,
        new_lines,
        alignment,
    }
}

impl LineDiff {
    /// True if the two texts are identical.
    pub fn is_identical(&self) -> bool {
        self.alignment.is_identity()
    }

    /// Number of lines only in the old text.
    pub fn deleted_lines(&self) -> usize {
        self.alignment.script().deleted()
    }

    /// Number of lines only in the new text.
    pub fn inserted_lines(&self) -> usize {
        self.alignment.script().inserted()
    }

    /// Renders a unified diff (`diff -u` style) with `context` lines of
    /// context around each hunk. Headers name the two sides.
    pub fn unified(&self, old_name: &str, new_name: &str, context: usize) -> String {
        if self.is_identical() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str(&format!("--- {old_name}\n+++ {new_name}\n"));
        for h in self.alignment.hunks(context) {
            out.push_str(&format!(
                "@@ -{},{} +{},{} @@\n",
                if h.a_len == 0 {
                    h.a_start
                } else {
                    h.a_start + 1
                },
                h.a_len,
                if h.b_len == 0 {
                    h.b_start
                } else {
                    h.b_start + 1
                },
                h.b_len
            ));
            for op in &h.ops {
                match *op {
                    EditOp::Equal { a_start, len, .. } => {
                        for line in &self.old_lines[a_start..a_start + len] {
                            out.push(' ');
                            push_line(&mut out, line);
                        }
                    }
                    EditOp::Delete { a_start, len, .. } => {
                        for line in &self.old_lines[a_start..a_start + len] {
                            out.push('-');
                            push_line(&mut out, line);
                        }
                    }
                    EditOp::Insert { b_start, len, .. } => {
                        for line in &self.new_lines[b_start..b_start + len] {
                            out.push('+');
                            push_line(&mut out, line);
                        }
                    }
                }
            }
        }
        out
    }

    /// Renders a classic `ed`-style script (`diff -e` reversed order is
    /// not used here; commands appear in forward order as `diff` prints
    /// them: `<a>c<b>`, `<a>d`, `<a>a`).
    pub fn classic(&self) -> String {
        let mut out = String::new();
        let script = self.alignment.script();
        let mut k = 0;
        while k < script.ops.len() {
            match script.ops[k] {
                EditOp::Equal { .. } => {
                    k += 1;
                }
                EditOp::Delete {
                    a_start,
                    len,
                    b_pos,
                } => {
                    // A delete followed immediately by an insert is a change.
                    if let Some(EditOp::Insert {
                        b_start, len: ilen, ..
                    }) = script.ops.get(k + 1).copied()
                    {
                        out.push_str(&format!(
                            "{}c{}\n",
                            range(a_start, len),
                            range(b_start, ilen)
                        ));
                        for line in &self.old_lines[a_start..a_start + len] {
                            out.push_str("< ");
                            push_line(&mut out, line);
                        }
                        out.push_str("---\n");
                        for line in &self.new_lines[b_start..b_start + ilen] {
                            out.push_str("> ");
                            push_line(&mut out, line);
                        }
                        k += 2;
                    } else {
                        out.push_str(&format!("{}d{}\n", range(a_start, len), b_pos));
                        for line in &self.old_lines[a_start..a_start + len] {
                            out.push_str("< ");
                            push_line(&mut out, line);
                        }
                        k += 1;
                    }
                }
                EditOp::Insert {
                    a_pos,
                    b_start,
                    len,
                } => {
                    out.push_str(&format!("{}a{}\n", a_pos, range(b_start, len)));
                    for line in &self.new_lines[b_start..b_start + len] {
                        out.push_str("> ");
                        push_line(&mut out, line);
                    }
                    k += 1;
                }
            }
        }
        out
    }
}

fn range(start: usize, len: usize) -> String {
    if len == 1 {
        format!("{}", start + 1)
    } else {
        format!("{},{}", start + 1, start + len)
    }
}

fn push_line(out: &mut String, line: &str) {
    out.push_str(line);
    if !line.ends_with('\n') {
        out.push('\n');
        out.push_str("\\ No newline at end of file\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_produce_empty_unified() {
        let d = diff_lines("a\nb\n", "a\nb\n");
        assert!(d.is_identical());
        assert_eq!(d.unified("old", "new", 3), "");
    }

    #[test]
    fn simple_replacement_unified() {
        let d = diff_lines("one\ntwo\nthree\n", "one\nTWO\nthree\n");
        let u = d.unified("a.html", "b.html", 1);
        assert!(u.contains("--- a.html"));
        assert!(u.contains("+++ b.html"));
        assert!(u.contains("-two"));
        assert!(u.contains("+TWO"));
        assert!(u.contains(" one"));
        assert!(u.contains(" three"));
    }

    #[test]
    fn counts() {
        let d = diff_lines("a\nb\nc\n", "a\nc\nd\ne\n");
        assert_eq!(d.deleted_lines(), 1);
        assert_eq!(d.inserted_lines(), 2);
    }

    #[test]
    fn classic_change_command() {
        let d = diff_lines("a\nb\nc\n", "a\nB\nc\n");
        let c = d.classic();
        assert!(c.starts_with("2c2\n"), "got: {c}");
        assert!(c.contains("< b"));
        assert!(c.contains("> B"));
    }

    #[test]
    fn classic_delete_and_append() {
        let d = diff_lines("a\nb\nc\n", "a\nc\nd\n");
        let c = d.classic();
        assert!(c.contains("2d1\n"), "delete line 2: {c}");
        assert!(c.contains("3a3\n"), "append after 3: {c}");
    }

    #[test]
    fn missing_trailing_newline_flagged() {
        let d = diff_lines("a\nb", "a\nc");
        let u = d.unified("x", "y", 0);
        assert!(u.contains("\\ No newline at end of file"), "got: {u}");
    }

    #[test]
    fn empty_to_content() {
        let d = diff_lines("", "x\ny\n");
        assert_eq!(d.inserted_lines(), 2);
        assert_eq!(d.deleted_lines(), 0);
        let c = d.classic();
        assert!(c.starts_with("0a1,2\n"), "got: {c}");
    }

    #[test]
    fn content_to_empty() {
        let d = diff_lines("x\ny\n", "");
        assert_eq!(d.deleted_lines(), 2);
        let c = d.classic();
        assert!(c.starts_with("1,2d0\n"), "got: {c}");
    }

    #[test]
    fn whole_text_reconstructable_from_alignment() {
        let old = "alpha\nbeta\ngamma\ndelta\n";
        let new = "alpha\nGAMMA\ngamma\nepsilon\n";
        let d = diff_lines(old, new);
        // Replaying the script over old_lines must yield new text.
        let script = d.alignment.script();
        let mut rebuilt = String::new();
        for op in &script.ops {
            match *op {
                EditOp::Equal { a_start, len, .. } => {
                    for l in &d.old_lines[a_start..a_start + len] {
                        rebuilt.push_str(l);
                    }
                }
                EditOp::Delete { .. } => {}
                EditOp::Insert { b_start, len, .. } => {
                    for l in &d.new_lines[b_start..b_start + len] {
                        rebuilt.push_str(l);
                    }
                }
            }
        }
        assert_eq!(rebuilt, new);
    }
}
