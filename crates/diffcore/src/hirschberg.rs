//! Linear-space weighted LCS that reproduces the full DP *pair for
//! pair*, tie-breaks included.
//!
//! Hirschberg's classic divide-and-conquer ([Hirschberg 1977], the
//! paper's reference \[8\]) finds *a* maximum-weight alignment in
//! `O(n+m)` space by splitting on a middle row and choosing the crossing
//! column where forward + backward scores peak. Any such alignment has
//! optimal weight, but which one you get depends on how score ties are
//! split — and this codebase's equivalence contract (DESIGN.md §4e) is
//! stronger than weight equality: every fast path must emit the *exact*
//! pair sequence of [`crate::lcs::weighted_lcs_dp`]'s canonical
//! backtrack (prefer diagonal, then up, then left). The classic
//! midpoint rule does not, so it cannot serve as the big-input fallback.
//!
//! This module keeps the divide-and-conquer shape but replays the
//! canonical backtrack itself:
//!
//! 1. Rows of the DP table are recomputed front-to-back with a single
//!    rolling row (`O(m)` space), exactly as `weighted_lcs_dp` fills
//!    its table — the values are identical because the recurrence is.
//! 2. To backtrack without the table, recurse on rows: materialize the
//!    middle row `T[mid][·]` from the current checkpoint row, replay the
//!    backtrack through the *upper* half first, and observe the column
//!    `j_mid` at which the walk crosses row `mid`. That column is exact,
//!    not estimated: the walk above it made every decision against true
//!    table values. Then recurse on the lower half from `(mid, j_mid)`.
//! 3. A height-one strip walks left through the row making the canonical
//!    diagonal/up/left decisions against the two exact rows it holds.
//!
//! Every decision the replay makes consults true `T` values, so the
//! emitted pairs are the canonical backtrack's by construction — the
//! unit suite asserts byte-for-byte equality against `weighted_lcs_dp`
//! on randomized weighted inputs, and the diffcore property suite keeps
//! it honest on every run.
//!
//! Cost: one checkpoint row lives per recursion level — `O(m · log n)`
//! space with pooled buffers (see [`crate::scratch`]), against the dense
//! table's `O(n·m)`. Time is `O(n·m)` per level in the worst case,
//! `O(n·m·log n)` total, though the column range shrinks at every
//! lower-half step so the observed constant is small. The dispatch in
//! [`crate::lcs::weighted_lcs`] only routes inputs here when the dense
//! table would be unacceptably large, where trading a log factor of
//! recomputation for `>1000×` less memory is the right side of the
//! bargain.
//!
//! [Hirschberg 1977]: https://doi.org/10.1145/322033.322044

use crate::scratch;

/// Linear-space weighted LCS, pair-identical to
/// [`crate::lcs::weighted_lcs_dp`].
///
/// Returns matched index pairs, strictly increasing in both components,
/// in exactly the order and composition the full-table DP's canonical
/// backtrack would produce.
///
/// # Examples
///
/// ```
/// use aide_diffcore::hirschberg::weighted_lcs_hirschberg;
/// use aide_diffcore::lcs::weighted_lcs_dp;
///
/// let a = [7u64, 1, 7, 2];
/// let b = [7u64, 2];
/// let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
/// let hi = weighted_lcs_hirschberg(a.len(), b.len(), &score);
/// assert_eq!(hi, weighted_lcs_dp(a.len(), b.len(), &score));
/// assert_eq!(hi, vec![(2, 0), (3, 1)]);
/// ```
pub fn weighted_lcs_hirschberg(
    n: usize,
    m: usize,
    score: &impl Fn(usize, usize) -> u64,
) -> Vec<(usize, usize)> {
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let mut row0 = scratch::take_u64_buf();
    row0.resize(m + 1, 0);
    // Pairs are emitted in backtrack order (descending); reverse at the
    // end, exactly as the dense DP does.
    let mut out = Vec::new();
    replay(0, n, m, &row0, score, &mut out);
    scratch::give_u64_buf(row0);
    out.reverse();
    out
}

/// Rolls the canonical DP rows forward in place: on entry `row` holds
/// `T[a_lo][0..=j_end]`, on exit `T[a_hi][0..=j_end]`. Identical
/// recurrence to `weighted_lcs_dp` (values in column `j` never depend on
/// columns `> j`, so truncating at `j_end` is exact).
fn roll_rows(
    a_lo: usize,
    a_hi: usize,
    j_end: usize,
    score: &impl Fn(usize, usize) -> u64,
    row: &mut [u64],
) {
    for i in a_lo..a_hi {
        let mut diag = row[0];
        for j in 1..=j_end {
            let up = row[j];
            let mut best = up.max(row[j - 1]);
            let w = score(i, j - 1);
            if w > 0 {
                best = best.max(diag + w);
            }
            diag = up;
            row[j] = best;
        }
    }
}

/// Replays the canonical backtrack through rows `i0..i1`, entering at
/// column `j_end` on row `i1` with `row_i0` holding the exact
/// `T[i0][0..=j_end]`. Emits pairs in descending order and returns the
/// column at which the walk crosses row `i0` (0 once the walk has
/// terminated against the left edge).
fn replay(
    i0: usize,
    i1: usize,
    j_end: usize,
    row_i0: &[u64],
    score: &impl Fn(usize, usize) -> u64,
    out: &mut Vec<(usize, usize)>,
) -> usize {
    if j_end == 0 || i1 <= i0 {
        // The canonical backtrack stops at either edge.
        return j_end;
    }
    if i1 == i0 + 1 {
        let mut row_hi = scratch::take_u64_buf();
        row_hi.extend_from_slice(&row_i0[..=j_end]);
        roll_rows(i0, i1, j_end, score, &mut row_hi);
        let crossing = walk_strip(i0, row_i0, &row_hi, j_end, score, out);
        scratch::give_u64_buf(row_hi);
        return crossing;
    }
    let mid = i0 + (i1 - i0) / 2;
    let mut row_mid = scratch::take_u64_buf();
    row_mid.extend_from_slice(&row_i0[..=j_end]);
    roll_rows(i0, mid, j_end, score, &mut row_mid);
    let j_mid = replay(mid, i1, j_end, &row_mid, score, out);
    scratch::give_u64_buf(row_mid);
    replay(i0, mid, j_mid, row_i0, score, out)
}

/// The height-one base case: the canonical backtrack confined to row
/// `i0 + 1`, walking left from column `j` until it takes a diagonal or
/// up step into row `i0` (returning the crossing column) or exhausts the
/// row (returning 0). `row_lo`/`row_hi` hold exact `T[i0][·]` /
/// `T[i0+1][·]` values, so each comparison is the one the dense
/// backtrack performs.
fn walk_strip(
    i0: usize,
    row_lo: &[u64],
    row_hi: &[u64],
    mut j: usize,
    score: &impl Fn(usize, usize) -> u64,
    out: &mut Vec<(usize, usize)>,
) -> usize {
    while j > 0 {
        let here = row_hi[j];
        let w = score(i0, j - 1);
        if w > 0 && here == row_lo[j - 1] + w {
            out.push((i0, j - 1));
            return j - 1;
        }
        if here == row_lo[j] {
            return j;
        }
        j -= 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::weighted_lcs_dp;

    fn check_identical(n: usize, m: usize, score: &impl Fn(usize, usize) -> u64, tag: &str) {
        let dp = weighted_lcs_dp(n, m, score);
        let hi = weighted_lcs_hirschberg(n, m, score);
        assert_eq!(hi, dp, "{tag}: hirschberg diverged from the dense DP");
    }

    #[test]
    fn empty_and_degenerate() {
        assert!(weighted_lcs_hirschberg(0, 5, &|_, _| 1).is_empty());
        assert!(weighted_lcs_hirschberg(5, 0, &|_, _| 1).is_empty());
        check_identical(1, 1, &|_, _| 1, "1x1 match");
        check_identical(1, 1, &|_, _| 0, "1x1 mismatch");
        check_identical(1, 7, &|_, j| [2u64, 7, 3, 7, 1, 0, 7][j], "single row ties");
        check_identical(
            7,
            1,
            &|i, _| [0u64, 3, 3, 1, 3, 0, 2][i],
            "single column ties",
        );
    }

    #[test]
    fn zero_scores_emit_nothing() {
        assert!(weighted_lcs_hirschberg(9, 9, &|_, _| 0).is_empty());
    }

    #[test]
    fn all_identical_tokens_tiebreak_like_dp() {
        // Every cell matches with equal weight: tie-break torture. The
        // dense backtrack has one canonical answer; the replay must
        // reproduce it exactly.
        for (n, m) in [(3, 3), (2, 6), (6, 2), (8, 5)] {
            check_identical(n, m, &|_, _| 1, "uniform ones");
            check_identical(n, m, &|_, _| 4, "uniform fours");
        }
    }

    #[test]
    fn prefix_repeat_counter_example() {
        // [7,1,7,2] vs [7,2]: the canonical backtrack pairs the *second*
        // 7 — the case that broke greedy prefix trimming must not break
        // the replay either.
        let a = [7u64, 1, 7, 2];
        let b = [7u64, 2];
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let hi = weighted_lcs_hirschberg(a.len(), b.len(), &score);
        assert_eq!(hi, vec![(2, 0), (3, 1)]);
        check_identical(a.len(), b.len(), &score, "prefix repeat");
    }

    #[test]
    fn randomized_equality_scores_match_dp_pairs() {
        let mut state = 0x5EED_CAFEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..60 {
            let n = 1 + next() % 50;
            let m = 1 + next() % 50;
            let a: Vec<usize> = (0..n).map(|_| next() % 4).collect();
            let b: Vec<usize> = (0..m).map(|_| next() % 4).collect();
            let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
            check_identical(n, m, &score, &format!("eq trial {trial}"));
        }
    }

    #[test]
    fn randomized_weighted_scores_match_dp_pairs() {
        let mut state = 0xD1CEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for trial in 0..60 {
            let n = 1 + next() % 30;
            let m = 1 + next() % 30;
            // Dense weight matrices with many ties (small alphabet of
            // weights, lots of zeros) stress every backtrack branch.
            let weights: Vec<u64> = (0..n * m).map(|_| (next() % 5) as u64).collect();
            let score = |i: usize, j: usize| weights[i * m + j];
            check_identical(n, m, &score, &format!("weighted trial {trial}"));
        }
    }

    #[test]
    fn long_thin_and_square_shapes() {
        let a: Vec<u64> = (0..500).map(|x| x % 7).collect();
        let b: Vec<u64> = (0..40).map(|x| (x * 3) % 7).collect();
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        check_identical(a.len(), b.len(), &score, "long x thin");
        check_identical(b.len(), a.len(), &|i, j| score(j, i), "thin x long");
    }
}
