//! Sequence-comparison substrate for the AIDE reproduction.
//!
//! The paper's HtmlDiff (§5) "appl\[ies\] Hirschberg's solution to the
//! longest common subsequence (LCS) problem (with several speed
//! optimizations)... the well-known comparison algorithm used by the UNIX
//! diff utility". RCS likewise stores reverse line deltas computed by
//! `diff`. This crate provides everything both need:
//!
//! - [`lcs`]: weighted longest-common-subsequence alignment — a full-matrix
//!   dynamic program for small inputs and Hirschberg's linear-space
//!   divide-and-conquer for large ones. Weights are what distinguish the
//!   paper's algorithm from plain diff: a pair of *sentences* can match
//!   partially, with weight equal to the number of common words.
//! - [`hirschberg`]: the linear-space divide-and-conquer fallback — a
//!   replay of the full DP's canonical backtrack in `O(m·log n)` space,
//!   pair-for-pair identical to [`lcs::weighted_lcs_dp`].
//! - [`anchor`]: anchored decomposition of the weighted LCS — trim the
//!   common suffix, split the middle at verified unique-hash anchor
//!   tokens (patience-style, rescued by rare-hash runs when unique
//!   anchors die), and align only the gaps with the same canonical
//!   backtrack, so the result is pair-for-pair identical to the full DP
//!   on edit-structured inputs.
//! - [`scratch`]: per-thread buffer pools reused across diffs (DP
//!   tables, score rows, token arenas).
//! - [`myers`]: the Myers `O((N+M)D)` greedy diff for plain equality
//!   comparison, used on the line-diff fast path.
//! - [`intern`]: token interning so line comparison is integer comparison.
//! - [`script`]: edit scripts, hunks, and alignment bookkeeping shared by
//!   consumers.
//! - [`lines`]: line-oriented diffing (the UNIX `diff` baseline the paper
//!   calls "clearly ill-suited to the comparison of structured documents"),
//!   with unified and ed-script output.
//! - [`metrics`]: similarity ratios such as the paper's `2W/L` test.

pub mod anchor;
pub mod hirschberg;
pub mod intern;
pub mod lcs;
pub mod lines;
pub mod metrics;
pub mod myers;
pub mod scratch;
pub mod script;

pub use anchor::{anchored_weighted_lcs, AnchorConfig, AnchorStats};
pub use hirschberg::weighted_lcs_hirschberg;
pub use intern::Interner;
pub use lcs::{weighted_lcs, weighted_lcs_dp, Scorer};
pub use lines::{diff_lines, LineDiff};
pub use metrics::{lcs_ratio, similarity};
pub use myers::myers_diff;
pub use scratch::DiffScratch;
pub use script::{Alignment, EditOp, EditScript, Hunk};
