//! Similarity metrics over alignments and sequences.
//!
//! HtmlDiff's sentence matcher (§5.1) accepts a pair of sentences when the
//! percentage `2W / L` is "sufficiently large", where `W` is the weight of
//! the sentences' LCS and `L` the sum of their lengths. [`lcs_ratio`]
//! computes exactly that quantity; [`similarity`] is the slice-level
//! convenience used by tests and the diff-quality experiments.

use crate::lcs::lcs_pairs;

/// The paper's `2W / L` ratio.
///
/// `weight` is the LCS weight `W`; `len_a + len_b` is `L`. Returns a value
/// in `[0, 1]`; `1.0` for two empty sequences (identical by convention).
///
/// # Examples
///
/// ```
/// use aide_diffcore::metrics::lcs_ratio;
///
/// assert_eq!(lcs_ratio(3, 3, 3), 1.0);
/// assert_eq!(lcs_ratio(0, 4, 4), 0.0);
/// assert_eq!(lcs_ratio(2, 4, 4), 0.5);
/// ```
pub fn lcs_ratio(weight: u64, len_a: usize, len_b: usize) -> f64 {
    let l = (len_a + len_b) as f64;
    if l == 0.0 {
        return 1.0;
    }
    (2.0 * weight as f64) / l
}

/// Similarity of two slices under equality matching: `2·|LCS| / (|a|+|b|)`.
pub fn similarity<T: PartialEq>(a: &[T], b: &[T]) -> f64 {
    let w = lcs_pairs(a, b).len() as u64;
    lcs_ratio(w, a.len(), b.len())
}

/// Jaccard similarity of two token multisets (order-insensitive), used by
/// the diff-quality experiment as a sanity cross-check.
pub fn jaccard<T: PartialEq + Clone>(a: &[T], b: &[T]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut b_pool: Vec<Option<&T>> = b.iter().map(Some).collect();
    let mut inter = 0usize;
    for x in a {
        if let Some(slot) = b_pool
            .iter_mut()
            .find(|s| s.map(|y| y == x).unwrap_or(false))
        {
            *slot = None;
            inter += 1;
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_have_similarity_one() {
        let a = ["w", "x", "y"];
        assert_eq!(similarity(&a, &a), 1.0);
    }

    #[test]
    fn disjoint_slices_have_similarity_zero() {
        assert_eq!(similarity(&[1, 2], &[3, 4]), 0.0);
    }

    #[test]
    fn empty_slices_are_identical() {
        let e: [u8; 0] = [];
        assert_eq!(similarity(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &e), 1.0);
    }

    #[test]
    fn half_overlap() {
        // LCS of [1,2] and [1,3] is [1]; ratio = 2*1/4 = 0.5.
        assert_eq!(similarity(&[1, 2], &[1, 3]), 0.5);
    }

    #[test]
    fn ratio_is_order_sensitive_jaccard_is_not() {
        let a = [1, 2, 3, 4];
        let b = [4, 3, 2, 1];
        assert!(similarity(&a, &b) < 1.0);
        assert_eq!(jaccard(&a, &b), 1.0);
    }

    #[test]
    fn jaccard_counts_multiplicity() {
        let a = [1, 1, 2];
        let b = [1, 2, 2];
        // Intersection {1,2} = 2, union = 4.
        assert_eq!(jaccard(&a, &b), 0.5);
    }

    #[test]
    fn ratio_bounds() {
        for (w, la, lb) in [(0u64, 5usize, 5usize), (5, 5, 5), (3, 4, 6)] {
            let r = lcs_ratio(w, la, lb);
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
