//! Token interning: map arbitrary hashable tokens to dense `u32` ids.
//!
//! Diffing lines (or words) by string comparison is quadratic in practice;
//! both UNIX `diff` and RCS first hash lines so the inner loops compare
//! integers. The [`Interner`] assigns each distinct token a dense id, which
//! also lets [`crate::myers`] work over plain `&[u32]`.

use std::collections::HashMap;
use std::hash::Hash;

/// Assigns dense `u32` ids to distinct tokens.
///
/// # Examples
///
/// ```
/// use aide_diffcore::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("alpha");
/// let b = interner.intern("beta");
/// let a2 = interner.intern("alpha");
/// assert_eq!(a, a2);
/// assert_ne!(a, b);
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner<T: Hash + Eq + Clone> {
    map: HashMap<T, u32>,
}

impl<T: Hash + Eq + Clone> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            map: HashMap::new(),
        }
    }

    /// Returns the id for `token`, assigning a fresh one if unseen.
    pub fn intern(&mut self, token: T) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(token).or_insert(next)
    }

    /// Interns every element of `seq`, preserving order.
    pub fn intern_seq(&mut self, seq: impl IntoIterator<Item = T>) -> Vec<u32> {
        seq.into_iter().map(|t| self.intern(t)).collect()
    }

    /// Returns the id for `token` if it has been interned.
    pub fn get(&self, token: &T) -> Option<u32> {
        self.map.get(token).copied()
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no tokens have been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Interns two sequences with a shared table, so equal tokens across the
/// two sides receive equal ids.
pub fn intern_pair<T: Hash + Eq + Clone>(a: &[T], b: &[T]) -> (Vec<u32>, Vec<u32>) {
    let mut interner = Interner::new();
    let ia = a.iter().map(|t| interner.intern(t.clone())).collect();
    let ib = b.iter().map(|t| interner.intern(t.clone())).collect();
    (ia, ib)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i = Interner::new();
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("y"), 1);
        assert_eq!(i.intern("x"), 0);
        assert_eq!(i.intern("z"), 2);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn get_without_insert() {
        let mut i = Interner::new();
        i.intern("present");
        assert_eq!(i.get(&"present"), Some(0));
        assert_eq!(i.get(&"absent"), None);
    }

    #[test]
    fn pair_sharing() {
        let (a, b) = intern_pair(&["x", "y", "x"], &["y", "x", "z"]);
        assert_eq!(a, vec![0, 1, 0]);
        assert_eq!(b, vec![1, 0, 2]);
    }

    #[test]
    fn empty_interner() {
        let i: Interner<String> = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn intern_seq_preserves_order() {
        let mut i = Interner::new();
        let ids = i.intern_seq(vec!["a", "b", "a", "c"]);
        assert_eq!(ids, vec![0, 1, 0, 2]);
    }
}
