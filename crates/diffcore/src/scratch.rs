//! Reusable per-thread scratch buffers for the diff hot path.
//!
//! Every `diff_tokens` call used to allocate (and immediately drop) a
//! family of short-lived vectors: the outer DP table, Hirschberg score
//! rows, dense gap memos, and the per-token metadata arenas HtmlDiff
//! builds before comparing. None of those allocations outlive one diff,
//! so a snapshot service diffing thousands of revisions pays the
//! allocator once per diff per buffer for memory whose size barely
//! changes between calls.
//!
//! [`DiffScratch`] is a pool of typed buffers. Callers *take* a buffer
//! (popping a recycled one or allocating fresh), use it as an ordinary
//! `Vec`, and *give* it back when done; returned buffers are cleared but
//! keep their capacity for the next diff. The pool is deliberately a
//! stack of independent buffers rather than a single bump arena guarded
//! by one `RefCell` borrow: the weighted-LCS machinery nests (an outer
//! gap DP's score closure can run an inner sentence LCS), so two live
//! buffers of the same kind must be able to coexist. Take/give touches
//! the thread-local pool only momentarily, never across user code.
//!
//! Discipline rules (see DESIGN.md §4e):
//!
//! - A taken buffer is owned: forgetting to give it back merely drops
//!   it (no leak, no poisoning), it is never aliased.
//! - Buffers above [`MAX_RETAINED_BUF_BYTES`] are dropped on return so a
//!   single pathological diff cannot pin its peak memory forever.
//! - The pool retains at most [`MAX_POOLED_BUFS`] buffers per type.
//! - [`retained_bytes`] reports the calling thread's pooled capacity;
//!   HtmlDiff publishes it as the `diff.scratch.bytes` gauge.
//!
//! The default pool is thread-local — gap workers and snapshot service
//! threads each get their own, so no locking and no cross-thread
//! nondeterminism. A caller that wants explicit control (tests, or an
//! engine embedding with its own threading) can hold a [`DiffScratch`]
//! directly; the free functions are conveniences over the thread-local
//! instance.

use std::cell::RefCell;

/// Returned buffers larger than this are dropped instead of pooled, so
/// one huge diff cannot pin its peak memory for the thread's lifetime.
/// 4 MiB covers the outer DP table of a ~700×700-token page pair and
/// every Hirschberg row/banded table the fallback produces.
pub const MAX_RETAINED_BUF_BYTES: usize = 1 << 22;

/// Maximum recycled buffers kept per element type.
pub const MAX_POOLED_BUFS: usize = 16;

/// A pool of recycled diff buffers. See the module docs.
#[derive(Debug, Default)]
pub struct DiffScratch {
    u64_bufs: Vec<Vec<u64>>,
    u32_bufs: Vec<Vec<u32>>,
    pair_bufs: Vec<Vec<(usize, usize)>>,
}

impl DiffScratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared `Vec<u64>` buffer (DP tables, score rows).
    pub fn take_u64(&mut self) -> Vec<u64> {
        self.u64_bufs.pop().unwrap_or_default()
    }

    /// Returns a `u64` buffer to the pool.
    pub fn give_u64(&mut self, mut buf: Vec<u64>) {
        buf.clear();
        if Self::retain(buf.capacity(), 8, self.u64_bufs.len()) {
            self.u64_bufs.push(buf);
        }
    }

    /// Takes a cleared `Vec<u32>` buffer (token metadata arenas).
    pub fn take_u32(&mut self) -> Vec<u32> {
        self.u32_bufs.pop().unwrap_or_default()
    }

    /// Returns a `u32` buffer to the pool.
    pub fn give_u32(&mut self, mut buf: Vec<u32>) {
        buf.clear();
        if Self::retain(buf.capacity(), 4, self.u32_bufs.len()) {
            self.u32_bufs.push(buf);
        }
    }

    /// Takes a cleared index-pair buffer (alignments under assembly).
    pub fn take_pairs(&mut self) -> Vec<(usize, usize)> {
        self.pair_bufs.pop().unwrap_or_default()
    }

    /// Returns an index-pair buffer to the pool.
    pub fn give_pairs(&mut self, mut buf: Vec<(usize, usize)>) {
        buf.clear();
        let elem = std::mem::size_of::<(usize, usize)>();
        if Self::retain(buf.capacity(), elem, self.pair_bufs.len()) {
            self.pair_bufs.push(buf);
        }
    }

    fn retain(capacity: usize, elem_bytes: usize, pooled: usize) -> bool {
        capacity > 0
            && capacity.saturating_mul(elem_bytes) <= MAX_RETAINED_BUF_BYTES
            && pooled < MAX_POOLED_BUFS
    }

    /// Total capacity (in bytes) currently held by pooled buffers.
    pub fn retained_bytes(&self) -> usize {
        let u64s: usize = self.u64_bufs.iter().map(|b| b.capacity() * 8).sum();
        let u32s: usize = self.u32_bufs.iter().map(|b| b.capacity() * 4).sum();
        let elem = std::mem::size_of::<(usize, usize)>();
        let pairs: usize = self.pair_bufs.iter().map(|b| b.capacity() * elem).sum();
        u64s + u32s + pairs
    }
}

thread_local! {
    static SCRATCH: RefCell<DiffScratch> = RefCell::new(DiffScratch::new());
}

/// Takes a `u64` buffer from the calling thread's pool.
pub fn take_u64_buf() -> Vec<u64> {
    SCRATCH.with(|s| s.borrow_mut().take_u64())
}

/// Returns a `u64` buffer to the calling thread's pool.
pub fn give_u64_buf(buf: Vec<u64>) {
    SCRATCH.with(|s| s.borrow_mut().give_u64(buf));
}

/// Takes a `u32` buffer from the calling thread's pool.
pub fn take_u32_buf() -> Vec<u32> {
    SCRATCH.with(|s| s.borrow_mut().take_u32())
}

/// Returns a `u32` buffer to the calling thread's pool.
pub fn give_u32_buf(buf: Vec<u32>) {
    SCRATCH.with(|s| s.borrow_mut().give_u32(buf));
}

/// Takes an index-pair buffer from the calling thread's pool.
pub fn take_pairs_buf() -> Vec<(usize, usize)> {
    SCRATCH.with(|s| s.borrow_mut().take_pairs())
}

/// Returns an index-pair buffer to the calling thread's pool.
pub fn give_pairs_buf(buf: Vec<(usize, usize)>) {
    SCRATCH.with(|s| s.borrow_mut().give_pairs(buf));
}

/// Pooled capacity (bytes) on the calling thread — the
/// `diff.scratch.bytes` gauge source.
pub fn retained_bytes() -> usize {
    SCRATCH.with(|s| s.borrow().retained_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_capacity() {
        let mut pool = DiffScratch::new();
        let mut buf = pool.take_u64();
        buf.extend(0..1000);
        let cap = buf.capacity();
        pool.give_u64(buf);
        let again = pool.take_u64();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
    }

    #[test]
    fn oversized_buffers_are_dropped() {
        let mut pool = DiffScratch::new();
        let buf = vec![0u64; MAX_RETAINED_BUF_BYTES / 8 + 1];
        pool.give_u64(buf);
        assert_eq!(pool.retained_bytes(), 0);
    }

    #[test]
    fn pool_size_is_capped() {
        let mut pool = DiffScratch::new();
        for _ in 0..MAX_POOLED_BUFS + 5 {
            pool.give_u32(vec![1, 2, 3]);
        }
        assert_eq!(pool.u32_bufs.len(), MAX_POOLED_BUFS);
    }

    #[test]
    fn retained_bytes_counts_all_pools() {
        let mut pool = DiffScratch::new();
        pool.give_u64(Vec::with_capacity(8));
        pool.give_u32(Vec::with_capacity(8));
        pool.give_pairs(Vec::with_capacity(8));
        let elem = std::mem::size_of::<(usize, usize)>();
        assert_eq!(pool.retained_bytes(), 8 * 8 + 8 * 4 + 8 * elem);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut pool = DiffScratch::new();
        pool.give_u64(Vec::new());
        assert!(pool.u64_bufs.is_empty());
    }

    #[test]
    fn thread_local_roundtrip() {
        let mut buf = take_u64_buf();
        buf.extend(0..100);
        give_u64_buf(buf);
        assert!(retained_bytes() >= 100 * 8);
        // Nested takes coexist: two live buffers of the same kind.
        let a = take_u64_buf();
        let b = take_u64_buf();
        give_u64_buf(a);
        give_u64_buf(b);
    }
}
