//! Edit scripts and hunks derived from an alignment.
//!
//! An [`Alignment`] is the raw output of the comparison algorithms: the
//! matched index pairs plus the two sequence lengths. From it this module
//! derives the classification the paper uses (§5.2): "Tokens that have a
//! mapping are termed 'common'; tokens that are in the old (new) document
//! but have no counterpart in the new (old) are 'old' ('new')" — here
//! rendered as [`EditOp::Equal`], [`EditOp::Delete`] and
//! [`EditOp::Insert`] runs — and the grouping into context [`Hunk`]s that
//! line-oriented output formats need.

/// A validated alignment between two sequences of lengths `n` and `m`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Matched pairs `(i, j)`, strictly increasing in both components.
    pub pairs: Vec<(usize, usize)>,
    /// Length of the old sequence.
    pub n: usize,
    /// Length of the new sequence.
    pub m: usize,
}

/// One run of an edit script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// `len` tokens common to both sides, at `a_start` / `b_start`.
    Equal {
        /// Start in the old sequence.
        a_start: usize,
        /// Start in the new sequence.
        b_start: usize,
        /// Run length.
        len: usize,
    },
    /// `len` tokens present only in the old sequence ("old" material).
    Delete {
        /// Start in the old sequence.
        a_start: usize,
        /// Run length.
        len: usize,
        /// Position in the new sequence where the deletion falls.
        b_pos: usize,
    },
    /// `len` tokens present only in the new sequence ("new" material).
    Insert {
        /// Position in the old sequence where the insertion falls.
        a_pos: usize,
        /// Start in the new sequence.
        b_start: usize,
        /// Run length.
        len: usize,
    },
}

impl EditOp {
    /// Returns true for [`EditOp::Equal`].
    pub fn is_equal(&self) -> bool {
        matches!(self, EditOp::Equal { .. })
    }
}

/// A sequence of [`EditOp`]s covering both inputs completely and in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EditScript {
    /// The ops, alternating between equal and non-equal runs.
    pub ops: Vec<EditOp>,
}

/// A group of nearby changes plus surrounding context, as in `diff -u`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hunk {
    /// Start of the hunk in the old sequence (0-based).
    pub a_start: usize,
    /// Number of old-sequence tokens covered.
    pub a_len: usize,
    /// Start of the hunk in the new sequence (0-based).
    pub b_start: usize,
    /// Number of new-sequence tokens covered.
    pub b_len: usize,
    /// The ops inside the hunk (equal context plus changes).
    pub ops: Vec<EditOp>,
}

impl Alignment {
    /// Creates an alignment, validating monotonicity and bounds.
    ///
    /// # Panics
    ///
    /// Panics if the pairs are not strictly increasing in both components
    /// or reference indices out of range — such an alignment is a bug in
    /// the comparison algorithm, not bad input data.
    pub fn new(pairs: Vec<(usize, usize)>, n: usize, m: usize) -> Alignment {
        let mut last: Option<(usize, usize)> = None;
        for &(i, j) in &pairs {
            assert!(
                i < n && j < m,
                "alignment pair ({i},{j}) out of bounds ({n},{m})"
            );
            if let Some((pi, pj)) = last {
                assert!(
                    i > pi && j > pj,
                    "alignment pairs must be strictly increasing"
                );
            }
            last = Some((i, j));
        }
        Alignment { pairs, n, m }
    }

    /// Number of matched pairs.
    pub fn matched(&self) -> usize {
        self.pairs.len()
    }

    /// Insertions + deletions implied by this alignment.
    pub fn edit_distance(&self) -> usize {
        self.n + self.m - 2 * self.pairs.len()
    }

    /// Whether the two sequences are identical under this alignment.
    pub fn is_identity(&self) -> bool {
        self.n == self.m && self.pairs.len() == self.n
    }

    /// Expands the alignment into an [`EditScript`] with maximal runs.
    pub fn script(&self) -> EditScript {
        let mut ops = Vec::new();
        let mut ai = 0usize;
        let mut bi = 0usize;
        let mut k = 0usize;
        while k < self.pairs.len() || ai < self.n || bi < self.m {
            if k < self.pairs.len() {
                let (pi, pj) = self.pairs[k];
                if ai < pi {
                    ops.push(EditOp::Delete {
                        a_start: ai,
                        len: pi - ai,
                        b_pos: bi,
                    });
                    ai = pi;
                }
                if bi < pj {
                    ops.push(EditOp::Insert {
                        a_pos: ai,
                        b_start: bi,
                        len: pj - bi,
                    });
                    bi = pj;
                }
                // Extend the equal run through consecutive pairs.
                let mut len = 0usize;
                while k < self.pairs.len() && self.pairs[k] == (ai + len, bi + len) {
                    len += 1;
                    k += 1;
                }
                debug_assert!(len > 0);
                ops.push(EditOp::Equal {
                    a_start: ai,
                    b_start: bi,
                    len,
                });
                ai += len;
                bi += len;
            } else {
                if ai < self.n {
                    ops.push(EditOp::Delete {
                        a_start: ai,
                        len: self.n - ai,
                        b_pos: bi,
                    });
                    ai = self.n;
                }
                if bi < self.m {
                    ops.push(EditOp::Insert {
                        a_pos: ai,
                        b_start: bi,
                        len: self.m - bi,
                    });
                    bi = self.m;
                }
            }
        }
        EditScript { ops }
    }

    /// Groups changes into hunks with up to `context` equal tokens of
    /// surrounding context, merging hunks whose contexts touch.
    pub fn hunks(&self, context: usize) -> Vec<Hunk> {
        let script = self.script();
        let mut hunks: Vec<Hunk> = Vec::new();
        let mut current: Option<Hunk> = None;

        for (idx, op) in script.ops.iter().enumerate() {
            match *op {
                EditOp::Equal {
                    a_start,
                    b_start,
                    len,
                } => {
                    if let Some(h) = current.as_mut() {
                        if len <= 2 * context && idx + 1 < script.ops.len() {
                            // Short equal run between changes: keep inside.
                            h.ops.push(*op);
                            h.a_len += len;
                            h.b_len += len;
                        } else {
                            // Close the hunk with trailing context.
                            let take = len.min(context);
                            if take > 0 {
                                h.ops.push(EditOp::Equal {
                                    a_start,
                                    b_start,
                                    len: take,
                                });
                                h.a_len += take;
                                h.b_len += take;
                            }
                            if let Some(done) = current.take() {
                                hunks.push(done);
                            }
                        }
                    }
                }
                EditOp::Delete {
                    a_start,
                    len,
                    b_pos,
                } => {
                    let h = current.get_or_insert_with(|| {
                        open_hunk(&script.ops[..idx], a_start, b_pos, context)
                    });
                    h.ops.push(*op);
                    h.a_len += len;
                }
                EditOp::Insert {
                    a_pos,
                    b_start,
                    len,
                } => {
                    let h = current.get_or_insert_with(|| {
                        open_hunk(&script.ops[..idx], a_pos, b_start, context)
                    });
                    h.ops.push(*op);
                    h.b_len += len;
                }
            }
        }
        if let Some(h) = current.take() {
            hunks.push(h);
        }
        hunks
    }
}

/// Builds a fresh hunk whose leading context comes from the preceding
/// equal run (if any).
fn open_hunk(prior_ops: &[EditOp], a_pos: usize, b_pos: usize, context: usize) -> Hunk {
    let mut h = Hunk {
        a_start: a_pos,
        a_len: 0,
        b_start: b_pos,
        b_len: 0,
        ops: Vec::new(),
    };
    if let Some(EditOp::Equal {
        a_start,
        b_start,
        len,
    }) = prior_ops.last().copied()
    {
        let take = len.min(context);
        if take > 0 {
            h.a_start = a_start + len - take;
            h.b_start = b_start + len - take;
            h.a_len = take;
            h.b_len = take;
            h.ops.push(EditOp::Equal {
                a_start: h.a_start,
                b_start: h.b_start,
                len: take,
            });
        }
    }
    h
}

impl EditScript {
    /// Number of tokens deleted from the old sequence.
    pub fn deleted(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Delete { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }

    /// Number of tokens inserted in the new sequence.
    pub fn inserted(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Insert { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }

    /// Number of tokens common to both sides.
    pub fn common(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                EditOp::Equal { len, .. } => *len,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn align<T: PartialEq + Clone>(a: &[T], b: &[T]) -> Alignment {
        Alignment::new(crate::myers::myers_diff(a, b), a.len(), b.len())
    }

    #[test]
    fn identity_script_is_one_equal_op() {
        let a = [1, 2, 3];
        let s = align(&a, &a).script();
        assert_eq!(
            s.ops,
            vec![EditOp::Equal {
                a_start: 0,
                b_start: 0,
                len: 3
            }]
        );
        assert!(align(&a, &a).is_identity());
    }

    #[test]
    fn pure_insert_and_delete() {
        let a: [i32; 0] = [];
        let b = [1, 2];
        let s = align(&a, &b).script();
        assert_eq!(
            s.ops,
            vec![EditOp::Insert {
                a_pos: 0,
                b_start: 0,
                len: 2
            }]
        );
        let s = align(&b, &a).script();
        assert_eq!(
            s.ops,
            vec![EditOp::Delete {
                a_start: 0,
                len: 2,
                b_pos: 0
            }]
        );
    }

    #[test]
    fn replace_in_middle() {
        let a = [1, 2, 3, 4];
        let b = [1, 9, 9, 4];
        let s = align(&a, &b).script();
        assert_eq!(s.common(), 2);
        assert_eq!(s.deleted(), 2);
        assert_eq!(s.inserted(), 2);
        // Coverage: ops must tile both sequences exactly.
        let mut ai = 0;
        let mut bi = 0;
        for op in &s.ops {
            match *op {
                EditOp::Equal {
                    a_start,
                    b_start,
                    len,
                } => {
                    assert_eq!((a_start, b_start), (ai, bi));
                    ai += len;
                    bi += len;
                }
                EditOp::Delete {
                    a_start,
                    len,
                    b_pos,
                } => {
                    assert_eq!((a_start, b_pos), (ai, bi));
                    ai += len;
                }
                EditOp::Insert {
                    a_pos,
                    b_start,
                    len,
                } => {
                    assert_eq!((a_pos, b_start), (ai, bi));
                    bi += len;
                }
            }
        }
        assert_eq!((ai, bi), (4, 4));
    }

    #[test]
    fn script_distance_matches_alignment() {
        let a = [5, 6, 7, 8, 9];
        let b = [5, 7, 9, 10];
        let al = align(&a, &b);
        let s = al.script();
        assert_eq!(s.deleted() + s.inserted(), al.edit_distance());
    }

    #[test]
    fn hunks_single_change_with_context() {
        let a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        b[10] = 99;
        let hunks = align(&a, &b).hunks(3);
        assert_eq!(hunks.len(), 1);
        let h = &hunks[0];
        assert_eq!(h.a_start, 7);
        assert_eq!(h.a_len, 7); // 3 context + 1 change + 3 context
        assert_eq!(h.b_len, 7);
    }

    #[test]
    fn hunks_merge_nearby_changes() {
        let a: Vec<u32> = (0..30).collect();
        let mut b = a.clone();
        b[10] = 99;
        b[14] = 98; // gap of 3 equals, context 3 → merged
        let hunks = align(&a, &b).hunks(3);
        assert_eq!(
            hunks.len(),
            1,
            "changes 4 apart with context 3 share a hunk"
        );
    }

    #[test]
    fn hunks_split_distant_changes() {
        let a: Vec<u32> = (0..60).collect();
        let mut b = a.clone();
        b[5] = 99;
        b[50] = 98;
        let hunks = align(&a, &b).hunks(3);
        assert_eq!(hunks.len(), 2);
    }

    #[test]
    fn hunk_at_sequence_edges_has_clamped_context() {
        let a: Vec<u32> = (0..5).collect();
        let mut b = a.clone();
        b[0] = 99;
        let hunks = align(&a, &b).hunks(3);
        assert_eq!(hunks.len(), 1);
        assert_eq!(hunks[0].a_start, 0, "no leading context available");
    }

    #[test]
    fn zero_context_hunks() {
        let a: Vec<u32> = (0..10).collect();
        let mut b = a.clone();
        b[4] = 99;
        let hunks = align(&a, &b).hunks(0);
        assert_eq!(hunks.len(), 1);
        assert_eq!(hunks[0].a_len, 1);
        assert_eq!(hunks[0].b_len, 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn alignment_rejects_crossing_pairs() {
        Alignment::new(vec![(1, 0), (0, 1)], 2, 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn alignment_rejects_out_of_range() {
        Alignment::new(vec![(5, 0)], 2, 2);
    }
}
