//! Property-based tests for the diff substrate.
//!
//! Invariants checked:
//! - Myers alignments are valid (in-bounds, strictly increasing, matching
//!   tokens) and as long as the true LCS.
//! - Hirschberg and the DP produce alignments of equal weight.
//! - Edit scripts tile both sequences exactly and replay old → new.
//! - Unified diff of identical inputs is empty; a text always equals
//!   itself under `diff_lines`.
//! - The anchored fast path returns the *same pairs* as the full DP on
//!   edit-structured token streams, for any worker count and any
//!   decomposition config.

use aide_diffcore::anchor::{anchored_weighted_lcs, AnchorConfig};
use aide_diffcore::lcs::{alignment_weight, lcs_pairs, weighted_lcs_dp, weighted_lcs_hirschberg};
use aide_diffcore::lines::diff_lines;
use aide_diffcore::myers::myers_diff;
use aide_diffcore::script::{Alignment, EditOp};
use proptest::prelude::*;

fn small_seq() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..6, 0..50)
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("alpha"),
            Just("beta"),
            Just("gamma"),
            Just("<P>"),
            Just("")
        ],
        0..30,
    )
    .prop_map(|words| {
        let mut s = words.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    })
}

/// An edit-structured pair of token-id streams: the old stream mixes
/// high-entropy "sentence" ids (fresh value per position) with a few
/// repeated "break" ids, and the new stream is the old one with 1–3
/// block edits (delete / insert / replace) spliced in — the shape real
/// revisions of a page take, and the regime in which the anchored
/// decomposition promises DP-identical output.
fn edit_structured_pair() -> impl Strategy<Value = (Vec<u64>, Vec<u64>)> {
    let base = proptest::collection::vec(0u8..4, 10..120);
    let edits = proptest::collection::vec((0usize..3, 0usize..1000, 1usize..8), 1..4);
    (base, edits).prop_map(|(kinds, edits)| {
        let mut next = 1_000u64;
        let mut a = Vec::with_capacity(kinds.len());
        for (i, k) in kinds.iter().enumerate() {
            if *k == 0 {
                a.push((i % 4) as u64); // repeated break-like id
            } else {
                next += 1;
                a.push(next); // fresh sentence-like id
            }
        }
        let mut b = a.clone();
        for (kind, pos, len) in edits {
            let at = if b.is_empty() { 0 } else { pos % b.len() };
            let end = (at + len).min(b.len());
            match kind {
                0 => {
                    b.drain(at..end);
                }
                1 => {
                    let block: Vec<u64> = (0..len)
                        .map(|_| {
                            next += 1;
                            next
                        })
                        .collect();
                    b.splice(at..at, block);
                }
                _ => {
                    let block: Vec<u64> = (0..end - at)
                        .map(|_| {
                            next += 1;
                            next
                        })
                        .collect();
                    b.splice(at..end, block);
                }
            }
        }
        (a, b)
    })
}

fn check_alignment_valid<T: PartialEq>(pairs: &[(usize, usize)], a: &[T], b: &[T]) {
    let mut last: Option<(usize, usize)> = None;
    for &(i, j) in pairs {
        assert!(i < a.len() && j < b.len());
        assert!(a[i] == b[j]);
        if let Some((pi, pj)) = last {
            assert!(i > pi && j > pj);
        }
        last = Some((i, j));
    }
}

proptest! {
    #[test]
    fn myers_is_valid_and_minimal(a in small_seq(), b in small_seq()) {
        let pairs = myers_diff(&a, &b);
        check_alignment_valid(&pairs, &a, &b);
        let lcs = lcs_pairs(&a, &b);
        prop_assert_eq!(pairs.len(), lcs.len());
    }

    #[test]
    fn myers_identity(a in small_seq()) {
        let pairs = myers_diff(&a, &a);
        prop_assert_eq!(pairs.len(), a.len());
    }

    #[test]
    fn myers_symmetry_of_distance(a in small_seq(), b in small_seq()) {
        let fwd = a.len() + b.len() - 2 * myers_diff(&a, &b).len();
        let rev = a.len() + b.len() - 2 * myers_diff(&b, &a).len();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn hirschberg_pairs_equal_dp_pairs(a in small_seq(), b in small_seq()) {
        // Stronger than weight equality: the linear-space replay must
        // reproduce the canonical backtrack pair for pair (§4e).
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let dp = weighted_lcs_dp(a.len(), b.len(), &score);
        let hi = weighted_lcs_hirschberg(a.len(), b.len(), &score);
        prop_assert_eq!(
            alignment_weight(&dp, &score),
            alignment_weight(&hi, &score)
        );
        check_alignment_valid(&hi, &a, &b);
        prop_assert_eq!(hi, dp);
    }

    #[test]
    fn script_replay_reconstructs_new(a in small_seq(), b in small_seq()) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let mut rebuilt: Vec<u8> = Vec::new();
        for op in alignment.script().ops {
            match op {
                EditOp::Equal { a_start, len, .. } => {
                    rebuilt.extend_from_slice(&a[a_start..a_start + len]);
                }
                EditOp::Insert { b_start, len, .. } => {
                    rebuilt.extend_from_slice(&b[b_start..b_start + len]);
                }
                EditOp::Delete { .. } => {}
            }
        }
        prop_assert_eq!(rebuilt, b);
    }

    #[test]
    fn script_tiles_both_sides(a in small_seq(), b in small_seq()) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let mut ai = 0usize;
        let mut bi = 0usize;
        for op in alignment.script().ops {
            match op {
                EditOp::Equal { a_start, b_start, len } => {
                    prop_assert_eq!(a_start, ai);
                    prop_assert_eq!(b_start, bi);
                    ai += len;
                    bi += len;
                }
                EditOp::Delete { a_start, len, b_pos } => {
                    prop_assert_eq!(a_start, ai);
                    prop_assert_eq!(b_pos, bi);
                    ai += len;
                }
                EditOp::Insert { a_pos, b_start, len } => {
                    prop_assert_eq!(a_pos, ai);
                    prop_assert_eq!(b_start, bi);
                    bi += len;
                }
            }
        }
        prop_assert_eq!(ai, a.len());
        prop_assert_eq!(bi, b.len());
    }

    #[test]
    fn hunks_cover_all_changes(a in small_seq(), b in small_seq(), ctx in 0usize..4) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let in_hunks: usize = alignment
            .hunks(ctx)
            .iter()
            .flat_map(|h| h.ops.iter())
            .map(|op| match op {
                EditOp::Delete { len, .. } | EditOp::Insert { len, .. } => *len,
                EditOp::Equal { .. } => 0,
            })
            .sum();
        prop_assert_eq!(in_hunks, alignment.edit_distance());
    }

    #[test]
    fn diff_lines_self_is_identical(t in text_strategy()) {
        let d = diff_lines(&t, &t);
        prop_assert!(d.is_identical());
        prop_assert_eq!(d.unified("a", "b", 3), "");
    }

    #[test]
    fn diff_lines_counts_consistent(a in text_strategy(), b in text_strategy()) {
        let d = diff_lines(&a, &b);
        let dist = d.alignment.edit_distance();
        prop_assert_eq!(d.deleted_lines() + d.inserted_lines(), dist);
    }
}

// A second block: the in-tree proptest! macro recurses per property, and
// one block holding every test in this file exceeds the default macro
// recursion limit.
proptest! {
    #[test]
    fn anchored_equals_dp_on_edit_structured_streams(ab in edit_structured_pair()) {
        let (a, b) = ab;
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let verify = |i: usize, j: usize| a[i] == b[j];
        let unit_a = vec![true; a.len()];
        let unit_b = vec![true; b.len()];
        let dp = weighted_lcs_dp(a.len(), b.len(), &score);
        // Every decomposition config must reproduce the DP pairs exactly:
        // eager anchoring with plain gap DP, eager anchoring with the
        // banded unit-gap DP engaged, and the production default.
        for cfg in [
            AnchorConfig {
                small_cells: 0,
                myers_min_cells: usize::MAX,
                ..AnchorConfig::default()
            },
            AnchorConfig { small_cells: 0, myers_min_cells: 16, ..AnchorConfig::default() },
            AnchorConfig { small_cells: 0, rescue_max_freq: 0, ..AnchorConfig::default() },
            AnchorConfig::default(),
        ] {
            let (pairs, _) =
                anchored_weighted_lcs(&a, &b, &unit_a, &unit_b, &cfg, &score, &verify);
            prop_assert_eq!(&pairs, &dp, "config {:?}", cfg);
        }
    }

    #[test]
    fn anchored_weighted_equals_dp_on_edit_structured_streams(ab in edit_structured_pair()) {
        let (a, b) = ab;
        // Weights vary by token class (like sentence length) but are
        // equal for equal ids, so the exactness premise still holds.
        let weight = |id: u64| 1 + id % 3;
        let score = |i: usize, j: usize| if a[i] == b[j] { weight(a[i]) } else { 0 };
        let verify = |i: usize, j: usize| a[i] == b[j];
        let unit_a: Vec<bool> = a.iter().map(|&id| weight(id) == 1).collect();
        let unit_b: Vec<bool> = b.iter().map(|&id| weight(id) == 1).collect();
        let dp = weighted_lcs_dp(a.len(), b.len(), &score);
        let cfg = AnchorConfig { small_cells: 0, ..AnchorConfig::default() };
        let (pairs, _) = anchored_weighted_lcs(&a, &b, &unit_a, &unit_b, &cfg, &score, &verify);
        prop_assert_eq!(&pairs, &dp);
    }

    #[test]
    fn anchored_workers_do_not_change_output(ab in edit_structured_pair()) {
        let (a, b) = ab;
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let verify = |i: usize, j: usize| a[i] == b[j];
        let unit_a = vec![true; a.len()];
        let unit_b = vec![true; b.len()];
        let serial = AnchorConfig { small_cells: 0, workers: 1, ..AnchorConfig::default() };
        let parallel = AnchorConfig { small_cells: 0, workers: 4, ..AnchorConfig::default() };
        let (p1, s1) = anchored_weighted_lcs(&a, &b, &unit_a, &unit_b, &serial, &score, &verify);
        let (p4, s4) =
            anchored_weighted_lcs(&a, &b, &unit_a, &unit_b, &parallel, &score, &verify);
        prop_assert_eq!(p1, p4);
        prop_assert_eq!(s1, s4);
    }

    // Degenerate inputs: the shapes the Hirschberg fallback and the
    // rescue machinery must get byte-identical to the DP (ISSUE 7).
    #[test]
    fn degenerate_all_identical_tokens_match_dp(n in 0usize..40, m in 0usize..40) {
        // One repeated id on both sides: maximal tie-break pressure, no
        // unique anchors, rescue candidates only when counts coincide.
        let a = vec![42u64; n];
        let b = vec![42u64; m];
        check_every_path_equals_dp(&a, &b);
    }

    #[test]
    fn degenerate_all_unique_tokens_match_dp(n in 0usize..40, m in 0usize..40, shared in 0usize..10) {
        // Fresh ids everywhere except an optional shared run in the
        // middle — the full-replacement shape at token granularity.
        let mut next = 0u64;
        let mut fresh = |k: usize| -> Vec<u64> {
            (0..k)
                .map(|_| {
                    next += 1;
                    next
                })
                .collect()
        };
        let run: Vec<u64> = (0..shared).map(|k| 500_000 + k as u64).collect();
        let mut a = fresh(n);
        a.extend(&run);
        a.extend(fresh(n / 2));
        let mut b = fresh(m);
        b.extend(&run);
        b.extend(fresh(m / 2));
        check_every_path_equals_dp(&a, &b);
    }

    #[test]
    fn degenerate_single_token_sides_match_dp(a0 in 0u64..5, b in small_seq()) {
        let a = vec![a0];
        let b: Vec<u64> = b.into_iter().map(u64::from).collect();
        check_every_path_equals_dp(&a, &b);
        check_every_path_equals_dp(&b, &a);
    }
}

/// Asserts the anchored decomposition (eager, banded, rescue-off,
/// default) and the linear-space Hirschberg replay all reproduce the
/// dense DP's pairs exactly on `a` vs `b`.
fn check_every_path_equals_dp(a: &[u64], b: &[u64]) {
    let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
    let verify = |i: usize, j: usize| a[i] == b[j];
    let unit_a = vec![true; a.len()];
    let unit_b = vec![true; b.len()];
    let dp = weighted_lcs_dp(a.len(), b.len(), &score);
    let hi = weighted_lcs_hirschberg(a.len(), b.len(), &score);
    assert_eq!(hi, dp, "hirschberg diverged");
    for cfg in [
        AnchorConfig {
            small_cells: 0,
            myers_min_cells: usize::MAX,
            ..AnchorConfig::default()
        },
        AnchorConfig {
            small_cells: 0,
            myers_min_cells: 16,
            ..AnchorConfig::default()
        },
        AnchorConfig {
            small_cells: 0,
            rescue_max_freq: 0,
            ..AnchorConfig::default()
        },
        AnchorConfig {
            small_cells: 0,
            rescue_max_freq: 8,
            rescue_min_run: 2,
            ..AnchorConfig::default()
        },
        AnchorConfig::default(),
    ] {
        let (pairs, _) = anchored_weighted_lcs(a, b, &unit_a, &unit_b, &cfg, &score, &verify);
        assert_eq!(pairs, dp, "config {cfg:?}");
    }
}
