//! Property-based tests for the diff substrate.
//!
//! Invariants checked:
//! - Myers alignments are valid (in-bounds, strictly increasing, matching
//!   tokens) and as long as the true LCS.
//! - Hirschberg and the DP produce alignments of equal weight.
//! - Edit scripts tile both sequences exactly and replay old → new.
//! - Unified diff of identical inputs is empty; a text always equals
//!   itself under `diff_lines`.

use aide_diffcore::lcs::{alignment_weight, lcs_pairs, weighted_lcs_dp, weighted_lcs_hirschberg};
use aide_diffcore::lines::diff_lines;
use aide_diffcore::myers::myers_diff;
use aide_diffcore::script::{Alignment, EditOp};
use proptest::prelude::*;

fn small_seq() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..6, 0..50)
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just("alpha"),
            Just("beta"),
            Just("gamma"),
            Just("<P>"),
            Just("")
        ],
        0..30,
    )
    .prop_map(|words| {
        let mut s = words.join("\n");
        if !s.is_empty() {
            s.push('\n');
        }
        s
    })
}

fn check_alignment_valid<T: PartialEq>(pairs: &[(usize, usize)], a: &[T], b: &[T]) {
    let mut last: Option<(usize, usize)> = None;
    for &(i, j) in pairs {
        assert!(i < a.len() && j < b.len());
        assert!(a[i] == b[j]);
        if let Some((pi, pj)) = last {
            assert!(i > pi && j > pj);
        }
        last = Some((i, j));
    }
}

proptest! {
    #[test]
    fn myers_is_valid_and_minimal(a in small_seq(), b in small_seq()) {
        let pairs = myers_diff(&a, &b);
        check_alignment_valid(&pairs, &a, &b);
        let lcs = lcs_pairs(&a, &b);
        prop_assert_eq!(pairs.len(), lcs.len());
    }

    #[test]
    fn myers_identity(a in small_seq()) {
        let pairs = myers_diff(&a, &a);
        prop_assert_eq!(pairs.len(), a.len());
    }

    #[test]
    fn myers_symmetry_of_distance(a in small_seq(), b in small_seq()) {
        let fwd = a.len() + b.len() - 2 * myers_diff(&a, &b).len();
        let rev = a.len() + b.len() - 2 * myers_diff(&b, &a).len();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn hirschberg_weight_equals_dp_weight(a in small_seq(), b in small_seq()) {
        let score = |i: usize, j: usize| u64::from(a[i] == b[j]);
        let dp = weighted_lcs_dp(a.len(), b.len(), &score);
        let hi = weighted_lcs_hirschberg(a.len(), b.len(), &score);
        prop_assert_eq!(
            alignment_weight(&dp, &score),
            alignment_weight(&hi, &score)
        );
        check_alignment_valid(&hi, &a, &b);
    }

    #[test]
    fn script_replay_reconstructs_new(a in small_seq(), b in small_seq()) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let mut rebuilt: Vec<u8> = Vec::new();
        for op in alignment.script().ops {
            match op {
                EditOp::Equal { a_start, len, .. } => {
                    rebuilt.extend_from_slice(&a[a_start..a_start + len]);
                }
                EditOp::Insert { b_start, len, .. } => {
                    rebuilt.extend_from_slice(&b[b_start..b_start + len]);
                }
                EditOp::Delete { .. } => {}
            }
        }
        prop_assert_eq!(rebuilt, b);
    }

    #[test]
    fn script_tiles_both_sides(a in small_seq(), b in small_seq()) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let mut ai = 0usize;
        let mut bi = 0usize;
        for op in alignment.script().ops {
            match op {
                EditOp::Equal { a_start, b_start, len } => {
                    prop_assert_eq!(a_start, ai);
                    prop_assert_eq!(b_start, bi);
                    ai += len;
                    bi += len;
                }
                EditOp::Delete { a_start, len, b_pos } => {
                    prop_assert_eq!(a_start, ai);
                    prop_assert_eq!(b_pos, bi);
                    ai += len;
                }
                EditOp::Insert { a_pos, b_start, len } => {
                    prop_assert_eq!(a_pos, ai);
                    prop_assert_eq!(b_start, bi);
                    bi += len;
                }
            }
        }
        prop_assert_eq!(ai, a.len());
        prop_assert_eq!(bi, b.len());
    }

    #[test]
    fn hunks_cover_all_changes(a in small_seq(), b in small_seq(), ctx in 0usize..4) {
        let alignment = Alignment::new(myers_diff(&a, &b), a.len(), b.len());
        let in_hunks: usize = alignment
            .hunks(ctx)
            .iter()
            .flat_map(|h| h.ops.iter())
            .map(|op| match op {
                EditOp::Delete { len, .. } | EditOp::Insert { len, .. } => *len,
                EditOp::Equal { .. } => 0,
            })
            .sum();
        prop_assert_eq!(in_hunks, alignment.edit_distance());
    }

    #[test]
    fn diff_lines_self_is_identical(t in text_strategy()) {
        let d = diff_lines(&t, &t);
        prop_assert!(d.is_identical());
        prop_assert_eq!(d.unified("a", "b", 3), "");
    }

    #[test]
    fn diff_lines_counts_consistent(a in text_strategy(), b in text_strategy()) {
        let d = diff_lines(&a, &b);
        let dist = d.alignment.edit_distance();
        prop_assert_eq!(d.deleted_lines() + d.inserted_lines(), dist);
    }
}
