//! Pluggable polling policies: fixed thresholds vs. learned rates.
//!
//! The paper's w3newer decides when to re-check a URL from a static
//! pattern → threshold table (Table 1): every matching URL waits at
//! least `d` between checks, no matter how often it actually changes.
//! [`SchedulePolicy::Adaptive`] replaces that gate with the
//! `aide-sched` estimator: each URL is re-checked when its *expected
//! freshness gain* — the posterior probability that it changed since
//! the last poll — crosses the configured target, so volatile pages
//! are polled often and static ones rarely, from the same request
//! budget.
//!
//! The default is [`SchedulePolicy::Threshold`], and with it the
//! tracker's behaviour (and report bytes) are exactly the paper's —
//! the adaptive path is opt-in, like the retry and breaker layers.
//! Under `Adaptive`, the threshold table still supplies the `never`
//! exclusions and the proxy-currency window; only the "is it time to
//! re-check?" question moves to the estimator.

use aide_sched::AdaptiveScheduler;
use std::sync::Arc;

/// How the tracker decides whether a URL is due for a network check.
#[derive(Debug, Clone, Default)]
pub enum SchedulePolicy {
    /// The paper's behaviour: per-pattern fixed thresholds gate both
    /// user-visit recency and check recency.
    #[default]
    Threshold,
    /// Estimator-driven gating: poll when the expected gain
    /// ([`AdaptiveScheduler::gate_poll`]) says the page has probably
    /// changed. The scheduler is shared (like the circuit breaker):
    /// its learned rates are knowledge about the Web, not about one
    /// tracker instance, so clones keep feeding the same estimator.
    Adaptive(Arc<AdaptiveScheduler>),
}

impl SchedulePolicy {
    /// True for [`SchedulePolicy::Adaptive`].
    pub fn is_adaptive(&self) -> bool {
        matches!(self, SchedulePolicy::Adaptive(_))
    }

    /// The shared scheduler, when adaptive.
    pub fn scheduler(&self) -> Option<&Arc<AdaptiveScheduler>> {
        match self {
            SchedulePolicy::Threshold => None,
            SchedulePolicy::Adaptive(s) => Some(s),
        }
    }
}
