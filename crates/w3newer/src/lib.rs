//! w3newer: the scalable hotlist change tracker (§3).
//!
//! w3newer walks a user's hotlist and decides, per URL, whether the page
//! has changed since the user last saw it — while issuing as few HTTP
//! requests as possible. "It omits checks of pages already known to be
//! modified since the user last saw the page, and pages that have been
//! viewed by the user within some threshold." Modification dates come
//! from three sources in cost order: w3newer's own cache from previous
//! runs, the proxy-caching server's cache, and finally a `HEAD` request
//! (or a full `GET` plus checksum for pages without `Last-Modified`).
//! Per-URL polling frequency is governed by a pattern-matched threshold
//! configuration (Table 1), and the robot exclusion protocol is obeyed —
//! with the paper's own escape hatch flag.
//!
//! - [`config`]: the Table 1 threshold file — perl patterns to `2d` /
//!   `12h` / `0` / `never` thresholds, first match wins.
//! - [`cache`]: w3newer's persistent per-URL state (dates, checksums,
//!   robot exclusions, error counts).
//! - [`checker`]: the per-URL decision procedure and the run driver.
//! - [`retry`]: capped exponential backoff with deterministic jitter for
//!   transient network failures, plus the retry accounting surfaced in
//!   run reports.
//! - [`breaker`]: a shared per-host circuit breaker so a dead host stops
//!   absorbing the worker pool's time.
//! - [`schedule`]: the polling policy — the paper's fixed thresholds
//!   (default) or the `aide-sched` learned change-rate gate
//!   (see SCHEDULING.md).
//! - [`report`]: the Figure 1 HTML status report with
//!   Remember / Diff / History links.

pub mod breaker;
pub mod cache;
pub mod checker;
pub mod config;
pub mod priority;
pub mod report;
pub mod retry;
pub mod schedule;

pub use breaker::{Admission, BreakerConfig, BreakerStats, CircuitBreaker};
pub use cache::{TrackerCache, UrlRecord};
pub use checker::{CheckSource, Flags, RunReport, UrlReport, UrlStatus, W3Newer};
pub use config::{Threshold, ThresholdConfig};
pub use priority::{Priority, PriorityConfig};
pub use report::render_report;
pub use retry::{FetchFailure, RetryPolicy, RetrySnapshot, RetryStats, TransientFailure};
pub use schedule::SchedulePolicy;
