//! The w3newer HTML status report (Figure 1 of the paper).
//!
//! "W3newer associates three links with each document in the hotlist:
//! Remember... Diff... History" (§6). Entries are grouped — changed pages
//! first (sorted by modification date, newest first), then errors, then
//! unchecked and unchanged pages — because "merely sorting URLs by most
//! recent modification dates is not satisfactory when the number of URLs
//! grows into the hundreds" (§7).

use crate::checker::{RunReport, SkipReason, UrlStatus};
use aide_htmlkit::entity::encode_entities;

/// Where the snapshot CGI lives, for building the three action links.
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Base URL of the snapshot CGI (e.g. `http://aide.research.att.com/cgi-bin/snapshot`).
    pub snapshot_cgi: String,
    /// Include the Remember/Diff/History links.
    pub action_links: bool,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            snapshot_cgi: "/cgi-bin/snapshot".to_string(),
            action_links: true,
        }
    }
}

/// Percent-encodes a URL for inclusion in a query string.
fn urlencode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

fn action_links(url: &str, opts: &ReportOptions) -> String {
    if !opts.action_links {
        return String::new();
    }
    let enc = urlencode(url);
    format!(
        " [<A HREF=\"{cgi}?op=remember&url={enc}\">Remember</A>]\
         [<A HREF=\"{cgi}?op=diff&url={enc}\">Diff</A>]\
         [<A HREF=\"{cgi}?op=history&url={enc}\">History</A>]",
        cgi = opts.snapshot_cgi
    )
}

fn status_note(status: &UrlStatus) -> String {
    match status {
        UrlStatus::Changed {
            modified: Some(t), ..
        } => {
            format!("<B>changed</B> {}", t.to_http_date())
        }
        UrlStatus::Changed { modified: None, .. } => "<B>changed</B> (content differs)".to_string(),
        UrlStatus::Unchanged { .. } => "seen".to_string(),
        UrlStatus::NotChecked { reason } => match reason {
            SkipReason::NeverThreshold => "not checked (configured never)".to_string(),
            SkipReason::RecentlyVisited => "not checked (visited recently)".to_string(),
            SkipReason::CheckedRecently => "not checked (checked recently)".to_string(),
            SkipReason::HostError => "not checked (host error)".to_string(),
            SkipReason::RunAborted => "not checked (run aborted)".to_string(),
            SkipReason::BelowExpectedGain => "not checked (unlikely to have changed)".to_string(),
        },
        UrlStatus::RobotExcluded => "not checked (robot exclusion)".to_string(),
        UrlStatus::Error { message } => format!("<B>error</B>: {}", encode_entities(message)),
        UrlStatus::Degraded {
            message,
            last_known_modified,
        } => {
            let mut note = format!(
                "<B>stale</B> (check incomplete: {})",
                encode_entities(message)
            );
            if let Some(t) = last_known_modified {
                note.push_str(&format!("; last known modification {}", t.to_http_date()));
            }
            note
        }
    }
}

/// Renders the full report page.
///
/// # Examples
///
/// ```
/// use aide_w3newer::checker::{RunReport, UrlReport, UrlStatus, CheckSource};
/// use aide_w3newer::report::{render_report, ReportOptions};
/// use aide_w3newer::retry::RetrySnapshot;
/// use aide_util::time::Timestamp;
///
/// let report = RunReport {
///     entries: vec![UrlReport {
///         url: "http://www.usenix.org/".to_string(),
///         title: "USENIX".to_string(),
///         status: UrlStatus::Changed {
///             modified: Some(Timestamp(812345678)),
///             source: CheckSource::Head,
///         },
///         last_visited: None,
///     }],
///     started: Timestamp(812400000),
///     aborted: false,
///     net: RetrySnapshot::default(),
/// };
/// let html = render_report(&report, &ReportOptions::default());
/// assert!(html.contains("USENIX"));
/// assert!(html.contains("Remember"));
/// ```
pub fn render_report(report: &RunReport, opts: &ReportOptions) -> String {
    let mut out = String::new();
    out.push_str("<HTML><HEAD><TITLE>What's New: w3newer report</TITLE></HEAD><BODY>\n");
    out.push_str(&format!(
        "<H1>What's New</H1>\n<P>Run of {}.",
        report.started.to_http_date()
    ));
    if report.aborted {
        out.push_str(" <B>The run aborted early on repeated network errors; try again later.</B>");
    }
    out.push('\n');

    // Changed pages, newest modification first (unknown dates last).
    let mut changed: Vec<&crate::checker::UrlReport> = report
        .entries
        .iter()
        .filter(|e| e.status.is_changed())
        .collect();
    changed.sort_by(|a, b| {
        let ta = match &a.status {
            UrlStatus::Changed { modified, .. } => *modified,
            _ => None,
        };
        let tb = match &b.status {
            UrlStatus::Changed { modified, .. } => *modified,
            _ => None,
        };
        tb.cmp(&ta)
    });
    let errors: Vec<_> = report
        .entries
        .iter()
        .filter(|e| matches!(e.status, UrlStatus::Error { .. }))
        .collect();
    let stale: Vec<_> = report
        .entries
        .iter()
        .filter(|e| matches!(e.status, UrlStatus::Degraded { .. }))
        .collect();
    let rest: Vec<_> = report
        .entries
        .iter()
        .filter(|e| {
            !e.status.is_changed()
                && !matches!(
                    e.status,
                    UrlStatus::Error { .. } | UrlStatus::Degraded { .. }
                )
        })
        .collect();

    for (heading, group) in [
        ("Changed pages", changed),
        ("Problems", errors),
        ("Stale pages", stale),
        ("Everything else", rest),
    ] {
        if group.is_empty() {
            continue;
        }
        out.push_str(&format!("<H2>{heading}</H2>\n<UL>\n"));
        for e in group {
            out.push_str(&format!(
                "<LI><A HREF=\"{}\">{}</A> &#183; {}{}\n",
                e.url,
                encode_entities(&e.title),
                status_note(&e.status),
                action_links(&e.url, opts)
            ));
        }
        out.push_str("</UL>\n");
    }

    // Robustness-layer accounting, only when anything was recorded —
    // with the layer off (the default) the footer vanishes and the
    // report stays byte-identical to the original format.
    if !report.net.is_zero() {
        let n = &report.net;
        out.push_str(&format!(
            "<P><SMALL>Network health: {} attempt(s), {} retried, \
             {} recovered, {} exhausted; {} net / {} HTTP / {} truncated \
             failure(s); {} denied by open circuits; {} page(s) reported \
             stale; {}s spent backing off.</SMALL>\n",
            n.attempts,
            n.retries,
            n.recovered,
            n.exhausted,
            n.net_failures,
            n.http_failures,
            n.truncated,
            n.breaker_denied,
            n.degraded,
            n.slept_secs,
        ));
    }
    // Observability footer, only when a metrics subscriber is
    // installed — same contract as the robustness footer above: with
    // none (the default) the report stays byte-identical.
    if let Some(registry) = aide_obs::current() {
        out.push_str("<H2>Observability</H2>\n<PRE>\n");
        out.push_str(&encode_entities(&registry.render_text()));
        out.push_str("</PRE>\n");
    }
    out.push_str("</BODY></HTML>\n");
    out
}

/// Renders the prioritized variant of the report: changed pages grouped
/// by [`Priority`](crate::priority::Priority) class (the §7 Tapestry
/// direction), suppressed noise at the very bottom, everything else as
/// in [`render_report`].
pub fn render_prioritized_report(
    report: &RunReport,
    priorities: &crate::priority::PriorityConfig,
    opts: &ReportOptions,
) -> String {
    use crate::priority::{rank_changed, Priority};
    let (ranked, suppressed) = rank_changed(&report.entries, priorities);
    let mut out = String::new();
    out.push_str("<HTML><HEAD><TITLE>What's New (prioritized)</TITLE></HEAD><BODY>\n");
    out.push_str(&format!(
        "<H1>What's New</H1>\n<P>Run of {}.\n",
        report.started.to_http_date()
    ));
    let mut current: Option<Priority> = None;
    for r in &ranked {
        if current != Some(r.priority) {
            if current.is_some() {
                out.push_str("</UL>\n");
            }
            out.push_str(&format!("<H2>{:?} priority</H2>\n<UL>\n", r.priority));
            current = Some(r.priority);
        }
        out.push_str(&format!(
            "<LI><A HREF=\"{}\">{}</A> &#183; {}{}\n",
            r.entry.url,
            encode_entities(&r.entry.title),
            status_note(&r.entry.status),
            action_links(&r.entry.url, opts)
        ));
    }
    if current.is_some() {
        out.push_str("</UL>\n");
    }
    if !suppressed.is_empty() {
        out.push_str(&format!(
            "<P><SMALL>{} suppressed change(s) hidden.</SMALL>\n",
            suppressed.len()
        ));
    }
    // Errors and everything else, unranked, as in the plain report.
    let rest: Vec<&crate::checker::UrlReport> = report
        .entries
        .iter()
        .filter(|e| !e.status.is_changed())
        .collect();
    if !rest.is_empty() {
        out.push_str("<H2>Everything else</H2>\n<UL>\n");
        for e in rest {
            out.push_str(&format!(
                "<LI><A HREF=\"{}\">{}</A> &#183; {}\n",
                e.url,
                encode_entities(&e.title),
                status_note(&e.status)
            ));
        }
        out.push_str("</UL>\n");
    }
    out.push_str("</BODY></HTML>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{CheckSource, UrlReport};
    use aide_util::time::Timestamp;

    fn entry(url: &str, status: UrlStatus) -> UrlReport {
        UrlReport {
            url: url.to_string(),
            title: format!("Title <{url}>"),
            status,
            last_visited: None,
        }
    }

    fn report(entries: Vec<UrlReport>) -> RunReport {
        RunReport {
            entries,
            started: Timestamp(800_000_000),
            aborted: false,
            net: crate::retry::RetrySnapshot::default(),
        }
    }

    #[test]
    fn changed_sorted_newest_first() {
        let r = report(vec![
            entry(
                "http://old/",
                UrlStatus::Changed {
                    modified: Some(Timestamp(100)),
                    source: CheckSource::Head,
                },
            ),
            entry(
                "http://new/",
                UrlStatus::Changed {
                    modified: Some(Timestamp(900)),
                    source: CheckSource::Head,
                },
            ),
            entry(
                "http://nodate/",
                UrlStatus::Changed {
                    modified: None,
                    source: CheckSource::GetChecksum,
                },
            ),
        ]);
        let html = render_report(&r, &ReportOptions::default());
        let new_pos = html.find("http://new/").unwrap();
        let old_pos = html.find("http://old/").unwrap();
        let nodate_pos = html.find("http://nodate/").unwrap();
        assert!(new_pos < old_pos);
        assert!(old_pos < nodate_pos, "unknown dates sort last");
    }

    #[test]
    fn groups_rendered_in_order() {
        let r = report(vec![
            entry(
                "http://ok/",
                UrlStatus::Unchanged {
                    source: CheckSource::Cache,
                },
            ),
            entry(
                "http://err/",
                UrlStatus::Error {
                    message: "HTTP 404".to_string(),
                },
            ),
            entry(
                "http://ch/",
                UrlStatus::Changed {
                    modified: Some(Timestamp(5)),
                    source: CheckSource::Head,
                },
            ),
        ]);
        let html = render_report(&r, &ReportOptions::default());
        let c = html.find("Changed pages").unwrap();
        let p = html.find("Problems").unwrap();
        let e = html.find("Everything else").unwrap();
        assert!(c < p && p < e);
    }

    #[test]
    fn three_action_links_per_entry() {
        let r = report(vec![entry(
            "http://x/page?a=1",
            UrlStatus::Changed {
                modified: Some(Timestamp(5)),
                source: CheckSource::Head,
            },
        )]);
        let html = render_report(&r, &ReportOptions::default());
        assert!(html.contains("op=remember&url=http%3A%2F%2Fx%2Fpage%3Fa%3D1"));
        assert!(html.contains(">Diff</A>"));
        assert!(html.contains(">History</A>"));
    }

    #[test]
    fn action_links_can_be_disabled() {
        let r = report(vec![entry(
            "http://x/",
            UrlStatus::Unchanged {
                source: CheckSource::Head,
            },
        )]);
        let opts = ReportOptions {
            action_links: false,
            ..ReportOptions::default()
        };
        let html = render_report(&r, &opts);
        assert!(!html.contains("Remember"));
    }

    #[test]
    fn titles_are_entity_encoded() {
        let r = report(vec![entry(
            "http://x/",
            UrlStatus::Unchanged {
                source: CheckSource::Head,
            },
        )]);
        let html = render_report(&r, &ReportOptions::default());
        assert!(html.contains("Title &lt;http://x/&gt;"));
    }

    #[test]
    fn statuses_described() {
        let cases = vec![
            (UrlStatus::RobotExcluded, "robot exclusion"),
            (
                UrlStatus::NotChecked {
                    reason: SkipReason::NeverThreshold,
                },
                "configured never",
            ),
            (
                UrlStatus::NotChecked {
                    reason: SkipReason::RecentlyVisited,
                },
                "visited recently",
            ),
            (
                UrlStatus::Error {
                    message: "timeout".to_string(),
                },
                "timeout",
            ),
            (
                UrlStatus::Changed {
                    modified: None,
                    source: CheckSource::GetChecksum,
                },
                "content differs",
            ),
        ];
        for (status, needle) in cases {
            let r = report(vec![entry("http://x/", status)]);
            let html = render_report(&r, &ReportOptions::default());
            assert!(html.contains(needle), "missing {needle:?}");
        }
    }

    #[test]
    fn aborted_run_warns() {
        let mut r = report(vec![]);
        r.aborted = true;
        let html = render_report(&r, &ReportOptions::default());
        assert!(html.contains("aborted early"));
    }

    #[test]
    fn prioritized_report_groups_by_class() {
        use crate::priority::{Priority, PriorityConfig};
        let cfg = PriorityConfig::default()
            .rule(r"http://work\..*", Priority::Urgent)
            .unwrap()
            .rule(r"http://noise\..*", Priority::Suppress)
            .unwrap();
        let r = report(vec![
            entry(
                "http://fun.example/",
                UrlStatus::Changed {
                    modified: Some(Timestamp(900)),
                    source: CheckSource::Head,
                },
            ),
            entry(
                "http://work.example/",
                UrlStatus::Changed {
                    modified: Some(Timestamp(100)),
                    source: CheckSource::Head,
                },
            ),
            entry(
                "http://noise.example/",
                UrlStatus::Changed {
                    modified: None,
                    source: CheckSource::GetChecksum,
                },
            ),
            entry(
                "http://quiet.example/",
                UrlStatus::Unchanged {
                    source: CheckSource::Cache,
                },
            ),
        ]);
        let html = render_prioritized_report(&r, &cfg, &ReportOptions::default());
        let urgent = html.find("Urgent priority").unwrap();
        let normal = html.find("Normal priority").unwrap();
        assert!(urgent < normal, "urgent section first");
        assert!(
            html.find("http://work.example/").unwrap() < html.find("http://fun.example/").unwrap()
        );
        assert!(html.contains("1 suppressed change(s) hidden"));
        assert!(html.contains("Everything else"));
    }

    #[test]
    fn degraded_entries_get_their_own_stale_group() {
        let r = report(vec![
            entry(
                "http://ok/",
                UrlStatus::Unchanged {
                    source: CheckSource::Cache,
                },
            ),
            entry(
                "http://flaky/",
                UrlStatus::Degraded {
                    message: "timeout".to_string(),
                    last_known_modified: Some(Timestamp(812_345_678)),
                },
            ),
            entry(
                "http://err/",
                UrlStatus::Error {
                    message: "HTTP 404".to_string(),
                },
            ),
        ]);
        let html = render_report(&r, &ReportOptions::default());
        let p = html.find("Problems").unwrap();
        let s = html.find("Stale pages").unwrap();
        let e = html.find("Everything else").unwrap();
        assert!(p < s && s < e, "Stale pages between Problems and the rest");
        assert!(html.contains("<B>stale</B> (check incomplete: timeout)"));
        assert!(
            html.contains("last known modification"),
            "stale entries fall back to cached knowledge"
        );
    }

    #[test]
    fn net_footer_only_when_stats_recorded() {
        let quiet = report(vec![entry(
            "http://x/",
            UrlStatus::Unchanged {
                source: CheckSource::Cache,
            },
        )]);
        let html = render_report(&quiet, &ReportOptions::default());
        assert!(
            !html.contains("Network health"),
            "no footer with the robustness layer off"
        );
        let mut busy = quiet.clone();
        busy.net.attempts = 12;
        busy.net.retries = 3;
        busy.net.recovered = 2;
        let html = render_report(&busy, &ReportOptions::default());
        assert!(html.contains("Network health: 12 attempt(s), 3 retried, 2 recovered"));
    }

    #[test]
    fn urlencode_roundtrip_safety() {
        assert_eq!(urlencode("abc-._~XYZ09"), "abc-._~XYZ09");
        assert_eq!(urlencode("a b"), "a%20b");
        assert_eq!(urlencode("http://h/"), "http%3A%2F%2Fh%2F");
    }
}
