//! The w3newer threshold configuration (Table 1 of the paper).
//!
//! ```text
//! # Comments start with a sharp sign.
//! # perl syntax requires that "." be escaped
//! # Default is equivalent to ending the file with ".*"
//! Default                                          2d
//! file:.*                                          0
//! http://www\.yahoo\.com/.*                        7d
//! http://.*\.att\.com/.*                           0
//! http://www\.ncsa\.uiuc\.edu/SDG/Software/Mosaic/Docs/whats-new\.html  12h
//! http://snapple\.cs\.washington\.edu:600/mobile/  1d
//! # this is in my hotlist but will be different every day
//! http://www\.unitedmedia\.com/comics/dilbert/     never
//! ```
//!
//! "Thresholds are specified as combinations of days (d) and hours (h),
//! with 0 indicating that a page should be checked on every run of
//! w3newer and never indicating that it should never be checked...
//! The first matching pattern is used."

use aide_util::pattern::{Pattern, PatternError};
use aide_util::time::{Duration, DurationParseError};
use std::fmt;

/// A per-pattern polling threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Threshold {
    /// Check at most every `Duration` (zero = every run).
    Every(Duration),
    /// Never check this URL.
    Never,
}

impl Threshold {
    /// The "check on every run" threshold.
    pub const ALWAYS: Threshold = Threshold::Every(Duration::ZERO);
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threshold::Every(d) => write!(f, "{d}"),
            Threshold::Never => write!(f, "never"),
        }
    }
}

/// One configuration rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// The URL pattern.
    pub pattern: Pattern,
    /// The threshold applied when the pattern matches.
    pub threshold: Threshold,
}

/// Error from [`ThresholdConfig::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A pattern failed to compile; carries the line number (1-based).
    BadPattern(usize, PatternError),
    /// A threshold failed to parse; carries the line number.
    BadThreshold(usize, DurationParseError),
    /// A line had no threshold column.
    MissingThreshold(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadPattern(n, e) => write!(f, "line {n}: {e}"),
            ConfigError::BadThreshold(n, e) => write!(f, "line {n}: {e}"),
            ConfigError::MissingThreshold(n) => write!(f, "line {n}: missing threshold"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The ordered rule list plus default.
#[derive(Debug, Clone)]
pub struct ThresholdConfig {
    rules: Vec<Rule>,
    default: Threshold,
}

impl Default for ThresholdConfig {
    /// The out-of-the-box default: check everything every run (plain
    /// w3new behaviour — no savings).
    fn default() -> Self {
        ThresholdConfig {
            rules: Vec::new(),
            default: Threshold::ALWAYS,
        }
    }
}

impl ThresholdConfig {
    /// Builds a config programmatically.
    pub fn new(default: Threshold) -> ThresholdConfig {
        ThresholdConfig {
            rules: Vec::new(),
            default,
        }
    }

    /// Appends a rule (builder style). Rules match in insertion order.
    pub fn rule(mut self, pattern: &str, threshold: Threshold) -> Result<Self, PatternError> {
        self.rules.push(Rule {
            pattern: Pattern::new(pattern)?,
            threshold,
        });
        Ok(self)
    }

    /// Parses the configuration file format.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_w3newer::config::{Threshold, ThresholdConfig};
    /// use aide_util::time::Duration;
    ///
    /// let cfg = ThresholdConfig::parse(
    ///     "# comment\nDefault 2d\nfile:.* 0\nhttp://www\\.yahoo\\.com/.* 7d\n",
    /// ).unwrap();
    /// assert_eq!(cfg.threshold_for("file:/etc/motd"), Threshold::ALWAYS);
    /// assert_eq!(
    ///     cfg.threshold_for("http://www.yahoo.com/x"),
    ///     Threshold::Every(Duration::days(7))
    /// );
    /// assert_eq!(
    ///     cfg.threshold_for("http://other.com/"),
    ///     Threshold::Every(Duration::days(2))
    /// );
    /// ```
    pub fn parse(text: &str) -> Result<ThresholdConfig, ConfigError> {
        let mut cfg = ThresholdConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(pattern_src) = parts.next() else {
                continue; // unreachable: the trimmed line is non-empty
            };
            let threshold_src = parts.next().ok_or(ConfigError::MissingThreshold(lineno))?;
            let threshold = if threshold_src.eq_ignore_ascii_case("never") {
                Threshold::Never
            } else {
                Threshold::Every(
                    Duration::parse(threshold_src)
                        .map_err(|e| ConfigError::BadThreshold(lineno, e))?,
                )
            };
            if pattern_src == "Default" {
                cfg.default = threshold;
            } else {
                cfg.rules.push(Rule {
                    pattern: Pattern::new(pattern_src)
                        .map_err(|e| ConfigError::BadPattern(lineno, e))?,
                    threshold,
                });
            }
        }
        Ok(cfg)
    }

    /// The threshold for `url`: first matching rule, else the default.
    pub fn threshold_for(&self, url: &str) -> Threshold {
        for rule in &self.rules {
            if rule.pattern.matches(url) {
                return rule.threshold;
            }
        }
        self.default
    }

    /// The default threshold.
    pub fn default_threshold(&self) -> Threshold {
        self.default
    }

    /// Number of explicit rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if only the default applies.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The exact configuration of Table 1, as a parsable string.
    pub fn table1_text() -> &'static str {
        "# Comments start with a sharp sign.\n\
         # perl syntax requires that \".\" be escaped\n\
         # Default is equivalent to ending the file with \".*\"\n\
         Default 2d\n\
         file:.* 0\n\
         http://www\\.yahoo\\.com/.* 7d\n\
         http://.*\\.att\\.com/.* 0\n\
         http://www\\.ncsa\\.uiuc\\.edu/SDG/Software/Mosaic/Docs/whats-new\\.html 12h\n\
         http://snapple\\.cs\\.washington\\.edu:600/mobile/ 1d\n\
         # this is in my hotlist but will be different every day\n\
         http://www\\.unitedmedia\\.com/comics/dilbert/ never\n"
    }

    /// The parsed Table 1 configuration.
    ///
    /// # Panics
    ///
    /// Never in practice: the embedded text is tested to parse.
    pub fn table1() -> ThresholdConfig {
        // aide-lint: allow(no-panic): the embedded Table 1 text is
        // static and covered by tests; see the documented panic contract
        ThresholdConfig::parse(Self::table1_text()).expect("Table 1 config parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_thresholds_match_the_paper() {
        let cfg = ThresholdConfig::table1();
        assert_eq!(cfg.default_threshold(), Threshold::Every(Duration::days(2)));
        assert_eq!(
            cfg.threshold_for("file:/home/douglis/x.html"),
            Threshold::ALWAYS
        );
        assert_eq!(
            cfg.threshold_for("http://www.yahoo.com/headlines/current/"),
            Threshold::Every(Duration::days(7))
        );
        assert_eq!(
            cfg.threshold_for("http://www.research.att.com/orgs/ssr/"),
            Threshold::ALWAYS
        );
        assert_eq!(
            cfg.threshold_for("http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html"),
            Threshold::Every(Duration::hours(12))
        );
        assert_eq!(
            cfg.threshold_for("http://snapple.cs.washington.edu:600/mobile/"),
            Threshold::Every(Duration::days(1))
        );
        assert_eq!(
            cfg.threshold_for("http://www.unitedmedia.com/comics/dilbert/"),
            Threshold::Never
        );
        // Unmatched URLs take the default.
        assert_eq!(
            cfg.threshold_for("http://www.usenix.org/"),
            Threshold::Every(Duration::days(2))
        );
    }

    #[test]
    fn first_match_wins() {
        let cfg = ThresholdConfig::new(Threshold::Never)
            .rule("http://a\\.com/.*", Threshold::Every(Duration::days(1)))
            .unwrap()
            .rule("http://a\\.com/special\\.html", Threshold::ALWAYS)
            .unwrap();
        // The broad rule precedes the specific one, so it wins.
        assert_eq!(
            cfg.threshold_for("http://a.com/special.html"),
            Threshold::Every(Duration::days(1))
        );
    }

    #[test]
    fn default_line_anywhere() {
        let cfg = ThresholdConfig::parse("http://x/.* 1d\nDefault 3d\n").unwrap();
        assert_eq!(
            cfg.threshold_for("http://y/"),
            Threshold::Every(Duration::days(3))
        );
    }

    #[test]
    fn comments_and_blanks() {
        let cfg = ThresholdConfig::parse("\n# full comment\nhttp://x/ 1d # trailing\n\n").unwrap();
        assert_eq!(cfg.len(), 1);
        assert_eq!(
            cfg.threshold_for("http://x/"),
            Threshold::Every(Duration::days(1))
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert!(matches!(
            ThresholdConfig::parse("http://x/\n"),
            Err(ConfigError::MissingThreshold(1))
        ));
        assert!(matches!(
            ThresholdConfig::parse("# ok\nhttp://x/ 2q\n"),
            Err(ConfigError::BadThreshold(2, _))
        ));
        assert!(matches!(
            ThresholdConfig::parse("(unclosed 1d\n"),
            Err(ConfigError::BadPattern(1, _))
        ));
    }

    #[test]
    fn never_is_case_insensitive() {
        let cfg = ThresholdConfig::parse("http://x/ NEVER\n").unwrap();
        assert_eq!(cfg.threshold_for("http://x/"), Threshold::Never);
    }

    #[test]
    fn empty_config_checks_everything() {
        let cfg = ThresholdConfig::default();
        assert!(cfg.is_empty());
        assert_eq!(cfg.threshold_for("http://anything/"), Threshold::ALWAYS);
    }

    #[test]
    fn threshold_display() {
        assert_eq!(Threshold::Every(Duration::days(2)).to_string(), "2d");
        assert_eq!(Threshold::Never.to_string(), "never");
        assert_eq!(Threshold::ALWAYS.to_string(), "0");
    }
}
