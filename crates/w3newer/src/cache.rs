//! w3newer's persistent per-URL state.
//!
//! §3 names "a cached modification date from previous runs of w3newer" as
//! the cheapest modification source, and §3.1 requires that robot
//! exclusions be cached ("that fact is cached so the page is not accessed
//! again unless a special flag is set") and suggests "a running counter
//! of the number of times an error is encountered for a particular URL".
//! All of that lives here, with a line-oriented text format so the state
//! survives between runs the way the perl script's dbm file did.

use aide_util::checksum::PageChecksum;
use aide_util::time::Timestamp;
use std::collections::BTreeMap;

/// Cached state for one URL.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UrlRecord {
    /// Last known `Last-Modified` value.
    pub last_modified: Option<Timestamp>,
    /// When the modification information was obtained (staleness base).
    pub info_obtained: Option<Timestamp>,
    /// When w3newer last actually checked this URL (threshold base).
    pub last_checked: Option<Timestamp>,
    /// Content checksum, for pages without `Last-Modified`.
    pub checksum: Option<PageChecksum>,
    /// The URL is excluded by `robots.txt`.
    pub robots_excluded: bool,
    /// Consecutive errors encountered checking this URL.
    pub error_count: u32,
    /// Description of the most recent error.
    pub last_error: Option<String>,
    /// Consecutive runs this URL was reported stale (robustness layer's
    /// graceful degradation) rather than checked or errored.
    pub degraded_count: u32,
}

/// The whole cache: URL → record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrackerCache {
    records: BTreeMap<String, UrlRecord>,
}

impl TrackerCache {
    /// Creates an empty cache.
    pub fn new() -> TrackerCache {
        TrackerCache::default()
    }

    /// The record for `url`, if cached.
    pub fn get(&self, url: &str) -> Option<&UrlRecord> {
        self.records.get(url)
    }

    /// Mutable record for `url`, created on demand.
    pub fn entry(&mut self, url: &str) -> &mut UrlRecord {
        self.records.entry(url.to_string()).or_default()
    }

    /// Inserts (replacing) the record for `url`.
    pub fn insert(&mut self, url: &str, rec: UrlRecord) {
        self.records.insert(url.to_string(), rec);
    }

    /// All `(url, record)` pairs, in URL order.
    pub fn records(&self) -> impl Iterator<Item = (&str, &UrlRecord)> {
        self.records.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of cached URLs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes to the text format: one URL per line,
    /// `url\tfield=value\tfield=value...`.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        for (url, r) in &self.records {
            out.push_str(url);
            if let Some(t) = r.last_modified {
                out.push_str(&format!("\tlm={}", t.0));
            }
            if let Some(t) = r.info_obtained {
                out.push_str(&format!("\tio={}", t.0));
            }
            if let Some(t) = r.last_checked {
                out.push_str(&format!("\tlc={}", t.0));
            }
            if let Some(c) = r.checksum {
                out.push_str(&format!("\tck={}:{}", c.crc, c.len));
            }
            if r.robots_excluded {
                out.push_str("\trobots=1");
            }
            if r.error_count > 0 {
                out.push_str(&format!("\terr={}", r.error_count));
            }
            if r.degraded_count > 0 {
                out.push_str(&format!("\tdeg={}", r.degraded_count));
            }
            if let Some(e) = &r.last_error {
                out.push_str(&format!("\tmsg={}", e.replace(['\t', '\n'], " ")));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format; unknown fields and malformed lines are
    /// skipped.
    pub fn parse(text: &str) -> TrackerCache {
        let mut cache = TrackerCache::new();
        for line in text.lines() {
            let mut parts = line.split('\t');
            let Some(url) = parts.next() else { continue };
            if url.is_empty() {
                continue;
            }
            let mut rec = UrlRecord::default();
            for field in parts {
                let Some((k, v)) = field.split_once('=') else {
                    continue;
                };
                match k {
                    "lm" => rec.last_modified = v.parse().ok().map(Timestamp),
                    "io" => rec.info_obtained = v.parse().ok().map(Timestamp),
                    "lc" => rec.last_checked = v.parse().ok().map(Timestamp),
                    "ck" => {
                        if let Some((crc, len)) = v.split_once(':') {
                            if let (Ok(crc), Ok(len)) = (crc.parse(), len.parse()) {
                                rec.checksum = Some(PageChecksum { crc, len });
                            }
                        }
                    }
                    "robots" => rec.robots_excluded = v == "1",
                    "err" => rec.error_count = v.parse().unwrap_or(0),
                    "deg" => rec.degraded_count = v.parse().unwrap_or(0),
                    "msg" => rec.last_error = Some(v.to_string()),
                    _ => {}
                }
            }
            cache.records.insert(url.to_string(), rec);
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_creates_and_get_reads() {
        let mut c = TrackerCache::new();
        assert!(c.get("http://x/").is_none());
        c.entry("http://x/").last_modified = Some(Timestamp(99));
        assert_eq!(
            c.get("http://x/").unwrap().last_modified,
            Some(Timestamp(99))
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn full_roundtrip() {
        let mut c = TrackerCache::new();
        {
            let r = c.entry("http://a/");
            r.last_modified = Some(Timestamp(100));
            r.info_obtained = Some(Timestamp(200));
            r.last_checked = Some(Timestamp(300));
            r.checksum = Some(PageChecksum {
                crc: 0xDEAD_BEEF,
                len: 1234,
            });
            r.robots_excluded = true;
            r.error_count = 3;
            r.last_error = Some("timeout".to_string());
            r.degraded_count = 2;
        }
        c.entry("http://b/").last_checked = Some(Timestamp(5));
        let parsed = TrackerCache::parse(&c.emit());
        assert_eq!(parsed, c);
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut c = TrackerCache::new();
        c.entry("http://bare/");
        let parsed = TrackerCache::parse(&c.emit());
        assert_eq!(parsed, c);
    }

    #[test]
    fn error_message_with_tabs_flattened() {
        let mut c = TrackerCache::new();
        c.entry("http://x/").last_error = Some("multi\tfield\nerror".to_string());
        let parsed = TrackerCache::parse(&c.emit());
        assert_eq!(
            parsed.get("http://x/").unwrap().last_error.as_deref(),
            Some("multi field error")
        );
    }

    #[test]
    fn malformed_lines_skipped() {
        let c = TrackerCache::parse("\nhttp://ok/\tlm=5\n\tlm=9\nhttp://alsook/\tbogusfield\n");
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.get("http://ok/").unwrap().last_modified,
            Some(Timestamp(5))
        );
        assert_eq!(c.get("http://alsook/").unwrap(), &UrlRecord::default());
    }
}
