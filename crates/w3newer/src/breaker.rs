//! Per-host circuit breaker for the tracker's worker pool.
//!
//! Retries handle *transient* flakiness; a breaker handles *sustained*
//! failure. When a host fails `failure_threshold` consecutive times the
//! circuit opens and every further request to that host is denied
//! without touching the network, until a cool-down elapses. The first
//! request after cool-down is admitted as a *probe* (half-open): its
//! success closes the circuit, its failure re-opens it with a doubled
//! cool-down (capped), the classic pattern. One breaker is shared by
//! every worker in a pool — the state table is sharded by host hash so
//! workers polling different hosts never contend on one lock, matching
//! the per-key lock-table idiom used across the engine.
//!
//! All timing uses the virtual [`Clock`](aide_util::time::Clock)'s
//! timestamps, so breaker behaviour is as replayable as everything else.

use aide_util::checksum::fnv1a64;
use aide_util::sync::Mutex;
use aide_util::time::{Duration, Timestamp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the circuit open.
    pub failure_threshold: u32,
    /// Initial cool-down once open.
    pub cooldown: Duration,
    /// Ceiling for the doubling cool-down on repeated probe failures.
    pub max_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::minutes(5),
            max_cooldown: Duration::hours(2),
        }
    }
}

/// The answer to "may I contact this host right now?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed — go ahead.
    Allowed,
    /// Circuit was open, cool-down has elapsed — this caller is the one
    /// half-open probe. Report the outcome.
    Probe,
    /// Circuit open (or another probe is in flight) — do not contact
    /// the host.
    Denied,
}

#[derive(Debug, Clone, Copy)]
enum HostState {
    Closed {
        fails: u32,
    },
    Open {
        until: Timestamp,
        cooldown: Duration,
    },
    /// A probe is in flight; everyone else is denied until it reports.
    HalfOpen {
        cooldown: Duration,
    },
}

/// Counters for breaker activity, snapshot with
/// [`CircuitBreaker::stats`].
#[derive(Debug, Default)]
struct BreakerCounters {
    opened: AtomicU64,
    reopened: AtomicU64,
    closed: AtomicU64,
    denials: AtomicU64,
    probes: AtomicU64,
}

/// Plain-value view of breaker activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerStats {
    /// Circuits tripped open from closed.
    pub opened: u64,
    /// Probes that failed, re-opening with a doubled cool-down.
    pub reopened: u64,
    /// Circuits closed again after a successful probe.
    pub closed: u64,
    /// Requests denied without touching the network.
    pub denials: u64,
    /// Half-open probes admitted.
    pub probes: u64,
}

impl BreakerStats {
    /// Publishes every field as a `w3newer.breaker.*` gauge on the
    /// installed observability subscriber; no-op without one. The
    /// breaker's own atomics stay the source of truth — this mirrors
    /// them into the registry at export time.
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        aide_obs::gauge("w3newer.breaker.opened", self.opened);
        aide_obs::gauge("w3newer.breaker.reopened", self.reopened);
        aide_obs::gauge("w3newer.breaker.closed", self.closed);
        aide_obs::gauge("w3newer.breaker.denials", self.denials);
        aide_obs::gauge("w3newer.breaker.probes", self.probes);
    }
}

/// A shared per-host circuit breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    shards: Vec<Mutex<HashMap<String, HostState>>>,
    counters: BreakerCounters,
}

impl CircuitBreaker {
    /// Creates a breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            counters: BreakerCounters::default(),
        }
    }

    /// The tuning this breaker was built with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    fn shard(&self, host: &str) -> &Mutex<HashMap<String, HostState>> {
        &self.shards[(fnv1a64(host.as_bytes()) as usize) % SHARDS]
    }

    /// Asks permission to contact `host` at time `now`.
    pub fn admit(&self, host: &str, now: Timestamp) -> Admission {
        let mut shard = self.shard(host).lock();
        let state = shard
            .entry(host.to_string())
            .or_insert(HostState::Closed { fails: 0 });
        match *state {
            HostState::Closed { .. } => Admission::Allowed,
            HostState::Open { until, cooldown } => {
                if now >= until {
                    *state = HostState::HalfOpen { cooldown };
                    self.counters.probes.fetch_add(1, Ordering::Relaxed);
                    Admission::Probe
                } else {
                    self.counters.denials.fetch_add(1, Ordering::Relaxed);
                    Admission::Denied
                }
            }
            HostState::HalfOpen { .. } => {
                self.counters.denials.fetch_add(1, Ordering::Relaxed);
                Admission::Denied
            }
        }
    }

    /// Reports a successful request to `host`.
    pub fn record_success(&self, host: &str) {
        let mut shard = self.shard(host).lock();
        match shard.get_mut(host) {
            Some(state @ HostState::HalfOpen { .. }) => {
                *state = HostState::Closed { fails: 0 };
                self.counters.closed.fetch_add(1, Ordering::Relaxed);
                aide_obs::counter("w3newer.breaker.transition.closed", 1);
            }
            Some(HostState::Closed { fails }) => *fails = 0,
            // A success while open can only come from a request admitted
            // before the circuit tripped; the open verdict stands.
            Some(HostState::Open { .. }) | None => {}
        }
    }

    /// Reports a failed request to `host` at time `now`.
    pub fn record_failure(&self, host: &str, now: Timestamp) {
        let mut shard = self.shard(host).lock();
        let state = shard
            .entry(host.to_string())
            .or_insert(HostState::Closed { fails: 0 });
        match *state {
            HostState::Closed { fails } => {
                let fails = fails + 1;
                if fails >= self.config.failure_threshold {
                    *state = HostState::Open {
                        until: now + self.config.cooldown,
                        cooldown: self.config.cooldown,
                    };
                    self.counters.opened.fetch_add(1, Ordering::Relaxed);
                    aide_obs::counter("w3newer.breaker.transition.opened", 1);
                } else {
                    *state = HostState::Closed { fails };
                }
            }
            HostState::HalfOpen { cooldown } => {
                let doubled = Duration::seconds(
                    (cooldown.as_secs() * 2).min(self.config.max_cooldown.as_secs()),
                );
                *state = HostState::Open {
                    until: now + doubled,
                    cooldown: doubled,
                };
                self.counters.reopened.fetch_add(1, Ordering::Relaxed);
                aide_obs::counter("w3newer.breaker.transition.reopened", 1);
            }
            // Already open: nothing to escalate.
            HostState::Open { .. } => {}
        }
    }

    /// True if the circuit for `host` is currently open or half-open.
    pub fn is_open(&self, host: &str) -> bool {
        let shard = self.shard(host).lock();
        matches!(
            shard.get(host),
            Some(HostState::Open { .. }) | Some(HostState::HalfOpen { .. })
        )
    }

    /// Plain-value copy of the activity counters.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            opened: self.counters.opened.load(Ordering::Relaxed),
            reopened: self.counters.reopened.load(Ordering::Relaxed),
            closed: self.counters.closed.load(Ordering::Relaxed),
            denials: self.counters.denials.load(Ordering::Relaxed),
            probes: self.counters.probes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::seconds(100),
            max_cooldown: Duration::seconds(350),
        })
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = breaker();
        b.record_failure("h", Timestamp(0));
        b.record_failure("h", Timestamp(1));
        assert_eq!(b.admit("h", Timestamp(2)), Admission::Allowed);
        assert!(!b.is_open("h"));
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker();
        b.record_failure("h", Timestamp(0));
        b.record_failure("h", Timestamp(1));
        b.record_success("h");
        b.record_failure("h", Timestamp(2));
        b.record_failure("h", Timestamp(3));
        assert_eq!(b.admit("h", Timestamp(4)), Admission::Allowed);
    }

    #[test]
    fn opens_at_threshold_and_denies_until_cooldown() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("h", Timestamp(t));
        }
        assert!(b.is_open("h"));
        assert_eq!(b.admit("h", Timestamp(50)), Admission::Denied);
        assert_eq!(b.admit("h", Timestamp(101)), Admission::Denied);
        // Opened at t=2, cooldown 100 → probe allowed at t=102.
        assert_eq!(b.admit("h", Timestamp(102)), Admission::Probe);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("h", Timestamp(t));
        }
        assert_eq!(b.admit("h", Timestamp(200)), Admission::Probe);
        assert_eq!(b.admit("h", Timestamp(200)), Admission::Denied);
        assert_eq!(b.admit("h", Timestamp(201)), Admission::Denied);
    }

    #[test]
    fn probe_success_closes() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("h", Timestamp(t));
        }
        assert_eq!(b.admit("h", Timestamp(200)), Admission::Probe);
        b.record_success("h");
        assert_eq!(b.admit("h", Timestamp(201)), Admission::Allowed);
        assert!(!b.is_open("h"));
        assert_eq!(b.stats().closed, 1);
    }

    #[test]
    fn probe_failure_reopens_with_doubled_cooldown() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("h", Timestamp(t));
        }
        assert_eq!(b.admit("h", Timestamp(200)), Admission::Probe);
        b.record_failure("h", Timestamp(200));
        // Doubled cool-down: 200 s from t=200 → probe at t=400.
        assert_eq!(b.admit("h", Timestamp(399)), Admission::Denied);
        assert_eq!(b.admit("h", Timestamp(400)), Admission::Probe);
        // Another failure: 400 s would exceed the 350 s cap.
        b.record_failure("h", Timestamp(400));
        assert_eq!(b.admit("h", Timestamp(749)), Admission::Denied);
        assert_eq!(b.admit("h", Timestamp(750)), Admission::Probe);
        assert_eq!(b.stats().reopened, 2);
    }

    #[test]
    fn hosts_are_independent() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("dead", Timestamp(t));
        }
        assert_eq!(b.admit("alive", Timestamp(10)), Admission::Allowed);
        assert_eq!(b.admit("dead", Timestamp(10)), Admission::Denied);
    }

    #[test]
    fn counters_reconcile() {
        let b = breaker();
        for t in 0..3 {
            b.record_failure("h", Timestamp(t));
        }
        assert_eq!(b.admit("h", Timestamp(10)), Admission::Denied);
        assert_eq!(b.admit("h", Timestamp(200)), Admission::Probe);
        b.record_success("h");
        let s = b.stats();
        assert_eq!(s.opened, 1);
        assert_eq!(s.denials, 1);
        assert_eq!(s.probes, 1);
        assert_eq!(s.closed, 1);
        assert_eq!(s.reopened, 0);
    }
}
