//! User-specified URL prioritization (§7's "information overload" fix).
//!
//! "Merely sorting URLs by most recent modification dates is not
//! satisfactory when the number of URLs grows into the hundreds.
//! Instead, we are moving toward a user-specified prioritization of URLs
//! along the lines of the Tapestry system, which prioritizes email and
//! NetNews automatically." The paper left this unimplemented; this
//! module implements it: a pattern→priority configuration in the same
//! first-match-wins style as the threshold file, combined with recency
//! into a ranking over report entries.

use crate::checker::{UrlReport, UrlStatus};
use aide_util::pattern::{Pattern, PatternError};
use aide_util::time::Timestamp;

/// Priority levels, Tapestry-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Never show in the ranked section (but still listed at the end).
    Suppress,
    /// Background interest.
    Low,
    /// Default.
    Normal,
    /// Important to this user.
    High,
    /// Show first, always.
    Urgent,
}

impl Priority {
    fn rank(self) -> u8 {
        match self {
            Priority::Suppress => 0,
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 3,
            Priority::Urgent => 4,
        }
    }

    /// Parses `urgent`/`high`/`normal`/`low`/`suppress` (any case).
    pub fn parse(s: &str) -> Option<Priority> {
        match s.to_ascii_lowercase().as_str() {
            "urgent" => Some(Priority::Urgent),
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            "suppress" => Some(Priority::Suppress),
            _ => None,
        }
    }
}

/// A pattern→priority rule list with a default, first match wins —
/// deliberately the same shape as the threshold configuration so users
/// learn one syntax.
#[derive(Debug, Clone)]
pub struct PriorityConfig {
    rules: Vec<(Pattern, Priority)>,
    default: Priority,
}

impl Default for PriorityConfig {
    fn default() -> Self {
        PriorityConfig {
            rules: Vec::new(),
            default: Priority::Normal,
        }
    }
}

/// Error from [`PriorityConfig::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityConfigError {
    /// Bad pattern at a 1-based line.
    BadPattern(usize, PatternError),
    /// Unknown priority word at a 1-based line.
    BadPriority(usize, String),
    /// Missing priority column at a 1-based line.
    Missing(usize),
}

impl std::fmt::Display for PriorityConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriorityConfigError::BadPattern(n, e) => write!(f, "line {n}: {e}"),
            PriorityConfigError::BadPriority(n, w) => write!(f, "line {n}: unknown priority {w:?}"),
            PriorityConfigError::Missing(n) => write!(f, "line {n}: missing priority"),
        }
    }
}

impl std::error::Error for PriorityConfigError {}

impl PriorityConfig {
    /// Builds programmatically (builder style).
    pub fn rule(mut self, pattern: &str, priority: Priority) -> Result<Self, PatternError> {
        self.rules.push((Pattern::new(pattern)?, priority));
        Ok(self)
    }

    /// Parses the file format: `<pattern> <priority>` lines, `#`
    /// comments, and `Default <priority>`.
    ///
    /// # Examples
    ///
    /// ```
    /// use aide_w3newer::priority::{Priority, PriorityConfig};
    ///
    /// let cfg = PriorityConfig::parse(
    ///     "http://.*\\.att\\.com/.* urgent\nhttp://www\\.yahoo\\.com/.* low\nDefault normal\n",
    /// ).unwrap();
    /// assert_eq!(cfg.priority_for("http://www.att.com/x"), Priority::Urgent);
    /// assert_eq!(cfg.priority_for("http://elsewhere/"), Priority::Normal);
    /// ```
    pub fn parse(text: &str) -> Result<PriorityConfig, PriorityConfigError> {
        let mut cfg = PriorityConfig::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(pat) = parts.next() else {
                continue; // unreachable: the trimmed line is non-empty
            };
            let word = parts.next().ok_or(PriorityConfigError::Missing(lineno))?;
            let priority = Priority::parse(word)
                .ok_or_else(|| PriorityConfigError::BadPriority(lineno, word.to_string()))?;
            if pat == "Default" {
                cfg.default = priority;
            } else {
                cfg.rules.push((
                    Pattern::new(pat).map_err(|e| PriorityConfigError::BadPattern(lineno, e))?,
                    priority,
                ));
            }
        }
        Ok(cfg)
    }

    /// The priority for `url` (first matching rule, else default).
    pub fn priority_for(&self, url: &str) -> Priority {
        for (p, prio) in &self.rules {
            if p.matches(url) {
                return *prio;
            }
        }
        self.default
    }
}

/// A report entry with its computed rank.
#[derive(Debug, Clone)]
pub struct RankedEntry<'a> {
    /// The underlying report entry.
    pub entry: &'a UrlReport,
    /// Its priority class.
    pub priority: Priority,
}

/// Ranks the *changed* entries of a report: priority class first, then
/// recency of modification; suppressed entries are returned separately.
pub fn rank_changed<'a>(
    entries: &'a [UrlReport],
    config: &PriorityConfig,
) -> (Vec<RankedEntry<'a>>, Vec<&'a UrlReport>) {
    let mut ranked = Vec::new();
    let mut suppressed = Vec::new();
    for entry in entries {
        if !entry.status.is_changed() {
            continue;
        }
        let priority = config.priority_for(&entry.url);
        if priority == Priority::Suppress {
            suppressed.push(entry);
        } else {
            ranked.push(RankedEntry { entry, priority });
        }
    }
    ranked.sort_by(|a, b| {
        b.priority
            .rank()
            .cmp(&a.priority.rank())
            .then_with(|| modified_of(b.entry).cmp(&modified_of(a.entry)))
            .then_with(|| a.entry.url.cmp(&b.entry.url))
    });
    (ranked, suppressed)
}

fn modified_of(e: &UrlReport) -> Option<Timestamp> {
    match &e.status {
        UrlStatus::Changed { modified, .. } => *modified,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::CheckSource;

    fn changed(url: &str, t: u64) -> UrlReport {
        UrlReport {
            url: url.to_string(),
            title: url.to_string(),
            status: UrlStatus::Changed {
                modified: Some(Timestamp(t)),
                source: CheckSource::Head,
            },
            last_visited: None,
        }
    }

    fn unchanged(url: &str) -> UrlReport {
        UrlReport {
            url: url.to_string(),
            title: url.to_string(),
            status: UrlStatus::Unchanged {
                source: CheckSource::Head,
            },
            last_visited: None,
        }
    }

    fn config() -> PriorityConfig {
        PriorityConfig::default()
            .rule(r"http://work\..*", Priority::Urgent)
            .unwrap()
            .rule(r"http://fun\..*", Priority::Low)
            .unwrap()
            .rule(r"http://noise\..*", Priority::Suppress)
            .unwrap()
    }

    #[test]
    fn priority_beats_recency() {
        let entries = vec![
            changed("http://fun.example/new", 9_000),
            changed("http://work.example/old", 1_000),
        ];
        let (ranked, _) = rank_changed(&entries, &config());
        assert_eq!(ranked[0].entry.url, "http://work.example/old");
        assert_eq!(ranked[0].priority, Priority::Urgent);
    }

    #[test]
    fn recency_breaks_ties_within_class() {
        let entries = vec![
            changed("http://a.example/older", 1_000),
            changed("http://b.example/newer", 2_000),
        ];
        let (ranked, _) = rank_changed(&entries, &config());
        assert_eq!(ranked[0].entry.url, "http://b.example/newer");
    }

    #[test]
    fn suppressed_split_out() {
        let entries = vec![
            changed("http://noise.example/counter", 9_999),
            changed("http://a.example/real", 1),
        ];
        let (ranked, suppressed) = rank_changed(&entries, &config());
        assert_eq!(ranked.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].url, "http://noise.example/counter");
    }

    #[test]
    fn unchanged_entries_ignored() {
        let entries = vec![unchanged("http://work.example/x"), changed("http://a/", 1)];
        let (ranked, suppressed) = rank_changed(&entries, &config());
        assert_eq!(ranked.len(), 1);
        assert!(suppressed.is_empty());
    }

    #[test]
    fn parse_file_format() {
        let cfg =
            PriorityConfig::parse("# priorities\nDefault low\nhttp://urgent\\.example/.* URGENT\n")
                .unwrap();
        assert_eq!(
            cfg.priority_for("http://urgent.example/x"),
            Priority::Urgent
        );
        assert_eq!(cfg.priority_for("http://other/"), Priority::Low);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            PriorityConfig::parse("http://x/\n"),
            Err(PriorityConfigError::Missing(1))
        ));
        assert!(matches!(
            PriorityConfig::parse("http://x/ mega\n"),
            Err(PriorityConfigError::BadPriority(1, _))
        ));
        assert!(matches!(
            PriorityConfig::parse("(bad high\n"),
            Err(PriorityConfigError::BadPattern(1, _))
        ));
    }

    #[test]
    fn priority_word_parsing() {
        assert_eq!(Priority::parse("Urgent"), Some(Priority::Urgent));
        assert_eq!(Priority::parse("SUPPRESS"), Some(Priority::Suppress));
        assert_eq!(Priority::parse("mid"), None);
    }

    #[test]
    fn ordering_of_levels() {
        assert!(Priority::Urgent > Priority::High);
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert!(Priority::Low > Priority::Suppress);
    }
}
