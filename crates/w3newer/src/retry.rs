//! Retry policy and accounting for the tracker's network layer.
//!
//! The paper's w3newer treats every network error as terminal: one
//! transient timeout and the URL is reported as an error (or silently
//! unchecked), the dominant source of missed changes in polling
//! trackers. [`RetryPolicy`] adds capped exponential backoff with
//! deterministic jitter, driven entirely by the simulated clock: sleeps
//! *advance* the [`Clock`](aide_util::time::Clock), so a test can
//! replay a retry storm instantly and byte-identically.
//!
//! The classification contract (see DESIGN.md §4f):
//!
//! - **retryable** — timeouts, unreachable hosts, refused connections,
//!   HTTP 500/503 (honouring `Retry-After`), truncated bodies;
//! - **terminal** — unknown hosts, every other HTTP status (404, 403,
//!   410, 301), robots denials, bad URLs. Zero retries, ever.
//!
//! The default policy is [`RetryPolicy::disabled`]: the tracker behaves
//! exactly as the paper describes unless robustness is switched on.

use aide_simweb::http::{NetError, Status};
use aide_util::checksum::fnv1a64;
use aide_util::rng::Rng;
use aide_util::time::Duration;
use std::sync::atomic::{AtomicU64, Ordering};

/// Exponential backoff with deterministic jitter, capped attempts and a
/// per-check sleep budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first. `1` disables
    /// retries entirely.
    pub max_attempts: u32,
    /// Delay after the first failure; doubles per subsequent failure.
    pub base_delay: Duration,
    /// Ceiling on any single delay (raw + jitter).
    pub max_delay: Duration,
    /// Ceiling on the *total* time slept for one request's retries.
    pub budget: Duration,
    /// Seed for the jitter stream. Jitter is a pure function of
    /// `(jitter_seed, url, attempt)` — identical across runs.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No retries: attempt once, fail like the 1996 tracker did.
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            budget: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// A sensible default for a flaky web: 4 attempts, 5 s base delay
    /// doubling to a 60 s cap, at most 2 minutes asleep per check.
    pub fn standard(jitter_seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::seconds(5),
            max_delay: Duration::seconds(60),
            budget: Duration::minutes(2),
            jitter_seed,
        }
    }

    /// True when the policy will ever retry.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// The backoff delay after the `attempt`-th failure (1-based).
    ///
    /// `min(base * 2^(attempt-1), max)` plus jitter in `[0, raw/2]`,
    /// clamped to `max`. Monotone non-decreasing in `attempt` up to the
    /// cap: the jittered delay is at most `1.5 * raw(a)`, which never
    /// exceeds the next raw step `2 * raw(a)`, and the clamp is shared.
    pub fn delay_for(&self, url: &str, attempt: u32) -> Duration {
        let raw = self
            .base_delay
            .as_secs()
            .saturating_mul(
                1u64.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u64::MAX),
            )
            .min(self.max_delay.as_secs());
        let jitter = if raw == 0 {
            0
        } else {
            let mut rng = Rng::new(
                self.jitter_seed ^ fnv1a64(url.as_bytes()).rotate_left(7) ^ u64::from(attempt),
            );
            rng.below(raw / 2 + 1)
        };
        Duration::seconds((raw + jitter).min(self.max_delay.as_secs()))
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::disabled()
    }
}

/// A failure the retry layer may act on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransientFailure {
    /// A retryable network error (timeout, unreachable, refused).
    Net(NetError),
    /// A transient HTTP failure (500/503), with any `Retry-After`.
    Http {
        /// The status returned.
        status: Status,
        /// `Retry-After` seconds, honoured as a delay floor.
        retry_after: Option<u64>,
    },
    /// The body came back shorter than `Content-Length` advertised — a
    /// corrupted transfer whose checksum must not be trusted.
    Truncated {
        /// Advertised length.
        expected: usize,
        /// Received length.
        got: usize,
    },
}

impl TransientFailure {
    /// Human-readable description for reports and cache records. HTTP
    /// statuses render without context; the caller appends " on GET"
    /// where the old code did, keeping messages byte-identical.
    pub fn message(&self) -> String {
        match self {
            TransientFailure::Net(e) => e.to_string(),
            TransientFailure::Http { status, .. } => format!("HTTP {status}"),
            TransientFailure::Truncated { expected, got } => {
                format!("truncated body: {got} of {expected} bytes")
            }
        }
    }
}

/// Why a fetch ultimately failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchFailure {
    /// A terminal network error — never retried.
    Terminal(NetError),
    /// Retries (if any) exhausted on a transient failure; the last one.
    Exhausted(TransientFailure),
    /// The per-host circuit is open; no request was issued.
    CircuitOpen {
        /// The host whose circuit denied the request.
        host: String,
    },
}

impl FetchFailure {
    /// The network error inside, if this failure carries one.
    pub fn net_error(&self) -> Option<&NetError> {
        match self {
            FetchFailure::Terminal(e) | FetchFailure::Exhausted(TransientFailure::Net(e)) => {
                Some(e)
            }
            _ => None,
        }
    }

    /// True when graceful degradation (stale fallback) applies rather
    /// than a plain error: the failure was transient or breaker-denied,
    /// not a definitive verdict about the URL.
    pub fn is_degradable(&self) -> bool {
        !matches!(self, FetchFailure::Terminal(_))
    }
}

/// Classifies a network error: retryable transient vs terminal.
pub fn retryable_net_error(e: &NetError) -> bool {
    match e {
        NetError::Timeout | NetError::HostUnreachable(_) | NetError::ConnectionRefused(_) => true,
        // The name no longer resolves: the server was renamed or
        // deactivated (§3.1). Retrying cannot help.
        NetError::UnknownHost(_) => false,
    }
}

/// Atomic counters for the retry layer, shared across a tracker's
/// worker pipelines. Snapshot with [`RetryStats::snapshot`].
#[derive(Debug, Default)]
pub struct RetryStats {
    /// Requests issued through the retry layer (every attempt).
    pub attempts: AtomicU64,
    /// Attempts beyond the first for some request.
    pub retries: AtomicU64,
    /// Requests that succeeded after at least one retry.
    pub recovered: AtomicU64,
    /// Requests that ran out of attempts or budget.
    pub exhausted: AtomicU64,
    /// Failed attempts that were network errors (terminal or not).
    pub net_failures: AtomicU64,
    /// Failed attempts that were transient HTTP statuses (500/503).
    pub http_failures: AtomicU64,
    /// Failed attempts with truncated bodies.
    pub truncated: AtomicU64,
    /// Total seconds slept (virtual clock) across all retries.
    pub slept_secs: AtomicU64,
    /// Report entries downgraded to stale/degraded.
    pub degraded: AtomicU64,
    /// Requests denied by an open circuit (no traffic issued).
    pub breaker_denied: AtomicU64,
}

impl RetryStats {
    /// Plain-value copy of the counters.
    pub fn snapshot(&self) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            net_failures: self.net_failures.load(Ordering::Relaxed),
            http_failures: self.http_failures.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            slept_secs: self.slept_secs.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            breaker_denied: self.breaker_denied.load(Ordering::Relaxed),
        }
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn bump(&self, counter: &AtomicU64) {
        Self::add(counter, 1);
    }
}

/// Plain-value view of [`RetryStats`] — comparable, copyable, and the
/// type embedded in [`RunReport`](crate::checker::RunReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetrySnapshot {
    /// Requests issued through the retry layer (every attempt).
    pub attempts: u64,
    /// Attempts beyond the first for some request.
    pub retries: u64,
    /// Requests that succeeded after at least one retry.
    pub recovered: u64,
    /// Requests that ran out of attempts or budget.
    pub exhausted: u64,
    /// Failed attempts that were network errors.
    pub net_failures: u64,
    /// Failed attempts that were transient HTTP statuses.
    pub http_failures: u64,
    /// Failed attempts with truncated bodies.
    pub truncated: u64,
    /// Total seconds slept (virtual clock) across all retries.
    pub slept_secs: u64,
    /// Report entries downgraded to stale/degraded.
    pub degraded: u64,
    /// Requests denied by an open circuit.
    pub breaker_denied: u64,
}

impl RetrySnapshot {
    /// Element-wise difference (`self - earlier`), for per-run deltas.
    pub fn since(&self, earlier: &RetrySnapshot) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts - earlier.attempts,
            retries: self.retries - earlier.retries,
            recovered: self.recovered - earlier.recovered,
            exhausted: self.exhausted - earlier.exhausted,
            net_failures: self.net_failures - earlier.net_failures,
            http_failures: self.http_failures - earlier.http_failures,
            truncated: self.truncated - earlier.truncated,
            slept_secs: self.slept_secs - earlier.slept_secs,
            degraded: self.degraded - earlier.degraded,
            breaker_denied: self.breaker_denied - earlier.breaker_denied,
        }
    }

    /// Element-wise sum, for aggregating across users.
    pub fn plus(&self, other: &RetrySnapshot) -> RetrySnapshot {
        RetrySnapshot {
            attempts: self.attempts + other.attempts,
            retries: self.retries + other.retries,
            recovered: self.recovered + other.recovered,
            exhausted: self.exhausted + other.exhausted,
            net_failures: self.net_failures + other.net_failures,
            http_failures: self.http_failures + other.http_failures,
            truncated: self.truncated + other.truncated,
            slept_secs: self.slept_secs + other.slept_secs,
            degraded: self.degraded + other.degraded,
            breaker_denied: self.breaker_denied + other.breaker_denied,
        }
    }

    /// True when nothing at all was recorded — the robustness layer was
    /// off or never touched.
    pub fn is_zero(&self) -> bool {
        *self == RetrySnapshot::default()
    }

    /// Publishes every field as a `w3newer.retry.*` gauge on the
    /// installed observability subscriber; no-op without one. This
    /// wires the existing atomic [`RetryStats`] into the metrics
    /// registry without duplicating counts on the fetch hot path.
    pub fn publish_obs(&self) {
        if !aide_obs::enabled() {
            return;
        }
        aide_obs::gauge("w3newer.retry.attempts", self.attempts);
        aide_obs::gauge("w3newer.retry.retries", self.retries);
        aide_obs::gauge("w3newer.retry.recovered", self.recovered);
        aide_obs::gauge("w3newer.retry.exhausted", self.exhausted);
        aide_obs::gauge("w3newer.retry.net_failures", self.net_failures);
        aide_obs::gauge("w3newer.retry.http_failures", self.http_failures);
        aide_obs::gauge("w3newer.retry.truncated", self.truncated);
        aide_obs::gauge("w3newer.retry.slept_secs", self.slept_secs);
        aide_obs::gauge("w3newer.retry.degraded", self.degraded);
        aide_obs::gauge("w3newer.retry.breaker_denied", self.breaker_denied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_policy_never_retries() {
        let p = RetryPolicy::disabled();
        assert!(!p.enabled());
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn delays_monotone_and_capped() {
        let p = RetryPolicy::standard(42);
        let mut prev = Duration::ZERO;
        for attempt in 1..=12 {
            let d = p.delay_for("http://h/p", attempt);
            assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
            assert!(d <= p.max_delay);
            prev = d;
        }
    }

    #[test]
    fn jitter_deterministic_per_seed_url_attempt() {
        let p = RetryPolicy::standard(7);
        let q = RetryPolicy::standard(7);
        for attempt in 1..=6 {
            assert_eq!(
                p.delay_for("http://h/a", attempt),
                q.delay_for("http://h/a", attempt)
            );
        }
        let other_seed = RetryPolicy::standard(8);
        let differs =
            (1..=6).any(|a| p.delay_for("http://h/a", a) != other_seed.delay_for("http://h/a", a));
        assert!(differs, "jitter must depend on the seed");
    }

    #[test]
    fn classification_table() {
        assert!(retryable_net_error(&NetError::Timeout));
        assert!(retryable_net_error(&NetError::HostUnreachable("h".into())));
        assert!(retryable_net_error(&NetError::ConnectionRefused(
            "h".into()
        )));
        assert!(!retryable_net_error(&NetError::UnknownHost("h".into())));
    }

    #[test]
    fn failure_messages_match_legacy_forms() {
        assert_eq!(
            TransientFailure::Net(NetError::Timeout).message(),
            "timeout"
        );
        assert_eq!(
            TransientFailure::Http {
                status: Status::ServiceUnavailable,
                retry_after: Some(30),
            }
            .message(),
            "HTTP 503"
        );
        assert_eq!(
            TransientFailure::Truncated {
                expected: 100,
                got: 10
            }
            .message(),
            "truncated body: 10 of 100 bytes"
        );
    }

    #[test]
    fn snapshot_delta_and_sum() {
        let s = RetryStats::default();
        s.bump(&s.attempts);
        s.bump(&s.attempts);
        s.bump(&s.retries);
        let a = s.snapshot();
        s.bump(&s.attempts);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.attempts, 1);
        assert_eq!(d.retries, 0);
        assert_eq!(a.plus(&d).attempts, 3);
        assert!(!b.is_zero());
        assert!(RetrySnapshot::default().is_zero());
    }
}
