//! The w3newer decision procedure and run driver (§3, §3.1).
//!
//! Per URL, the tracker consults modification sources in cost order:
//!
//! 1. **its own cache** — "pages already known to be modified since the
//!    user last saw the page" are reported without touching the network,
//!    and pages known unchanged are re-verified only when the cached
//!    information is *stale* (older than one week by default);
//! 2. **the proxy-caching server's cache**, when its copy is current with
//!    respect to the URL's threshold;
//! 3. **a direct `HEAD`** — or, for pages without `Last-Modified` (CGI
//!    output), a `GET` whose body is checksummed against the previous
//!    checksum, exactly the URL-minder/w3new fallback.
//!
//! Before any network access, the per-pattern threshold gates the check:
//! pages visited (or checked) within the threshold are skipped. Robot
//! exclusions are honoured and cached; errors are counted per URL; host
//! errors can short-circuit the rest of a host; and a run aborts after
//! too many consecutive network failures ("w3newer should therefore be
//! able to detect cases when it should abort and try again later").

use crate::breaker::{Admission, CircuitBreaker};
use crate::cache::TrackerCache;
use crate::config::{Threshold, ThresholdConfig};
use crate::retry::{
    retryable_net_error, FetchFailure, RetryPolicy, RetrySnapshot, RetryStats, TransientFailure,
};
use crate::schedule::SchedulePolicy;
use aide_htmlkit::url::Url;
use aide_sched::Gate;
use aide_simweb::browser::Bookmark;
use aide_simweb::http::{Method, Request, Response, Status};
use aide_simweb::net::Web;
use aide_simweb::proxy::ProxyCache;
use aide_util::checksum::PageChecksum;
use aide_util::robots::RobotsTxt;
use aide_util::time::{Duration, Timestamp};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where the verdict for a URL came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckSource {
    /// w3newer's own cache from previous runs.
    Cache,
    /// The proxy-caching server's cache.
    ProxyCache,
    /// A direct `HEAD` request.
    Head,
    /// A `GET` plus content checksum (no `Last-Modified` available).
    GetChecksum,
    /// A local `file:` stat.
    FileStat,
}

/// Why a URL was not checked this run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Its threshold is `never`.
    NeverThreshold,
    /// The user viewed it within the threshold.
    RecentlyVisited,
    /// w3newer checked it within the threshold.
    CheckedRecently,
    /// An earlier URL on the same host hit a host-level error.
    HostError,
    /// The run aborted before reaching this URL.
    RunAborted,
    /// The adaptive scheduler's expected freshness gain is still below
    /// target ([`SchedulePolicy::Adaptive`] only).
    BelowExpectedGain,
}

/// The verdict for one URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlStatus {
    /// Modified since the user last saw it.
    Changed {
        /// The modification date, when one is known.
        modified: Option<Timestamp>,
        /// Which source produced the verdict.
        source: CheckSource,
    },
    /// Seen by the user since its last modification.
    Unchanged {
        /// Which source produced the verdict.
        source: CheckSource,
    },
    /// Not checked this run.
    NotChecked {
        /// Why.
        reason: SkipReason,
    },
    /// Excluded by the robot exclusion protocol.
    RobotExcluded,
    /// The check failed.
    Error {
        /// Human-readable description, shown in the report so "the user
        /// can take action to remove a URL that no longer exists".
        message: String,
    },
    /// The check could not complete this run (retries exhausted on a
    /// transient failure, or the host's circuit is open), so the tracker
    /// fell back to its cached knowledge. Distinct from
    /// [`UrlStatus::Unchanged`] — the page was *not verified* — and from
    /// [`UrlStatus::Error`] — the failure was transient, not a verdict
    /// about the URL. Only produced when the robustness layer is on.
    Degraded {
        /// What went wrong, human-readable.
        message: String,
        /// The last modification date on record, if any — the stale
        /// knowledge the report falls back to.
        last_known_modified: Option<Timestamp>,
    },
}

impl UrlStatus {
    /// True for [`UrlStatus::Changed`].
    pub fn is_changed(&self) -> bool {
        matches!(self, UrlStatus::Changed { .. })
    }
}

/// One hotlist entry's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlReport {
    /// The URL.
    pub url: String,
    /// The hotlist title.
    pub title: String,
    /// The verdict.
    pub status: UrlStatus,
    /// When the user last viewed it, per the browser history.
    pub last_visited: Option<Timestamp>,
}

/// The outcome of one w3newer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Per-URL outcomes, in hotlist order.
    pub entries: Vec<UrlReport>,
    /// When the run started.
    pub started: Timestamp,
    /// Whether the run aborted early on consecutive failures.
    pub aborted: bool,
    /// Retry/breaker activity during this run. All-zero when the
    /// robustness layer is off (the default).
    pub net: RetrySnapshot,
}

impl RunReport {
    /// Number of entries with each changed status.
    pub fn changed_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status.is_changed())
            .count()
    }
}

/// Behaviour flags (§3.1's special flags are all here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// Re-verify cached "unchanged" knowledge after this long.
    pub staleness: Duration,
    /// "A special flag" to check robot-excluded URLs anyway.
    pub ignore_robots: bool,
    /// "Another flag can tell w3newer to treat error conditions as a
    /// successful check as far as the URL's timestamp goes."
    pub errors_count_as_checked: bool,
    /// Skip the rest of a host after a host-level error there.
    pub skip_host_after_host_error: bool,
    /// Abort the run after this many consecutive network errors.
    pub abort_after_consecutive_errors: Option<u32>,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            staleness: Duration::days(7),
            ignore_robots: false,
            errors_count_as_checked: false,
            skip_host_after_host_error: false,
            abort_after_consecutive_errors: Some(10),
        }
    }
}

/// The tracker.
#[derive(Debug)]
pub struct W3Newer {
    /// Threshold configuration.
    pub config: ThresholdConfig,
    /// Persistent per-URL state.
    pub cache: TrackerCache,
    /// Behaviour flags.
    pub flags: Flags,
    /// The `User-Agent` offered to servers and matched against robots.txt.
    pub user_agent: String,
    /// Retry policy for transient network failures. The default,
    /// [`RetryPolicy::disabled`], reproduces the paper's behaviour: one
    /// attempt, any failure is final.
    pub retry: RetryPolicy,
    /// Optional per-host circuit breaker, shared across the worker pool
    /// (and, via [`Arc`], across trackers polling the same Web).
    pub breaker: Option<Arc<CircuitBreaker>>,
    /// When a URL is due for a network check: the paper's fixed
    /// thresholds (the default) or the adaptive change-rate estimator.
    pub schedule: SchedulePolicy,
    /// Retry/breaker accounting, shared with the worker pool.
    stats: Arc<RetryStats>,
}

impl Clone for W3Newer {
    /// Clones configuration and cache but gives the clone its own
    /// zeroed [`RetryStats`], so independently-run trackers do not mix
    /// their accounting. The breaker handle *is* shared — breaker state
    /// is per-host knowledge about the Web, not about one tracker.
    fn clone(&self) -> W3Newer {
        W3Newer {
            config: self.config.clone(),
            cache: self.cache.clone(),
            flags: self.flags,
            user_agent: self.user_agent.clone(),
            retry: self.retry,
            breaker: self.breaker.clone(),
            schedule: self.schedule.clone(),
            stats: Arc::new(RetryStats::default()),
        }
    }
}

impl W3Newer {
    /// Creates a tracker with the given configuration and empty cache.
    pub fn new(config: ThresholdConfig) -> W3Newer {
        W3Newer {
            config,
            cache: TrackerCache::new(),
            flags: Flags::default(),
            user_agent: "w3newer/1.0".to_string(),
            retry: RetryPolicy::disabled(),
            breaker: None,
            schedule: SchedulePolicy::Threshold,
            stats: Arc::new(RetryStats::default()),
        }
    }

    /// True when any part of the robustness layer is active. Stats are
    /// only recorded (and degradation only applies) in robust mode, so
    /// a default tracker behaves — and reports — exactly as before.
    fn robust(&self) -> bool {
        self.retry.enabled() || self.breaker.is_some()
    }

    /// Cumulative retry/breaker accounting for this tracker.
    pub fn net_stats(&self) -> RetrySnapshot {
        self.stats.snapshot()
    }

    /// Runs one pass over `hotlist`. `last_visited` supplies the browser
    /// history; `proxy` is consulted for cached modification dates when
    /// available.
    ///
    /// This is the worker-pool driver ([`W3Newer::run_pooled`]) at the
    /// machine's default width; the report is byte-identical to
    /// [`W3Newer::run_serial`].
    pub fn run(
        &mut self,
        hotlist: &[Bookmark],
        last_visited: &(dyn Fn(&str) -> Option<Timestamp> + Sync),
        web: &Web,
        proxy: Option<&ProxyCache>,
    ) -> RunReport {
        self.run_pooled(hotlist, last_visited, web, proxy, default_workers())
    }

    /// Runs one pass strictly serially, in hotlist order — the reference
    /// implementation the worker pool must reproduce byte-for-byte.
    pub fn run_serial(
        &mut self,
        hotlist: &[Bookmark],
        last_visited: &(dyn Fn(&str) -> Option<Timestamp> + Sync),
        web: &Web,
        proxy: Option<&ProxyCache>,
    ) -> RunReport {
        let now = web.clock().now();
        let stats_before = self.stats.snapshot();
        let mut cache = std::mem::take(&mut self.cache);
        let mut entries = Vec::with_capacity(hotlist.len());
        let mut robots: HashMap<String, RobotsTxt> = HashMap::new();
        let mut dead_hosts: HashSet<String> = HashSet::new();
        let mut consecutive_errors = 0u32;
        let mut aborted = false;

        for mark in hotlist {
            let visited = last_visited(&mark.url);
            let status = if aborted {
                UrlStatus::NotChecked {
                    reason: SkipReason::RunAborted,
                }
            } else {
                let status = self.check_url(
                    &mut cache,
                    &mark.url,
                    visited,
                    web,
                    proxy,
                    &mut robots,
                    &mut dead_hosts,
                    now,
                );
                // Track consecutive network failures for the abort rule.
                match &status {
                    UrlStatus::Error { .. } => {
                        consecutive_errors += 1;
                        if let Some(limit) = self.flags.abort_after_consecutive_errors {
                            if consecutive_errors >= limit {
                                aborted = true;
                            }
                        }
                    }
                    UrlStatus::NotChecked { .. } => {}
                    _ => consecutive_errors = 0,
                }
                status
            };
            entries.push(UrlReport {
                url: mark.url.clone(),
                title: mark.title.clone(),
                status,
                last_visited: visited,
            });
        }
        self.cache = cache;
        obs_record_entries(&entries);
        aide_obs::span("w3newer.run", now.0, web.clock().now_secs());
        RunReport {
            entries,
            started: now,
            aborted,
            net: self.stats.snapshot().since(&stats_before),
        }
    }

    /// Runs one pass with up to `workers` concurrent host pipelines.
    ///
    /// The hotlist is partitioned by host (first-appearance order); each
    /// host's entries are checked in hotlist order by a single worker at
    /// a time, so a server never sees two simultaneous requests from the
    /// tracker (per-host politeness), while different hosts proceed in
    /// parallel on a bounded pool of scoped threads. Workers mutate only
    /// host-local copies of the per-URL records, merged back
    /// deterministically afterwards.
    ///
    /// The report is byte-identical to [`W3Newer::run_serial`]: entries
    /// come back in hotlist order, and the consecutive-error abort rule
    /// is applied to the ordered results as a post-process. The one
    /// observable difference is internal: a run that aborts may still
    /// have checked (and cached state for) URLs past the abort point,
    /// which the serial tracker never reached.
    ///
    /// `last_visited` is called once per hotlist entry, in no particular
    /// order — it should be a pure view of the browser history.
    pub fn run_pooled(
        &mut self,
        hotlist: &[Bookmark],
        last_visited: &(dyn Fn(&str) -> Option<Timestamp> + Sync),
        web: &Web,
        proxy: Option<&ProxyCache>,
        workers: usize,
    ) -> RunReport {
        // Partition by host; unparseable URLs group under their own text.
        let mut group_of: HashMap<String, usize> = HashMap::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, mark) in hotlist.iter().enumerate() {
            let key = match Url::parse(&mark.url) {
                Ok(u) => format!("{}://{}", u.scheme, u.host),
                Err(_) => mark.url.clone(),
            };
            let g = *group_of.entry(key).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[g].push(i);
        }
        let pool = workers.min(groups.len());
        if pool <= 1 {
            // One host (or one worker): the serial path is already
            // optimal and keeps exact serial cache semantics.
            return self.run_serial(hotlist, last_visited, web, proxy);
        }

        let now = web.clock().now();
        let stats_before = self.stats.snapshot();
        if aide_obs::enabled() {
            aide_obs::gauge("w3newer.pool.workers", pool as u64);
            // Host-group sizes are the deterministic proxy for per-host
            // queue pressure: a worker serializes each group.
            for g in &groups {
                aide_obs::observe("w3newer.pool.host_group_urls", g.len() as u64);
            }
        }
        let this = &*self;
        let next = AtomicUsize::new(0);
        let groups_ref = &groups;
        type WorkerOutput = (Vec<(usize, UrlReport)>, Vec<(usize, TrackerCache)>);
        let outputs: Vec<WorkerOutput> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..pool)
                .map(|_| {
                    s.spawn(|| {
                        let mut reports = Vec::new();
                        let mut deltas = Vec::new();
                        loop {
                            let g = next.fetch_add(1, Ordering::Relaxed);
                            let Some(group) = groups_ref.get(g) else {
                                break;
                            };
                            // Host-local working cache, seeded with the
                            // host's existing records.
                            let mut local = TrackerCache::new();
                            for &i in group {
                                if let Some(rec) = this.cache.get(&hotlist[i].url) {
                                    local.insert(&hotlist[i].url, rec.clone());
                                }
                            }
                            let mut robots: HashMap<String, RobotsTxt> = HashMap::new();
                            let mut dead_hosts: HashSet<String> = HashSet::new();
                            for &i in group {
                                let mark = &hotlist[i];
                                let visited = last_visited(&mark.url);
                                let status = this.check_url(
                                    &mut local,
                                    &mark.url,
                                    visited,
                                    web,
                                    proxy,
                                    &mut robots,
                                    &mut dead_hosts,
                                    now,
                                );
                                reports.push((
                                    i,
                                    UrlReport {
                                        url: mark.url.clone(),
                                        title: mark.title.clone(),
                                        status,
                                        last_visited: visited,
                                    },
                                ));
                            }
                            deltas.push((g, local));
                        }
                        (reports, deltas)
                    })
                })
                .collect();
            handles
                .into_iter()
                // aide-lint: allow(no-panic, panic-reach): a worker
                // panic must propagate to the caller, not vanish into a
                // partial run
                .map(|h| h.join().expect("w3newer worker panicked"))
                .collect()
        });

        // Deterministic merge: reports back into hotlist order, cache
        // deltas in group (first-appearance) order. Hosts own disjoint
        // URL sets, so merge order cannot change the result — ordering
        // it anyway keeps runs bit-reproducible.
        let mut slots: Vec<Option<UrlReport>> = vec![None; hotlist.len()];
        let mut deltas: Vec<(usize, TrackerCache)> = Vec::new();
        for (reports, ds) in outputs {
            for (i, r) in reports {
                slots[i] = Some(r);
            }
            deltas.extend(ds);
        }
        deltas.sort_by_key(|(g, _)| *g);
        for (_, local) in deltas {
            for (url, rec) in local.records() {
                self.cache.insert(url, rec.clone());
            }
        }
        let mut entries: Vec<UrlReport> = slots
            .into_iter()
            // aide-lint: allow(no-panic, panic-reach): each hotlist
            // index is written exactly once by the host group that owns
            // it; a hole here is a merge bug that must not be silently
            // dropped
            .map(|r| r.expect("every hotlist entry produced a report"))
            .collect();

        // The serial consecutive-error abort rule, applied to the
        // ordered results.
        let mut consecutive_errors = 0u32;
        let mut aborted = false;
        for e in entries.iter_mut() {
            if aborted {
                e.status = UrlStatus::NotChecked {
                    reason: SkipReason::RunAborted,
                };
                continue;
            }
            match &e.status {
                UrlStatus::Error { .. } => {
                    consecutive_errors += 1;
                    if let Some(limit) = self.flags.abort_after_consecutive_errors {
                        if consecutive_errors >= limit {
                            aborted = true;
                        }
                    }
                }
                UrlStatus::NotChecked { .. } => {}
                _ => consecutive_errors = 0,
            }
        }
        obs_record_entries(&entries);
        aide_obs::span("w3newer.run", now.0, web.clock().now_secs());
        RunReport {
            entries,
            started: now,
            aborted,
            net: self.stats.snapshot().since(&stats_before),
        }
    }

    /// The per-URL decision procedure. Reads configuration from `self`
    /// and mutates only `cache` (plus the per-run `robots` /
    /// `dead_hosts` scratch maps and, under
    /// [`SchedulePolicy::Adaptive`], the shared estimator — whose
    /// per-URL state makes that safe), so host pipelines can run it
    /// concurrently against host-local caches.
    #[allow(clippy::too_many_arguments)]
    fn check_url(
        &self,
        cache: &mut TrackerCache,
        url: &str,
        visited: Option<Timestamp>,
        web: &Web,
        proxy: Option<&ProxyCache>,
        robots: &mut HashMap<String, RobotsTxt>,
        dead_hosts: &mut HashSet<String>,
        now: Timestamp,
    ) -> UrlStatus {
        let status = self.check_url_inner(cache, url, visited, web, proxy, robots, dead_hosts, now);
        if let SchedulePolicy::Adaptive(sched) = &self.schedule {
            // Feed the estimator every verdict backed by fresh
            // modification info. The tracker's own cache is excluded:
            // it carries no new evidence, and double-counting a window
            // would bias the rate.
            match &status {
                UrlStatus::Changed { source, .. } if *source != CheckSource::Cache => {
                    sched.record(url, true, now);
                }
                UrlStatus::Unchanged { source } if *source != CheckSource::Cache => {
                    sched.record(url, false, now);
                }
                _ => {}
            }
        }
        status
    }

    #[allow(clippy::too_many_arguments)]
    fn check_url_inner(
        &self,
        cache: &mut TrackerCache,
        url: &str,
        visited: Option<Timestamp>,
        web: &Web,
        proxy: Option<&ProxyCache>,
        robots: &mut HashMap<String, RobotsTxt>,
        dead_hosts: &mut HashSet<String>,
        now: Timestamp,
    ) -> UrlStatus {
        let threshold = self.config.threshold_for(url);
        if threshold == Threshold::Never {
            return UrlStatus::NotChecked {
                reason: SkipReason::NeverThreshold,
            };
        }

        // Cached robot exclusion: "the page is not accessed again unless
        // a special flag is set".
        if !self.flags.ignore_robots {
            if let Some(rec) = cache.get(url) {
                if rec.robots_excluded {
                    return UrlStatus::RobotExcluded;
                }
            }
        }

        // Source 1: w3newer's own cache.
        if let Some(rec) = cache.get(url) {
            if let Some(lm) = rec.last_modified {
                if changed_since(lm, visited) {
                    // Known modified since last view: no network needed.
                    return UrlStatus::Changed {
                        modified: Some(lm),
                        source: CheckSource::Cache,
                    };
                }
                let obtained = rec.info_obtained.unwrap_or(Timestamp::EPOCH);
                if now - obtained < self.flags.staleness {
                    return UrlStatus::Unchanged {
                        source: CheckSource::Cache,
                    };
                }
            }
        }

        // Gating of network checks: fixed thresholds (the paper's
        // rule) or the learned expected-gain gate.
        match &self.schedule {
            SchedulePolicy::Threshold => {
                if let Threshold::Every(d) = threshold {
                    if d > Duration::ZERO {
                        if let Some(v) = visited {
                            if now - v < d {
                                return UrlStatus::NotChecked {
                                    reason: SkipReason::RecentlyVisited,
                                };
                            }
                        }
                        if let Some(lc) = cache.get(url).and_then(|r| r.last_checked) {
                            if now - lc < d {
                                return UrlStatus::NotChecked {
                                    reason: SkipReason::CheckedRecently,
                                };
                            }
                        }
                    }
                }
            }
            SchedulePolicy::Adaptive(sched) => {
                if let Gate::Skip { .. } = sched.gate_poll(url, now) {
                    return UrlStatus::NotChecked {
                        reason: SkipReason::BelowExpectedGain,
                    };
                }
            }
        }

        // Source 2: the proxy-caching server, when current w.r.t. the
        // threshold.
        if let (Some(proxy), Threshold::Every(d)) = (proxy, threshold) {
            if d > Duration::ZERO {
                if let Some((Some(lm), fetched_at)) = proxy.cached_mod_info(url) {
                    if now - fetched_at < d {
                        let rec = cache.entry(url);
                        rec.last_modified = Some(lm);
                        rec.info_obtained = Some(fetched_at);
                        return if changed_since(lm, visited) {
                            UrlStatus::Changed {
                                modified: Some(lm),
                                source: CheckSource::ProxyCache,
                            }
                        } else {
                            UrlStatus::Unchanged {
                                source: CheckSource::ProxyCache,
                            }
                        };
                    }
                }
            }
        }

        // Source 3: the network (or local filesystem for file: URLs).
        let parsed = match Url::parse(url) {
            Ok(u) => u,
            Err(e) => {
                return self.record_error(cache, url, &format!("bad URL: {e}"), now);
            }
        };
        let is_file = parsed.scheme == "file";

        if !is_file && self.flags.skip_host_after_host_error && dead_hosts.contains(&parsed.host) {
            return UrlStatus::NotChecked {
                reason: SkipReason::HostError,
            };
        }

        // The robot exclusion protocol (http only). The fetch goes
        // through the retry layer so a transiently-failing robots.txt
        // does not silently downgrade to allow-all in robust mode.
        if !is_file && !self.flags.ignore_robots {
            let policy = robots.entry(parsed.host.clone()).or_insert_with(|| {
                let robots_url = format!("http://{}/robots.txt", host_port(&parsed));
                let req = Request::get(&robots_url).user_agent(&self.user_agent);
                match self.fetch_with_retry(web, &req, Some(&parsed.host)) {
                    Ok(resp) if resp.status == Status::Ok => RobotsTxt::parse(&resp.body),
                    _ => RobotsTxt::allow_all(),
                }
            });
            if !policy.allows(&self.user_agent, &parsed.path) {
                cache.entry(url).robots_excluded = true;
                return UrlStatus::RobotExcluded;
            }
        }

        let breaker_host = if is_file {
            None
        } else {
            Some(parsed.host.as_str())
        };
        let head = self.fetch_with_retry(
            web,
            &Request::head(url).user_agent(&self.user_agent),
            breaker_host,
        );
        let resp = match head {
            Err(fail) => {
                if let Some(e) = fail.net_error() {
                    if e.is_host_error() && !is_file {
                        dead_hosts.insert(parsed.host.clone());
                    }
                }
                return self.fail_url(cache, url, &fail, false, now);
            }
            Ok(resp) => resp,
        };
        match resp.status {
            Status::Ok => {}
            Status::MovedPermanently => {
                let to = resp.location.as_deref().unwrap_or("(unknown)");
                return self.record_error(cache, url, &format!("moved to {to}"), now);
            }
            other => {
                return self.record_error(cache, url, &format!("HTTP {other}"), now);
            }
        }

        let source = if is_file {
            CheckSource::FileStat
        } else {
            CheckSource::Head
        };
        {
            let rec = cache.entry(url);
            rec.last_checked = Some(now);
            rec.error_count = 0;
            rec.degraded_count = 0;
            rec.last_error = None;
        }

        if let Some(lm) = resp.last_modified {
            let rec = cache.entry(url);
            rec.last_modified = Some(lm);
            rec.info_obtained = Some(now);
            return if changed_since(lm, visited) {
                UrlStatus::Changed {
                    modified: Some(lm),
                    source,
                }
            } else {
                UrlStatus::Unchanged { source }
            };
        }

        // No Last-Modified (CGI output): GET + checksum.
        let get = match self.fetch_with_retry(
            web,
            &Request::get(url).user_agent(&self.user_agent),
            breaker_host,
        ) {
            Err(fail) => return self.fail_url(cache, url, &fail, true, now),
            Ok(r) => r,
        };
        if get.status != Status::Ok {
            return self.record_error(cache, url, &format!("HTTP {} on GET", get.status), now);
        }
        let checksum = PageChecksum::of(get.body.as_bytes());
        let rec = cache.entry(url);
        let prior = rec.checksum.replace(checksum);
        rec.info_obtained = Some(now);
        match prior {
            Some(p) if p != checksum => UrlStatus::Changed {
                modified: None,
                source: CheckSource::GetChecksum,
            },
            Some(_) => UrlStatus::Unchanged {
                source: CheckSource::GetChecksum,
            },
            // First observation establishes the baseline.
            None => UrlStatus::Unchanged {
                source: CheckSource::GetChecksum,
            },
        }
    }

    fn record_error(
        &self,
        cache: &mut TrackerCache,
        url: &str,
        message: &str,
        now: Timestamp,
    ) -> UrlStatus {
        let count_as_checked = self.flags.errors_count_as_checked;
        let rec = cache.entry(url);
        rec.error_count += 1;
        rec.last_error = Some(message.to_string());
        if count_as_checked {
            // "So that a URL with some problem will be checked with the
            // same frequency as an accessible one."
            rec.last_checked = Some(now);
        }
        UrlStatus::Error {
            message: message.to_string(),
        }
    }

    /// Graceful degradation: retries exhausted (or circuit open) on a
    /// *transient* failure. The entry keeps its cached knowledge and is
    /// reported stale rather than errored — "the check didn't complete"
    /// is a different fact from "the URL is broken".
    fn degrade(
        &self,
        cache: &mut TrackerCache,
        url: &str,
        message: &str,
        now: Timestamp,
    ) -> UrlStatus {
        self.stats.bump(&self.stats.degraded);
        let count_as_checked = self.flags.errors_count_as_checked;
        let rec = cache.entry(url);
        rec.degraded_count += 1;
        rec.last_error = Some(message.to_string());
        if count_as_checked {
            rec.last_checked = Some(now);
        }
        UrlStatus::Degraded {
            message: message.to_string(),
            last_known_modified: rec.last_modified,
        }
    }

    /// Routes a fetch failure: transient failures degrade in robust
    /// mode, everything else records a plain error with the same message
    /// the pre-robustness tracker produced.
    fn fail_url(
        &self,
        cache: &mut TrackerCache,
        url: &str,
        fail: &FetchFailure,
        on_get: bool,
        now: Timestamp,
    ) -> UrlStatus {
        let message = failure_message(fail, on_get);
        if self.robust() && fail.is_degradable() {
            self.degrade(cache, url, &message, now)
        } else {
            self.record_error(cache, url, &message, now)
        }
    }

    /// Issues `req` with retry, backoff and breaker admission according
    /// to `self.retry` / `self.breaker`. With both at their defaults this
    /// is exactly one `web.request` and zero bookkeeping.
    ///
    /// Backoff sleeps *advance the virtual clock* — the simulation's
    /// stand-in for blocking — and honour `Retry-After` as a delay
    /// floor. `host` is the breaker key; `None` (file: URLs) bypasses
    /// admission control.
    fn fetch_with_retry(
        &self,
        web: &Web,
        req: &Request,
        host: Option<&str>,
    ) -> Result<Response, FetchFailure> {
        let robust = self.robust();
        let clock = web.clock();
        let mut slept = Duration::ZERO;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            if let (Some(b), Some(h)) = (&self.breaker, host) {
                if b.admit(h, clock.now()) == Admission::Denied {
                    if robust {
                        self.stats.bump(&self.stats.breaker_denied);
                    }
                    return Err(FetchFailure::CircuitOpen {
                        host: h.to_string(),
                    });
                }
            }
            if robust {
                self.stats.bump(&self.stats.attempts);
            }
            let failure = match web.request(req) {
                Ok(resp) => {
                    if resp.is_transient_failure() {
                        if robust {
                            self.stats.bump(&self.stats.http_failures);
                        }
                        TransientFailure::Http {
                            status: resp.status,
                            retry_after: resp.retry_after,
                        }
                    } else if req.method == Method::Get
                        && resp.status == Status::Ok
                        && resp.body.len() < resp.content_length
                    {
                        // A body shorter than Content-Length advertises is
                        // a corrupted transfer: checksumming it would
                        // manufacture a phantom "change".
                        if robust {
                            self.stats.bump(&self.stats.truncated);
                        }
                        TransientFailure::Truncated {
                            expected: resp.content_length,
                            got: resp.body.len(),
                        }
                    } else {
                        if let (Some(b), Some(h)) = (&self.breaker, host) {
                            b.record_success(h);
                        }
                        if robust && attempt > 1 {
                            self.stats.bump(&self.stats.recovered);
                        }
                        return Ok(resp);
                    }
                }
                Err(e) => {
                    if robust {
                        self.stats.bump(&self.stats.net_failures);
                    }
                    if !retryable_net_error(&e) {
                        if let (Some(b), Some(h)) = (&self.breaker, host) {
                            b.record_failure(h, clock.now());
                        }
                        return Err(FetchFailure::Terminal(e));
                    }
                    TransientFailure::Net(e)
                }
            };
            if let (Some(b), Some(h)) = (&self.breaker, host) {
                b.record_failure(h, clock.now());
            }
            if attempt >= self.retry.max_attempts {
                if robust && self.retry.enabled() {
                    self.stats.bump(&self.stats.exhausted);
                }
                return Err(FetchFailure::Exhausted(failure));
            }
            let mut delay = self.retry.delay_for(&req.url, attempt);
            if let TransientFailure::Http {
                retry_after: Some(secs),
                ..
            } = failure
            {
                delay = delay.max(Duration::seconds(secs));
            }
            if slept + delay > self.retry.budget {
                self.stats.bump(&self.stats.exhausted);
                return Err(FetchFailure::Exhausted(failure));
            }
            // `delay` is computed from seeded jitter (plus any
            // Retry-After floor), so this histogram is deterministic
            // even when workers interleave.
            aide_obs::observe("w3newer.retry.backoff_secs", delay.as_secs());
            clock.advance(delay);
            slept = slept + delay;
            self.stats.bump(&self.stats.retries);
            self.stats
                .slept_secs
                .fetch_add(delay.as_secs(), Ordering::Relaxed);
        }
    }
}

/// Maps a finished run's entries onto `w3newer.url.*` /
/// `w3newer.source.*` / `w3newer.skip.*` observability counters.
///
/// Counting the *final* entries — after the consecutive-error abort
/// post-process — rather than instrumenting each `check_url` return
/// keeps serial and pooled runs in exact agreement: the pool checks
/// URLs past an abort point that the serial tracker never reaches, but
/// both report them as `RunAborted`.
fn obs_record_entries(entries: &[UrlReport]) {
    if !aide_obs::enabled() {
        return;
    }
    // Aggregate locally and emit one counter call per distinct name:
    // a hotlist has hundreds of entries but only ~16 possible names,
    // and each emit is a registry lock round-trip.
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    let mut bump = |name: &'static str| *counts.entry(name).or_insert(0) += 1;
    for e in entries {
        match &e.status {
            UrlStatus::Changed { source, .. } => {
                bump("w3newer.url.changed");
                bump(obs_source_name(*source));
            }
            UrlStatus::Unchanged { source } => {
                bump("w3newer.url.unchanged");
                bump(obs_source_name(*source));
            }
            UrlStatus::NotChecked { reason } => {
                bump("w3newer.url.not_checked");
                bump(obs_skip_name(*reason));
            }
            UrlStatus::RobotExcluded => bump("w3newer.url.robot_excluded"),
            UrlStatus::Error { .. } => bump("w3newer.url.error"),
            UrlStatus::Degraded { .. } => bump("w3newer.url.degraded"),
        }
    }
    for (name, n) in counts {
        aide_obs::counter(name, n);
    }
}

/// Counter name for how a verdict was reached (§3's decision ladder).
fn obs_source_name(source: CheckSource) -> &'static str {
    match source {
        CheckSource::Cache => "w3newer.source.cache",
        CheckSource::ProxyCache => "w3newer.source.proxy_cache",
        CheckSource::Head => "w3newer.source.head",
        CheckSource::GetChecksum => "w3newer.source.get_checksum",
        CheckSource::FileStat => "w3newer.source.file_stat",
    }
}

/// Counter name for why a URL was skipped without network traffic.
fn obs_skip_name(reason: SkipReason) -> &'static str {
    match reason {
        SkipReason::NeverThreshold => "w3newer.skip.never_threshold",
        SkipReason::RecentlyVisited => "w3newer.skip.recently_visited",
        SkipReason::CheckedRecently => "w3newer.skip.checked_recently",
        SkipReason::HostError => "w3newer.skip.host_error",
        SkipReason::RunAborted => "w3newer.skip.run_aborted",
        SkipReason::BelowExpectedGain => "w3newer.skip.below_expected_gain",
    }
}

/// The report/cache message for a failed fetch — chosen to be
/// byte-identical to the pre-robustness tracker's messages when the
/// robustness layer is off. `on_get` appends the " on GET" context the
/// checksum path always used.
fn failure_message(fail: &FetchFailure, on_get: bool) -> String {
    match fail {
        FetchFailure::Terminal(e) => e.to_string(),
        FetchFailure::Exhausted(TransientFailure::Http { status, .. }) if on_get => {
            format!("HTTP {status} on GET")
        }
        FetchFailure::Exhausted(f) => f.message(),
        FetchFailure::CircuitOpen { host } => format!("circuit open: {host}"),
    }
}

/// Worker-pool width for [`W3Newer::run`]: the machine's parallelism,
/// bounded so a large hotlist does not open dozens of connections at
/// once.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8)
}

/// Modified after the user's last view? Never-viewed pages count as
/// changed — they are new to the user.
fn changed_since(modified: Timestamp, visited: Option<Timestamp>) -> bool {
    match visited {
        Some(v) => modified > v,
        None => true,
    }
}

fn host_port(u: &Url) -> String {
    match u.port {
        Some(p) => format!("{}:{p}", u.host),
        None => u.host.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::resource::Resource;
    use aide_util::time::Clock;

    fn mark(url: &str) -> Bookmark {
        Bookmark {
            title: format!("title of {url}"),
            url: url.to_string(),
        }
    }

    fn setup() -> (Clock, Web) {
        let clock = Clock::starting_at(Timestamp::from_ymd_hms(1995, 10, 1, 9, 0, 0));
        let web = Web::new(clock.clone());
        (clock, web)
    }

    fn no_history(_: &str) -> Option<Timestamp> {
        None
    }

    #[test]
    fn unseen_modified_page_is_changed() {
        let (clock, web) = setup();
        web.set_page("http://h/p", "body", clock.now() - Duration::days(5))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(&[mark("http://h/p")], &no_history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Changed {
                source: CheckSource::Head,
                ..
            }
        ));
    }

    #[test]
    fn page_seen_after_modification_is_unchanged() {
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(5);
        web.set_page("http://h/p", "body", modified).unwrap();
        let visited = clock.now() - Duration::days(1);
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(&[mark("http://h/p")], &move |_| Some(visited), &web, None);
        assert!(matches!(&r.entries[0].status, UrlStatus::Unchanged { .. }));
    }

    #[test]
    fn cached_changed_verdict_needs_no_network() {
        let (clock, web) = setup();
        web.set_page("http://h/p", "body", clock.now() - Duration::days(1))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        // First run does the HEAD and caches the date.
        w.run(&[mark("http://h/p")], &no_history, &web, None);
        let before = web.stats().requests;
        // Second run: the cache already knows it changed vs. never-seen.
        let r = w.run(&[mark("http://h/p")], &no_history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Changed {
                source: CheckSource::Cache,
                ..
            }
        ));
        assert_eq!(web.stats().requests, before, "no network traffic");
    }

    #[test]
    fn fresh_unchanged_knowledge_is_trusted_until_stale() {
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(30);
        web.set_page("http://h/p", "body", modified).unwrap();
        let visited = clock.now() - Duration::days(2);
        let history = move |_: &str| Some(visited);
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.run(&[mark("http://h/p")], &history, &web, None);
        let before = web.stats().requests;
        // Within staleness (7d default): cache answers.
        clock.advance(Duration::days(3));
        let r = w.run(&[mark("http://h/p")], &history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Unchanged {
                source: CheckSource::Cache
            }
        ));
        assert_eq!(web.stats().requests, before);
        // Past staleness: w3newer re-verifies over the network.
        clock.advance(Duration::days(5));
        let r = w.run(&[mark("http://h/p")], &history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Unchanged {
                source: CheckSource::Head
            }
        ));
        assert!(web.stats().requests > before);
    }

    #[test]
    fn never_threshold_skips() {
        let (clock, web) = setup();
        web.set_page(
            "http://www.unitedmedia.com/comics/dilbert/",
            "strip",
            clock.now(),
        )
        .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::table1());
        let r = w.run(
            &[mark("http://www.unitedmedia.com/comics/dilbert/")],
            &no_history,
            &web,
            None,
        );
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::NeverThreshold
            }
        );
        assert_eq!(web.stats().requests, 0);
    }

    #[test]
    fn recently_visited_skips_within_threshold() {
        let (clock, web) = setup();
        web.set_page(
            "http://other.com/x",
            "body",
            clock.now() - Duration::days(9),
        )
        .unwrap();
        // Table 1 default is 2d; user visited yesterday.
        let visited = clock.now() - Duration::days(1);
        let mut w = W3Newer::new(ThresholdConfig::table1());
        let r = w.run(
            &[mark("http://other.com/x")],
            &move |_| Some(visited),
            &web,
            None,
        );
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::RecentlyVisited
            }
        );
        assert_eq!(web.stats().requests, 0);
    }

    #[test]
    fn checked_recently_skips_within_threshold() {
        let (clock, web) = setup();
        web.set_page(
            "http://other.com/x",
            "body",
            clock.now() - Duration::days(30),
        )
        .unwrap();
        let visited = clock.now() - Duration::days(20);
        let history = move |_: &str| Some(visited);
        let mut w = W3Newer::new(ThresholdConfig::table1());
        w.flags.staleness = Duration::ZERO; // Force the cache to be distrusted.
        w.run(&[mark("http://other.com/x")], &history, &web, None);
        let before = web.stats().requests;
        clock.advance(Duration::hours(12)); // Under the 2d default threshold.
        let r = w.run(&[mark("http://other.com/x")], &history, &web, None);
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::CheckedRecently
            }
        );
        assert_eq!(web.stats().requests, before);
    }

    #[test]
    fn proxy_cache_answers_without_origin_traffic() {
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(1);
        web.set_page("http://h/p", "body", modified).unwrap();
        let proxy = ProxyCache::new(web.clone(), Duration::days(3));
        proxy.get("http://h/p").unwrap(); // Someone browsed it through the proxy.
        clock.advance(Duration::hours(1));
        let origin_before = web.server_stats("h").unwrap().total();
        let mut w = W3Newer::new(ThresholdConfig::table1()); // default 2d
        let r = w.run(&[mark("http://h/p")], &no_history, &web, Some(&proxy));
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Changed {
                source: CheckSource::ProxyCache,
                ..
            }
        ));
        assert_eq!(web.server_stats("h").unwrap().total(), origin_before);
    }

    #[test]
    fn cgi_pages_use_checksum() {
        let (_, web) = setup();
        web.set_resource(
            "http://h/cgi-bin/q",
            Resource::Cgi {
                template: "stable result".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        // First run: baseline.
        let r = w.run(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Unchanged {
                source: CheckSource::GetChecksum
            }
        ));
        // Content unchanged: still unchanged.
        let r = w.run(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(matches!(&r.entries[0].status, UrlStatus::Unchanged { .. }));
        // Content changes: checksum detects it.
        web.set_resource(
            "http://h/cgi-bin/q",
            Resource::Cgi {
                template: "different result".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let r = w.run(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Changed {
                modified: None,
                source: CheckSource::GetChecksum
            }
        ));
    }

    #[test]
    fn noisy_counter_page_always_changes() {
        // §3.1's junk-mail problem, reproduced.
        let (_, web) = setup();
        web.set_resource("http://h/counter", Resource::hit_counter("visits: {HITS}"))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        w.run(&[mark("http://h/counter")], &no_history, &web, None);
        for _ in 0..3 {
            let r = w.run(&[mark("http://h/counter")], &no_history, &web, None);
            assert!(
                r.entries[0].status.is_changed(),
                "noisy page flagged every run"
            );
        }
    }

    #[test]
    fn robots_exclusion_honoured_and_cached() {
        let (clock, web) = setup();
        web.set_page("http://h/private/p", "body", clock.now())
            .unwrap();
        web.set_robots_txt("h", "User-agent: *\nDisallow: /private/\n");
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(&[mark("http://h/private/p")], &no_history, &web, None);
        assert_eq!(r.entries[0].status, UrlStatus::RobotExcluded);
        // Second run: exclusion is cached — not even robots.txt is fetched.
        let before = web.stats().requests;
        let r = w.run(&[mark("http://h/private/p")], &no_history, &web, None);
        assert_eq!(r.entries[0].status, UrlStatus::RobotExcluded);
        assert_eq!(web.stats().requests, before);
    }

    #[test]
    fn ignore_robots_flag_overrides() {
        let (clock, web) = setup();
        web.set_page(
            "http://h/private/p",
            "body",
            clock.now() - Duration::days(1),
        )
        .unwrap();
        web.set_robots_txt("h", "User-agent: *\nDisallow: /private/\n");
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.run(&[mark("http://h/private/p")], &no_history, &web, None); // caches exclusion
        w.flags.ignore_robots = true;
        let r = w.run(&[mark("http://h/private/p")], &no_history, &web, None);
        assert!(
            r.entries[0].status.is_changed(),
            "{:?}",
            r.entries[0].status
        );
    }

    #[test]
    fn errors_reported_and_counted() {
        let (_, web) = setup();
        web.add_server("h");
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(&[mark("http://h/missing")], &no_history, &web, None);
        assert!(
            matches!(&r.entries[0].status, UrlStatus::Error { message } if message.contains("404"))
        );
        w.run(&[mark("http://h/missing")], &no_history, &web, None);
        assert_eq!(w.cache.get("http://h/missing").unwrap().error_count, 2);
    }

    #[test]
    fn moved_url_reports_location() {
        let (_, web) = setup();
        web.set_resource(
            "http://h/old",
            Resource::Moved {
                location: "http://h/new".into(),
            },
        )
        .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(&[mark("http://h/old")], &no_history, &web, None);
        assert!(
            matches!(&r.entries[0].status, UrlStatus::Error { message } if message.contains("http://h/new"))
        );
    }

    #[test]
    fn errors_count_as_checked_flag() {
        let (clock, web) = setup();
        web.add_server("h");
        let mut w = W3Newer::new(ThresholdConfig::table1()); // 2d default
        w.flags.errors_count_as_checked = true;
        w.run(&[mark("http://h/missing")], &no_history, &web, None);
        clock.advance(Duration::hours(6));
        let r = w.run(&[mark("http://h/missing")], &no_history, &web, None);
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::CheckedRecently
            },
            "failed URL polled at the same frequency as a working one"
        );
    }

    #[test]
    fn host_error_skips_rest_of_host() {
        let (_, web) = setup();
        web.set_network_up(true);
        // Host "dead" never registered: unknown host error.
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.skip_host_after_host_error = true;
        let r = w.run(
            &[
                mark("http://dead/a"),
                mark("http://dead/b"),
                mark("http://dead/c"),
            ],
            &no_history,
            &web,
            None,
        );
        assert!(matches!(&r.entries[0].status, UrlStatus::Error { .. }));
        assert_eq!(
            r.entries[1].status,
            UrlStatus::NotChecked {
                reason: SkipReason::HostError
            }
        );
        assert_eq!(
            r.entries[2].status,
            UrlStatus::NotChecked {
                reason: SkipReason::HostError
            }
        );
    }

    #[test]
    fn run_aborts_after_consecutive_failures() {
        let (_, web) = setup();
        web.set_network_up(false);
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.abort_after_consecutive_errors = Some(3);
        let hotlist: Vec<Bookmark> = (0..6).map(|i| mark(&format!("http://h{i}/p"))).collect();
        let r = w.run(&hotlist, &no_history, &web, None);
        assert!(r.aborted);
        let errors = r
            .entries
            .iter()
            .filter(|e| matches!(e.status, UrlStatus::Error { .. }))
            .count();
        let skipped = r
            .entries
            .iter()
            .filter(|e| {
                e.status
                    == UrlStatus::NotChecked {
                        reason: SkipReason::RunAborted,
                    }
            })
            .count();
        assert_eq!(errors, 3);
        assert_eq!(skipped, 3);
    }

    #[test]
    fn file_urls_are_cheap_stats() {
        let (clock, web) = setup();
        web.write_local_file(
            "/home/me/notes.html",
            "text",
            clock.now() - Duration::hours(1),
        );
        let mut w = W3Newer::new(ThresholdConfig::table1()); // file:.* → 0 (always)
        let r = w.run(&[mark("file:/home/me/notes.html")], &no_history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Changed {
                source: CheckSource::FileStat,
                ..
            }
        ));
        assert_eq!(web.stats().requests, 0, "no network traffic for file:");
    }

    #[test]
    fn zero_threshold_checks_every_run() {
        let (clock, web) = setup();
        web.set_page(
            "http://www.research.att.com/x",
            "b",
            clock.now() - Duration::days(1),
        )
        .unwrap();
        let visited = clock.now() - Duration::hours(1);
        let history = move |_: &str| Some(visited);
        let mut w = W3Newer::new(ThresholdConfig::table1()); // att.com → 0
        w.flags.staleness = Duration::ZERO;
        w.run(
            &[mark("http://www.research.att.com/x")],
            &history,
            &web,
            None,
        );
        let before = web.stats().heads;
        w.run(
            &[mark("http://www.research.att.com/x")],
            &history,
            &web,
            None,
        );
        assert!(
            web.stats().heads > before,
            "0 threshold ignores recent visit"
        );
    }

    /// A workload spanning many hosts and every verdict class: normal
    /// changed/unchanged pages, a CGI checksum page, a robots-excluded
    /// path, a 404, a moved page, and a dead host.
    fn mixed_world() -> (Clock, Web, Vec<Bookmark>) {
        let (clock, web) = setup();
        let mut hotlist = Vec::new();
        for h in 0..6 {
            for p in 0..4 {
                let url = format!("http://host{h}.example.com/page{p}.html");
                web.set_page(
                    &url,
                    &format!("body {h}/{p}"),
                    clock.now() - Duration::days(p + 1),
                )
                .unwrap();
                hotlist.push(mark(&url));
            }
        }
        web.set_resource(
            "http://host0.example.com/cgi-bin/q",
            Resource::Cgi {
                template: "cgi output".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        hotlist.push(mark("http://host0.example.com/cgi-bin/q"));
        web.set_page("http://host1.example.com/private/p", "secret", clock.now())
            .unwrap();
        web.set_robots_txt("host1.example.com", "User-agent: *\nDisallow: /private/\n");
        hotlist.push(mark("http://host1.example.com/private/p"));
        hotlist.push(mark("http://host2.example.com/missing.html"));
        web.set_resource(
            "http://host3.example.com/old",
            Resource::Moved {
                location: "http://host3.example.com/new".into(),
            },
        )
        .unwrap();
        hotlist.push(mark("http://host3.example.com/old"));
        hotlist.push(mark("http://unregistered-host.example.com/x"));
        (clock, web, hotlist)
    }

    #[test]
    fn pooled_report_byte_identical_to_serial() {
        use crate::report::{render_report, ReportOptions};
        let (clock, web, hotlist) = mixed_world();
        let visited = clock.now() - Duration::days(2);
        let history = move |url: &str| {
            // Half the pages were visited recently, half never.
            if url.ends_with("2.html") || url.ends_with("3.html") {
                Some(visited)
            } else {
                None
            }
        };

        let mut serial = W3Newer::new(ThresholdConfig::default());
        serial.flags.skip_host_after_host_error = true;
        let mut pooled = serial.clone();

        let reference = serial.run_serial(&hotlist, &history, &web, None);
        let parallel = pooled.run_pooled(&hotlist, &history, &web, None, 4);
        assert_eq!(parallel, reference, "reports structurally identical");
        let opts = ReportOptions::default();
        assert_eq!(
            render_report(&parallel, &opts),
            render_report(&reference, &opts),
            "rendered reports byte-identical"
        );
        assert_eq!(
            pooled.cache, serial.cache,
            "caches converge on a non-aborted run"
        );

        // Second pass (now with warm caches) must agree too.
        clock.advance(Duration::days(10));
        let reference = serial.run_serial(&hotlist, &history, &web, None);
        let parallel = pooled.run_pooled(&hotlist, &history, &web, None, 8);
        assert_eq!(parallel, reference);
        assert_eq!(pooled.cache, serial.cache);
    }

    #[test]
    fn pooled_abort_report_matches_serial() {
        let (_, web, _) = mixed_world();
        web.set_network_up(false);
        let hotlist: Vec<Bookmark> = (0..9)
            .map(|i| mark(&format!("http://down{i}.example.com/p")))
            .collect();
        let mut serial = W3Newer::new(ThresholdConfig::default());
        serial.flags.abort_after_consecutive_errors = Some(4);
        let mut pooled = serial.clone();
        let reference = serial.run_serial(&hotlist, &no_history, &web, None);
        let parallel = pooled.run_pooled(&hotlist, &no_history, &web, None, 4);
        assert!(reference.aborted);
        assert_eq!(
            parallel, reference,
            "abort rule replays identically on ordered results"
        );
    }

    #[test]
    fn pooled_single_host_stays_serial() {
        let (clock, web) = setup();
        web.set_page("http://h/a", "x", clock.now() - Duration::days(1))
            .unwrap();
        web.set_page("http://h/b", "y", clock.now() - Duration::days(1))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run_pooled(
            &[mark("http://h/a"), mark("http://h/b")],
            &no_history,
            &web,
            None,
            8,
        );
        assert_eq!(r.changed_count(), 2);
    }

    #[test]
    fn retry_recovers_from_windowed_outage() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (clock, web) = setup();
        web.set_page("http://h/p", "body", clock.now() - Duration::days(2))
            .unwrap();
        // Every request times out for the next 6 virtual seconds; the
        // backoff sleeps carry the retry loop past the window.
        let now = clock.now();
        web.install_fault_plan(FaultPlan::new(1).for_host(
            "h",
            FaultEpisode::rate(1.0, FaultKind::Timeout).between(now, now + Duration::seconds(6)),
        ));
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.retry = crate::retry::RetryPolicy::standard(42);
        let r = w.run_serial(&[mark("http://h/p")], &no_history, &web, None);
        assert!(
            r.entries[0].status.is_changed(),
            "recovered after the outage window: {:?}",
            r.entries[0].status
        );
        assert!(r.net.retries > 0, "at least one retry happened");
        assert!(r.net.recovered > 0);
        assert_eq!(r.net.exhausted, 0);
    }

    #[test]
    fn exhausted_retries_degrade_to_stale_not_error() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(2);
        web.set_page("http://h/p", "body", modified).unwrap();
        // Seen after modification, so the cache's verdict is "unchanged"
        // — which staleness 0 refuses to trust, forcing a network check.
        let visited = clock.now() - Duration::days(1);
        let history = move |_: &str| Some(visited);
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.retry = crate::retry::RetryPolicy::standard(7);
        w.flags.staleness = Duration::ZERO;
        // Clean first run caches the modification date.
        w.run_serial(&[mark("http://h/p")], &history, &web, None);
        // Then the host goes permanently flaky.
        web.install_fault_plan(
            FaultPlan::new(2).for_host("h", FaultEpisode::rate(1.0, FaultKind::Timeout)),
        );
        let r = w.run_serial(&[mark("http://h/p")], &history, &web, None);
        match &r.entries[0].status {
            UrlStatus::Degraded {
                message,
                last_known_modified,
            } => {
                assert_eq!(message, "timeout");
                assert_eq!(*last_known_modified, Some(modified), "stale fallback kept");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert!(r.net.exhausted > 0);
        assert_eq!(r.net.degraded, 1);
        assert_eq!(w.cache.get("http://h/p").unwrap().degraded_count, 1);
        // The cached modification date survived the failed check.
        assert_eq!(
            w.cache.get("http://h/p").unwrap().last_modified,
            Some(modified)
        );
    }

    #[test]
    fn transient_faults_never_fabricate_changes() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        use aide_simweb::http::Status;
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(5);
        web.set_page("http://h/p", "body", modified).unwrap();
        let visited = clock.now() - Duration::days(1); // seen after modification
        web.install_fault_plan(FaultPlan::new(3).for_host(
            "h",
            FaultEpisode::rate(
                1.0,
                FaultKind::Transient {
                    status: Status::ServiceUnavailable,
                    retry_after_secs: Some(30),
                },
            ),
        ));
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.retry = crate::retry::RetryPolicy::standard(9);
        let r = w.run_serial(&[mark("http://h/p")], &move |_| Some(visited), &web, None);
        assert!(
            !r.entries[0].status.is_changed(),
            "a 503 storm must not read as a content change: {:?}",
            r.entries[0].status
        );
        assert!(matches!(&r.entries[0].status, UrlStatus::Degraded { .. }));
        assert!(r.net.http_failures > 0);
        // Retry-After (30s) floors the backoff: at least one 30s sleep
        // per retry.
        assert!(r.net.slept_secs >= 30 * r.net.retries.min(1));
    }

    #[test]
    fn truncated_body_never_corrupts_the_checksum_baseline() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (_, web) = setup();
        web.set_resource(
            "http://h/cgi-bin/q",
            Resource::Cgi {
                template: "a perfectly stable twenty-byte-plus output".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        // Clean baseline.
        w.run_serial(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        // Bodies now come back cut off mid-transfer.
        web.install_fault_plan(FaultPlan::new(4).for_host(
            "h",
            FaultEpisode::rate(1.0, FaultKind::Truncate { keep_bytes: 5 }),
        ));
        w.retry = crate::retry::RetryPolicy::standard(11);
        let r = w.run_serial(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(
            !r.entries[0].status.is_changed(),
            "truncated transfer must not look like a change: {:?}",
            r.entries[0].status
        );
        assert!(r.net.truncated > 0);
        // The healthy checksum baseline survived.
        web.clear_fault_plan();
        let r = w.run_serial(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(
            matches!(
                &r.entries[0].status,
                UrlStatus::Unchanged {
                    source: CheckSource::GetChecksum
                }
            ),
            "baseline intact after the fault clears: {:?}",
            r.entries[0].status
        );
    }

    #[test]
    fn truncation_detected_even_without_retries() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (_, web) = setup();
        web.set_resource(
            "http://h/cgi-bin/q",
            Resource::Cgi {
                template: "a perfectly stable twenty-byte-plus output".to_string(),
                hits: 0,
            },
        )
        .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        w.run_serial(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        web.install_fault_plan(FaultPlan::new(4).for_host(
            "h",
            FaultEpisode::rate(1.0, FaultKind::Truncate { keep_bytes: 5 }),
        ));
        // Robustness off: the corrupt transfer surfaces as an error, not
        // a phantom change.
        let r = w.run_serial(&[mark("http://h/cgi-bin/q")], &no_history, &web, None);
        assert!(
            matches!(&r.entries[0].status, UrlStatus::Error { message } if message.starts_with("truncated body")),
            "got {:?}",
            r.entries[0].status
        );
    }

    #[test]
    fn breaker_cuts_off_a_dead_host() {
        use crate::breaker::{BreakerConfig, CircuitBreaker};
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (_, web) = setup();
        for p in 0..8 {
            web.set_page(
                &format!("http://h/p{p}"),
                "body",
                web.clock().now() - Duration::days(1),
            )
            .unwrap();
        }
        web.install_fault_plan(
            FaultPlan::new(5).for_host("h", FaultEpisode::rate(1.0, FaultKind::ConnectionRefused)),
        );
        let hotlist: Vec<Bookmark> = (0..8).map(|p| mark(&format!("http://h/p{p}"))).collect();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.breaker = Some(Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::minutes(5),
            max_cooldown: Duration::hours(1),
        })));
        w.flags.abort_after_consecutive_errors = None;
        let r = w.run_serial(&hotlist, &no_history, &web, None);
        assert!(r.net.breaker_denied > 0, "circuit opened mid-run");
        let denied = r
            .entries
            .iter()
            .filter(|e| {
                matches!(&e.status, UrlStatus::Degraded { message, .. } if message.starts_with("circuit open"))
            })
            .count();
        assert!(denied > 0, "later URLs denied without network traffic");
        // Total traffic is bounded by the threshold (robots + HEADs up to
        // the trip point), far below one request per URL.
        assert!(
            web.stats().requests <= 4,
            "{} requests reached a dead host",
            web.stats().requests
        );
    }

    #[test]
    fn retry_stats_reconcile_with_web_net_errors() {
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (clock, web) = setup();
        for p in 0..4 {
            web.set_page(
                &format!("http://h/p{p}"),
                "body",
                clock.now() - Duration::days(1),
            )
            .unwrap();
        }
        web.install_fault_plan(
            FaultPlan::new(6).for_host("h", FaultEpisode::rate(0.4, FaultKind::Timeout)),
        );
        let hotlist: Vec<Bookmark> = (0..4).map(|p| mark(&format!("http://h/p{p}"))).collect();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.retry = crate::retry::RetryPolicy::standard(13);
        w.flags.abort_after_consecutive_errors = None;
        let r = w.run_serial(&hotlist, &no_history, &web, None);
        assert_eq!(
            r.net.net_failures,
            web.stats().net_errors,
            "every network error the Web counted flowed through the retry layer"
        );
        assert_eq!(
            r.net,
            w.net_stats(),
            "run delta equals lifetime stats on a fresh tracker"
        );
    }

    #[test]
    fn disabled_robustness_reports_match_pre_retry_behaviour() {
        // With the robustness layer off, a faulty world still produces
        // plain Error entries with the legacy messages and an all-zero
        // net snapshot — nothing about the report format changes.
        use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
        let (clock, web) = setup();
        web.set_page("http://h/p", "body", clock.now() - Duration::days(1))
            .unwrap();
        web.install_fault_plan(
            FaultPlan::new(8).for_host("h", FaultEpisode::rate(1.0, FaultKind::Timeout)),
        );
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run_serial(&[mark("http://h/p")], &no_history, &web, None);
        assert_eq!(
            r.entries[0].status,
            UrlStatus::Error {
                message: "timeout".to_string()
            }
        );
        assert!(r.net.is_zero(), "no accounting with the layer off");
    }

    #[test]
    fn changed_count_helper() {
        let (clock, web) = setup();
        web.set_page("http://h/a", "x", clock.now() - Duration::days(1))
            .unwrap();
        web.set_page("http://h/b", "y", clock.now() - Duration::days(1))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        let r = w.run(
            &[mark("http://h/a"), mark("http://h/b")],
            &no_history,
            &web,
            None,
        );
        assert_eq!(r.changed_count(), 2);
    }

    // ------------------------------------------- adaptive scheduling

    fn adaptive_tracker() -> W3Newer {
        use aide_sched::{AdaptiveScheduler, PriorRules, SchedulerConfig};
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.schedule = SchedulePolicy::Adaptive(Arc::new(AdaptiveScheduler::new(
            SchedulerConfig::default(),
            PriorRules::default(),
        )));
        // Make every run consult the gate instead of trusting fresh
        // cached knowledge.
        w.flags.staleness = Duration::ZERO;
        w
    }

    #[test]
    fn default_policy_is_the_paper_threshold_rule() {
        let w = W3Newer::new(ThresholdConfig::default());
        assert!(!w.schedule.is_adaptive());
        assert!(w.schedule.scheduler().is_none());
    }

    #[test]
    fn adaptive_gate_skips_until_gain_accrues() {
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(30);
        web.set_page("http://h/p", "body", modified).unwrap();
        let visited = clock.now() - Duration::days(2);
        let history = move |_: &str| Some(visited);
        let mut w = adaptive_tracker();

        // Baseline poll: a never-polled URL is always worth a request.
        let r = w.run(&[mark("http://h/p")], &history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Unchanged {
                source: CheckSource::Head
            }
        ));

        // An hour later the weekly-prior gain is ~0.6%: gated.
        clock.advance(Duration::hours(1));
        let before = web.stats().requests;
        let r = w.run(&[mark("http://h/p")], &history, &web, None);
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::BelowExpectedGain
            }
        );
        assert_eq!(web.stats().requests, before, "a gated URL costs nothing");

        // Six days in, p = 1 − e^(−6/7) ≈ 0.58 ≥ the 0.5 target: polled.
        clock.advance(Duration::days(6));
        let r = w.run(&[mark("http://h/p")], &history, &web, None);
        assert!(matches!(
            &r.entries[0].status,
            UrlStatus::Unchanged {
                source: CheckSource::Head
            }
        ));
        assert!(web.stats().requests > before);
    }

    #[test]
    fn adaptive_gate_learns_a_page_is_quiet() {
        let (clock, web) = setup();
        let modified = clock.now() - Duration::days(300);
        web.set_page("http://h/quiet", "body", modified).unwrap();
        let visited = clock.now() - Duration::days(200);
        let history = move |_: &str| Some(visited);
        let mut w = adaptive_tracker();
        {
            // A 7-day ceiling forces a weekly poll cadence whatever the
            // learned rate, so the estimator keeps accumulating quiet
            // exposure instead of being gated mid-experiment.
            use aide_sched::{AdaptiveScheduler, PriorRules, SchedulerConfig};
            let cfg = SchedulerConfig {
                max_interval: Duration::days(7),
                ..SchedulerConfig::default()
            };
            w.schedule = SchedulePolicy::Adaptive(Arc::new(AdaptiveScheduler::new(
                cfg,
                PriorRules::default(),
            )));
        }

        // Poll weekly for ten weeks; the page never changes, so the
        // posterior rate sinks well below the 1/week prior.
        for i in 0..10 {
            if i > 0 {
                clock.advance(Duration::days(7));
            }
            let r = w.run(&[mark("http://h/quiet")], &history, &web, None);
            assert!(matches!(&r.entries[0].status, UrlStatus::Unchanged { .. }));
        }
        let sched = w.schedule.scheduler().unwrap().clone();
        let learned = sched.url_rate_nanohz("http://h/quiet").unwrap();
        assert!(
            learned < aide_sched::RatePrior::WEEKLY.mean_nanohz() / 3,
            "ten quiet weeks should drop the rate well below the prior (got {learned})"
        );

        // Six days after the last poll a *cold* URL would be due
        // (p ≈ 0.58), but the learned quiet rate keeps this one gated.
        clock.advance(Duration::days(6));
        let r = w.run(&[mark("http://h/quiet")], &history, &web, None);
        assert_eq!(
            r.entries[0].status,
            UrlStatus::NotChecked {
                reason: SkipReason::BelowExpectedGain
            }
        );
    }

    #[test]
    fn adaptive_serial_and_pooled_reports_match() {
        // Estimator state is per-URL and each URL is checked once per
        // run, so worker interleaving cannot change adaptive verdicts.
        let build_world = || {
            let (clock, web) = setup();
            for h in 0..6 {
                for p in 0..4 {
                    let url = format!("http://host{h}.example/p{p}");
                    let age = Duration::days(1 + (h * 4 + p) % 9);
                    web.set_page(&url, "body", clock.now() - age).unwrap();
                }
            }
            let hotlist: Vec<Bookmark> = (0..6)
                .flat_map(|h| (0..4).map(move |p| mark(&format!("http://host{h}.example/p{p}"))))
                .collect();
            (clock, web, hotlist)
        };
        let run_twice = |pooled: bool| {
            let (clock, web, hotlist) = build_world();
            // Every page was seen after its last modification, so polls
            // verdict Unchanged and the run reaches the gate (a cached
            // Changed verdict would short-circuit before it).
            let visited = clock.now() - Duration::hours(1);
            let history = move |_: &str| Some(visited);
            let mut w = adaptive_tracker();
            let mut reports = Vec::new();
            for _ in 0..3 {
                let r = if pooled {
                    w.run_pooled(&hotlist, &history, &web, None, 4)
                } else {
                    w.run_serial(&hotlist, &history, &web, None)
                };
                reports.push(r);
                clock.advance(Duration::days(2));
            }
            let rates = w.schedule.scheduler().unwrap().snapshot_rates();
            (reports, rates)
        };
        let (serial, serial_rates) = run_twice(false);
        let (pooled, pooled_rates) = run_twice(true);
        assert_eq!(
            serial, pooled,
            "adaptive reports must not depend on the pool"
        );
        assert_eq!(serial_rates, pooled_rates, "estimator state must match too");
        // And the gate actually did something across the three runs.
        let skipped = serial
            .iter()
            .flat_map(|r| &r.entries)
            .filter(|e| {
                e.status
                    == UrlStatus::NotChecked {
                        reason: SkipReason::BelowExpectedGain,
                    }
            })
            .count();
        assert!(skipped > 0, "some polls should have been gated");
    }
}
