//! Property-based tests for the tracker.
//!
//! Invariants:
//! - a `never` threshold generates zero traffic, whatever the world
//!   looks like;
//! - w3newer's traffic never exceeds the every-run baseline's;
//! - a second run immediately after the first adds no traffic when
//!   thresholds are positive and the cache is trusted;
//! - the checker never reports "changed" for a page the user visited
//!   after its modification (when dates are available);
//! - config parse/threshold lookup is total for generated files.

use aide_simweb::browser::Bookmark;
use aide_simweb::fault::{FaultEpisode, FaultKind, FaultPlan};
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::breaker::{Admission, BreakerConfig, CircuitBreaker};
use aide_w3newer::checker::{Flags, UrlStatus};
use aide_w3newer::config::{Threshold, ThresholdConfig};
use aide_w3newer::retry::RetryPolicy;
use aide_w3newer::W3Newer;
use proptest::prelude::*;

/// A small random world: n pages with assorted ages, some visited.
#[derive(Debug, Clone)]
struct World {
    pages: Vec<(
        String,
        u64,         /* modified offset (s before now) */
        Option<u64>, /* visited offset */
    )>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    proptest::collection::vec(
        (0u64..20_000_000, proptest::option::of(0u64..20_000_000)),
        1..12,
    )
    .prop_map(|entries| World {
        pages: entries
            .into_iter()
            .enumerate()
            .map(|(i, (m, v))| (format!("http://host{}/p{i}.html", i % 3), m, v))
            .collect(),
    })
}

fn build(
    world: &World,
) -> (
    Web,
    Vec<Bookmark>,
    std::collections::HashMap<String, Timestamp>,
) {
    let now = Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0);
    let clock = Clock::starting_at(now);
    let web = Web::new(clock);
    let mut hotlist = Vec::new();
    let mut history = std::collections::HashMap::new();
    for (url, mod_off, visit_off) in &world.pages {
        web.set_page(
            url,
            &format!("<HTML>{url}</HTML>"),
            now - Duration::seconds(*mod_off),
        )
        .unwrap();
        hotlist.push(Bookmark {
            title: url.clone(),
            url: url.clone(),
        });
        if let Some(v) = visit_off {
            history.insert(url.clone(), now - Duration::seconds(*v));
        }
    }
    (web, hotlist, history)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn never_threshold_is_silent(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::new(Threshold::Never));
        let h = history.clone();
        let report = w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        prop_assert_eq!(web.stats().requests, 0);
        let all_skipped = report
            .entries
            .iter()
            .all(|e| matches!(e.status, UrlStatus::NotChecked { .. }));
        prop_assert!(all_skipped);
    }

    #[test]
    fn traffic_never_exceeds_baseline(world in world_strategy(), threshold_days in 0u64..5) {
        // Baseline: every-run, no cache trust.
        let (web_a, hotlist, history) = build(&world);
        let mut baseline = W3Newer::new(ThresholdConfig::default());
        baseline.flags = Flags { staleness: Duration::ZERO, ..Flags::default() };
        let h = history.clone();
        let hist_a = move |u: &str| h.get(u).copied();
        for _ in 0..3 {
            baseline.run(&hotlist, &hist_a, &web_a, None);
            web_a.clock().advance(Duration::days(1));
        }
        // Tracked: thresholds + cache.
        let (web_b, hotlist, history) = build(&world);
        let mut tracked = W3Newer::new(ThresholdConfig::new(Threshold::Every(Duration::days(threshold_days))));
        let h = history.clone();
        let hist_b = move |u: &str| h.get(u).copied();
        for _ in 0..3 {
            tracked.run(&hotlist, &hist_b, &web_b, None);
            web_b.clock().advance(Duration::days(1));
        }
        prop_assert!(web_b.stats().requests <= web_a.stats().requests);
    }

    #[test]
    fn immediate_rerun_is_free_with_thresholds(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::new(Threshold::Every(Duration::days(2))));
        let h = history.clone();
        let hist = move |u: &str| h.get(u).copied();
        w.run(&hotlist, &hist, &web, None);
        let after_first = web.stats().requests;
        w.run(&hotlist, &hist, &web, None);
        prop_assert_eq!(web.stats().requests, after_first, "second run must be free");
    }

    #[test]
    fn no_false_changed_reports(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        let h = history.clone();
        let report = w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        for e in &report.entries {
            if let UrlStatus::Changed { modified: Some(m), .. } = &e.status {
                if let Some(v) = e.last_visited {
                    let url = &e.url;
                    prop_assert!(
                        *m > v,
                        "{url} reported changed (mod {m:?}) though visited at {v:?}"
                    );
                }
            }
            if let UrlStatus::Unchanged { .. } = &e.status {
                prop_assert!(e.last_visited.is_some(), "unchanged requires a visit record");
            }
        }
    }

    #[test]
    fn config_lookup_total(
        lines in proptest::collection::vec(("[a-z]{1,8}", 0u64..9), 0..6),
        url in "[a-z]{1,12}",
    ) {
        let text: String = lines
            .iter()
            .map(|(pat, days)| format!("{pat} {days}d\n"))
            .collect();
        if let Ok(cfg) = ThresholdConfig::parse(&text) {
            // Lookup never panics and returns a rule or the default.
            let _ = cfg.threshold_for(&format!("http://{url}/"));
        }
    }

    #[test]
    fn cache_roundtrip_under_arbitrary_runs(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::default());
        let h = history.clone();
        w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        let emitted = w.cache.emit();
        let parsed = aide_w3newer::cache::TrackerCache::parse(&emitted);
        prop_assert_eq!(parsed, w.cache);
    }

    // --- retry/backoff policy --------------------------------------------

    #[test]
    fn retry_delays_monotone_and_capped(
        base in 0u64..90,
        extra in 0u64..300,
        seed in any::<u64>(),
        host in "[a-z]{1,16}",
    ) {
        let policy = RetryPolicy {
            max_attempts: 12,
            base_delay: Duration::seconds(base),
            max_delay: Duration::seconds(base + extra),
            budget: Duration::hours(10),
            jitter_seed: seed,
        };
        let url = format!("http://{host}/p.html");
        let mut prev = Duration::ZERO;
        for attempt in 1..=12u32 {
            let d = policy.delay_for(&url, attempt);
            prop_assert!(d <= policy.max_delay, "attempt {attempt}: {d:?} over cap");
            prop_assert!(
                d >= prev,
                "delay shrank at attempt {attempt}: {d:?} < {prev:?}"
            );
            prev = d;
        }
    }

    #[test]
    fn retry_jitter_deterministic(
        base in 1u64..60,
        seed in any::<u64>(),
        host in "[a-z]{1,12}",
        attempt in 1u32..10,
    ) {
        let mk = |s: u64| RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::seconds(base),
            max_delay: Duration::minutes(30),
            budget: Duration::hours(1),
            jitter_seed: s,
        };
        let url = format!("http://{host}/x.html");
        // Same (seed, url, attempt) always replays the same jitter.
        prop_assert_eq!(mk(seed).delay_for(&url, attempt), mk(seed).delay_for(&url, attempt));
    }

    #[test]
    fn retry_sleep_bounded_by_budget(budget_secs in 0u64..600, seed in any::<u64>()) {
        // One URL on a host that times out every single request. The
        // tracker runs at most two retry cycles for it (robots.txt,
        // then the HEAD), and backoff sleeping within each cycle is
        // capped by the policy's budget.
        let now = Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0);
        let clock = Clock::starting_at(now);
        let web = Web::new(clock.clone());
        web.set_page("http://dead/p.html", "<HTML>x</HTML>", now - Duration::days(3))
            .unwrap();
        web.install_fault_plan(
            FaultPlan::new(seed).for_host("dead", FaultEpisode::rate(1.0, FaultKind::Timeout)),
        );
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        w.retry = RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::seconds(5),
            max_delay: Duration::minutes(2),
            budget: Duration::seconds(budget_secs),
            jitter_seed: seed,
        };
        let hotlist = vec![Bookmark { title: "p".into(), url: "http://dead/p.html".into() }];
        let report = w.run_serial(&hotlist, &|_| None, &web, None);
        let slept = clock.now() - now;
        prop_assert_eq!(slept.as_secs(), report.net.slept_secs, "all waiting is backoff");
        prop_assert!(
            report.net.slept_secs <= 2 * budget_secs,
            "slept {}s against a per-request budget of {}s",
            report.net.slept_secs,
            budget_secs
        );
    }

    #[test]
    fn terminal_errors_never_retry(seed in any::<u64>()) {
        // A 404 is terminal: robots.txt probe plus one HEAD, no retries,
        // no backoff, even with an aggressive retry policy installed.
        let now = Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0);
        let web = Web::new(Clock::starting_at(now));
        web.set_page("http://h/exists.html", "<HTML>x</HTML>", now - Duration::days(3))
            .unwrap();
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        w.retry = RetryPolicy::standard(seed);
        let hotlist = vec![Bookmark { title: "m".into(), url: "http://h/missing.html".into() }];
        let report = w.run_serial(&hotlist, &|_| None, &web, None);
        prop_assert_eq!(report.net.retries, 0);
        prop_assert_eq!(report.net.slept_secs, 0);
        prop_assert_eq!(web.stats().requests, 2, "robots.txt + HEAD, nothing more");

        // Robots-denied is terminal before the page is ever touched.
        let web = Web::new(Clock::starting_at(now));
        web.set_page("http://h/private.html", "<HTML>x</HTML>", now - Duration::days(3))
            .unwrap();
        web.set_robots_txt("h", "User-agent: *\nDisallow: /\n");
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        w.retry = RetryPolicy::standard(seed);
        let hotlist = vec![Bookmark { title: "p".into(), url: "http://h/private.html".into() }];
        let report = w.run_serial(&hotlist, &|_| None, &web, None);
        prop_assert_eq!(report.net.retries, 0);
        prop_assert_eq!(report.net.slept_secs, 0);
        prop_assert_eq!(web.stats().requests, 1, "robots.txt only");
    }

    // --- circuit breaker state machine -----------------------------------

    #[test]
    fn breaker_matches_reference_state_machine(
        threshold in 1u32..6,
        cd in 10u64..500,
        ops in proptest::collection::vec((0u8..3, 0u64..1000), 1..80),
    ) {
        // Replay an arbitrary admit/success/failure schedule against a
        // tiny reference model of the documented state machine: an open
        // circuit never admits before its cool-down; half-open admits
        // exactly one probe; a probe's success closes, its failure
        // re-opens with a doubled (capped) cool-down.
        let max_cd = cd * 8;
        let br = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Duration::seconds(cd),
            max_cooldown: Duration::seconds(max_cd),
        });
        let base = Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0);

        #[derive(Clone, Copy, Debug)]
        enum Model {
            Closed(u32),
            Open { until: u64, cdn: u64 },
            HalfOpen { cdn: u64 },
        }
        let mut model = Model::Closed(0);
        let mut t = 0u64;
        for (op, dt) in ops {
            t += dt;
            let now = base + Duration::seconds(t);
            match op {
                0 => {
                    let got = br.admit("h", now);
                    let want = match model {
                        Model::Closed(_) => Admission::Allowed,
                        Model::Open { until, cdn } if t >= until => {
                            model = Model::HalfOpen { cdn };
                            Admission::Probe
                        }
                        Model::Open { .. } | Model::HalfOpen { .. } => Admission::Denied,
                    };
                    prop_assert_eq!(got, want, "admit at t={} with model {:?}", t, model);
                }
                1 => {
                    br.record_success("h");
                    model = match model {
                        // A success reported while open is stale news.
                        Model::Open { .. } => model,
                        Model::Closed(_) | Model::HalfOpen { .. } => Model::Closed(0),
                    };
                }
                _ => {
                    br.record_failure("h", now);
                    model = match model {
                        Model::Closed(f) if f + 1 >= threshold => {
                            Model::Open { until: t + cd, cdn: cd }
                        }
                        Model::Closed(f) => Model::Closed(f + 1),
                        Model::HalfOpen { cdn } => {
                            let next = (cdn * 2).min(max_cd);
                            Model::Open { until: t + next, cdn: next }
                        }
                        Model::Open { .. } => model,
                    };
                }
            }
        }
        prop_assert_eq!(
            br.is_open("h"),
            matches!(model, Model::Open { .. } | Model::HalfOpen { .. })
        );
    }
}
