//! Property-based tests for the tracker.
//!
//! Invariants:
//! - a `never` threshold generates zero traffic, whatever the world
//!   looks like;
//! - w3newer's traffic never exceeds the every-run baseline's;
//! - a second run immediately after the first adds no traffic when
//!   thresholds are positive and the cache is trusted;
//! - the checker never reports "changed" for a page the user visited
//!   after its modification (when dates are available);
//! - config parse/threshold lookup is total for generated files.

use aide_simweb::browser::Bookmark;
use aide_simweb::net::Web;
use aide_util::time::{Clock, Duration, Timestamp};
use aide_w3newer::checker::{Flags, UrlStatus};
use aide_w3newer::config::{Threshold, ThresholdConfig};
use aide_w3newer::W3Newer;
use proptest::prelude::*;

/// A small random world: n pages with assorted ages, some visited.
#[derive(Debug, Clone)]
struct World {
    pages: Vec<(
        String,
        u64,         /* modified offset (s before now) */
        Option<u64>, /* visited offset */
    )>,
}

fn world_strategy() -> impl Strategy<Value = World> {
    proptest::collection::vec(
        (0u64..20_000_000, proptest::option::of(0u64..20_000_000)),
        1..12,
    )
    .prop_map(|entries| World {
        pages: entries
            .into_iter()
            .enumerate()
            .map(|(i, (m, v))| (format!("http://host{}/p{i}.html", i % 3), m, v))
            .collect(),
    })
}

fn build(
    world: &World,
) -> (
    Web,
    Vec<Bookmark>,
    std::collections::HashMap<String, Timestamp>,
) {
    let now = Timestamp::from_ymd_hms(1995, 10, 1, 0, 0, 0);
    let clock = Clock::starting_at(now);
    let web = Web::new(clock);
    let mut hotlist = Vec::new();
    let mut history = std::collections::HashMap::new();
    for (url, mod_off, visit_off) in &world.pages {
        web.set_page(
            url,
            &format!("<HTML>{url}</HTML>"),
            now - Duration::seconds(*mod_off),
        )
        .unwrap();
        hotlist.push(Bookmark {
            title: url.clone(),
            url: url.clone(),
        });
        if let Some(v) = visit_off {
            history.insert(url.clone(), now - Duration::seconds(*v));
        }
    }
    (web, hotlist, history)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn never_threshold_is_silent(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::new(Threshold::Never));
        let h = history.clone();
        let report = w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        prop_assert_eq!(web.stats().requests, 0);
        let all_skipped = report
            .entries
            .iter()
            .all(|e| matches!(e.status, UrlStatus::NotChecked { .. }));
        prop_assert!(all_skipped);
    }

    #[test]
    fn traffic_never_exceeds_baseline(world in world_strategy(), threshold_days in 0u64..5) {
        // Baseline: every-run, no cache trust.
        let (web_a, hotlist, history) = build(&world);
        let mut baseline = W3Newer::new(ThresholdConfig::default());
        baseline.flags = Flags { staleness: Duration::ZERO, ..Flags::default() };
        let h = history.clone();
        let hist_a = move |u: &str| h.get(u).copied();
        for _ in 0..3 {
            baseline.run(&hotlist, &hist_a, &web_a, None);
            web_a.clock().advance(Duration::days(1));
        }
        // Tracked: thresholds + cache.
        let (web_b, hotlist, history) = build(&world);
        let mut tracked = W3Newer::new(ThresholdConfig::new(Threshold::Every(Duration::days(threshold_days))));
        let h = history.clone();
        let hist_b = move |u: &str| h.get(u).copied();
        for _ in 0..3 {
            tracked.run(&hotlist, &hist_b, &web_b, None);
            web_b.clock().advance(Duration::days(1));
        }
        prop_assert!(web_b.stats().requests <= web_a.stats().requests);
    }

    #[test]
    fn immediate_rerun_is_free_with_thresholds(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::new(Threshold::Every(Duration::days(2))));
        let h = history.clone();
        let hist = move |u: &str| h.get(u).copied();
        w.run(&hotlist, &hist, &web, None);
        let after_first = web.stats().requests;
        w.run(&hotlist, &hist, &web, None);
        prop_assert_eq!(web.stats().requests, after_first, "second run must be free");
    }

    #[test]
    fn no_false_changed_reports(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::default());
        w.flags.staleness = Duration::ZERO;
        let h = history.clone();
        let report = w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        for e in &report.entries {
            if let UrlStatus::Changed { modified: Some(m), .. } = &e.status {
                if let Some(v) = e.last_visited {
                    let url = &e.url;
                    prop_assert!(
                        *m > v,
                        "{url} reported changed (mod {m:?}) though visited at {v:?}"
                    );
                }
            }
            if let UrlStatus::Unchanged { .. } = &e.status {
                prop_assert!(e.last_visited.is_some(), "unchanged requires a visit record");
            }
        }
    }

    #[test]
    fn config_lookup_total(
        lines in proptest::collection::vec(("[a-z]{1,8}", 0u64..9), 0..6),
        url in "[a-z]{1,12}",
    ) {
        let text: String = lines
            .iter()
            .map(|(pat, days)| format!("{pat} {days}d\n"))
            .collect();
        if let Ok(cfg) = ThresholdConfig::parse(&text) {
            // Lookup never panics and returns a rule or the default.
            let _ = cfg.threshold_for(&format!("http://{url}/"));
        }
    }

    #[test]
    fn cache_roundtrip_under_arbitrary_runs(world in world_strategy()) {
        let (web, hotlist, history) = build(&world);
        let mut w = W3Newer::new(ThresholdConfig::default());
        let h = history.clone();
        w.run(&hotlist, &move |u| h.get(u).copied(), &web, None);
        let emitted = w.cache.emit();
        let parsed = aide_w3newer::cache::TrackerCache::parse(&emitted);
        prop_assert_eq!(parsed, w.cache);
    }
}
