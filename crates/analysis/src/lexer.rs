//! A minimal Rust lexer sufficient for lexical lint passes.
//!
//! The lints in this crate do not need a parse tree; they need to know
//! which bytes of a source file are *code* as opposed to comment or
//! literal text. [`lex`] produces a byte-for-byte *masked* copy of the
//! input in which the bodies of comments, string literals (plain, raw,
//! and byte), and character literals are replaced by spaces — newlines
//! and literal delimiters are preserved, so offsets, line numbers, and
//! patterns like `.expect("` survive masking — plus the list of comments
//! (for waiver parsing).
//!
//! The tricky corners of Rust's lexical grammar that matter here are all
//! handled: nested `/* /* */ */` block comments, raw strings with
//! arbitrary `#` fencing (`r##"…"##`), byte and byte-raw strings, escape
//! sequences inside string/char literals, and the `'a` lifetime versus
//! `'a'` character-literal ambiguity.

/// One comment extracted from a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text without its delimiters (`//`, `/* */`).
    pub text: String,
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// Whether only whitespace precedes the comment on its first line.
    pub standalone: bool,
}

/// The result of lexing one file.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// The masked source: same byte length as the input, with comment
    /// bodies and literal contents blanked to spaces (newlines kept).
    pub masked: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
}

/// Returns whether `b` can appear in an identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks comments and literals out of `src`. See the module docs.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut line: u32 = 1;
    let mut line_start = 0usize;
    let mut i = 0usize;

    // Blanks out[lo..hi], preserving newlines (and counting them).
    fn blank(out: &mut [u8], lo: usize, hi: usize, line: &mut u32, line_start: &mut usize) {
        for (j, b) in out.iter_mut().enumerate().take(hi).skip(lo) {
            if *b == b'\n' {
                *line += 1;
                *line_start = j + 1;
            } else {
                *b = b' ';
            }
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                line_start = i + 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                let start_line = line;
                let standalone = src[line_start..i].chars().all(char::is_whitespace);
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: src[start + 2..i].to_string(),
                    line: start_line,
                    standalone,
                });
                blank(&mut out, start, i, &mut line, &mut line_start);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let standalone = src[line_start..i].chars().all(char::is_whitespace);
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(start + 2);
                comments.push(Comment {
                    text: src[start + 2..text_end].to_string(),
                    line: start_line,
                    standalone,
                });
                blank(&mut out, start, i, &mut line, &mut line_start);
            }
            b'"' => {
                i = mask_plain_string(bytes, &mut out, i, &mut line, &mut line_start);
            }
            b'r' if is_raw_ident_start(bytes, i) => {
                // `r#match` / `r#type`: a raw identifier, not the start of
                // a raw string. Consume the whole identifier as code so
                // the `#` can never be mistaken for a string fence.
                i += 2;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
            }
            b'r' | b'b' if starts_literal_prefix(bytes, i) => {
                // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`.
                let prefix_end = literal_prefix_end(bytes, i);
                match bytes.get(prefix_end) {
                    Some(&b'"') | Some(&b'#') if has_raw_marker(bytes, i, prefix_end) => {
                        i = mask_raw_string(
                            bytes,
                            &mut out,
                            prefix_end,
                            &mut line,
                            &mut line_start,
                        );
                    }
                    Some(&b'"') => {
                        i = mask_plain_string(
                            bytes,
                            &mut out,
                            prefix_end,
                            &mut line,
                            &mut line_start,
                        );
                    }
                    Some(&b'\'') => {
                        i = mask_char_literal(bytes, &mut out, prefix_end);
                    }
                    _ => i += 1,
                }
            }
            b'\'' => {
                if char_literal_len(bytes, i).is_some() {
                    i = mask_char_literal(bytes, &mut out, i);
                } else {
                    // A lifetime (`'a`) or loop label: leave it as code.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    // Masking only ever writes ASCII spaces over complete masked regions;
    // multibyte characters either survive untouched or are fully blanked,
    // so the result is valid UTF-8. Fall back to lossy decoding rather
    // than aborting if that reasoning is ever wrong.
    let masked = match String::from_utf8(out) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    };
    Lexed { masked, comments }
}

/// Whether the `r` at `i` starts a raw identifier (`r#match`): an `r` at
/// an identifier boundary, a `#`, then an identifier character that is
/// not a digit. `r#"…"#` fails the last test (the byte after `#` is a
/// quote) and lexes as a raw string.
pub fn is_raw_ident_start(bytes: &[u8], i: usize) -> bool {
    (i == 0 || !is_ident_byte(bytes[i - 1]))
        && bytes.get(i + 1) == Some(&b'#')
        && bytes
            .get(i + 2)
            .is_some_and(|&b| is_ident_byte(b) && !b.is_ascii_digit())
}

/// Whether the `r`/`b` at `i` starts a literal prefix rather than being
/// part of an identifier like `for` or `b2`.
fn starts_literal_prefix(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let end = literal_prefix_end(bytes, i);
    if end == i {
        return false;
    }
    matches!(bytes.get(end), Some(&b'"') | Some(&b'#') | Some(&b'\''))
}

/// Returns the index just past a `r` / `b` / `br` literal prefix at `i`,
/// or `i` if none applies.
fn literal_prefix_end(bytes: &[u8], i: usize) -> usize {
    match bytes[i] {
        b'r' => i + 1,
        b'b' => match bytes.get(i + 1) {
            Some(&b'r') => i + 2,
            Some(&b'"') | Some(&b'\'') => i + 1,
            _ => i,
        },
        _ => i,
    }
}

/// Whether the prefix spanning `start..prefix_end` contains an `r`
/// (i.e. the literal is raw).
fn has_raw_marker(bytes: &[u8], start: usize, prefix_end: usize) -> bool {
    bytes[start..prefix_end].contains(&b'r')
}

/// Masks `"…"` starting at the opening quote `open`; returns the index
/// past the closing quote. Keeps both quote bytes.
fn mask_plain_string(
    bytes: &[u8],
    out: &mut [u8],
    open: usize,
    line: &mut u32,
    line_start: &mut usize,
) -> usize {
    let mut i = open + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                for j in open + 1..i {
                    if bytes[j] == b'\n' {
                        *line += 1;
                        *line_start = j + 1;
                    } else {
                        out[j] = b' ';
                    }
                }
                return i + 1;
            }
            _ => i += 1,
        }
    }
    // Unterminated string: blank to EOF.
    for ob in out.iter_mut().skip(open + 1).filter(|ob| **ob != b'\n') {
        *ob = b' ';
    }
    bytes.len()
}

/// Masks `r#"…"#`-style raw strings whose first `#`/`"` is at `fence`;
/// returns the index past the closing fence.
fn mask_raw_string(
    bytes: &[u8],
    out: &mut [u8],
    fence: usize,
    line: &mut u32,
    line_start: &mut usize,
) -> usize {
    let mut hashes = 0usize;
    let mut i = fence;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return fence + 1;
    }
    let body_start = i + 1;
    let mut j = body_start;
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                for (p, ob) in out.iter_mut().enumerate().take(j).skip(body_start) {
                    if bytes[p] == b'\n' {
                        *line += 1;
                        *line_start = p + 1;
                    } else {
                        *ob = b' ';
                    }
                }
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    for (p, ob) in out.iter_mut().enumerate().skip(body_start) {
        if bytes[p] == b'\n' {
            *line += 1;
            *line_start = p + 1;
        } else {
            *ob = b' ';
        }
    }
    bytes.len()
}

/// If a character literal starts at the `'` at `i`, returns its total
/// byte length; `None` means `i` starts a lifetime or label.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote (handles `'\n'`, `'\\'`,
            // `'\u{1F600}'` …).
            let mut j = i + 2;
            while j < bytes.len() && j < i + 12 {
                if bytes[j] == b'\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        b'\'' => None, // `''` is not a char literal
        first => {
            // One character (possibly multibyte) then a closing quote.
            let ch_len = match first {
                0x00..=0x7F => 1,
                0xC0..=0xDF => 2,
                0xE0..=0xEF => 3,
                _ => 4,
            };
            if bytes.get(i + 1 + ch_len) == Some(&b'\'') {
                Some(ch_len + 2)
            } else {
                None
            }
        }
    }
}

/// Masks a char literal at `open`; returns the index past it.
fn mask_char_literal(bytes: &[u8], out: &mut [u8], open: usize) -> usize {
    match char_literal_len(bytes, open) {
        Some(len) => {
            for ob in out.iter_mut().take(open + len - 1).skip(open + 1) {
                *ob = b' ';
            }
            open + len
        }
        None => open + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let l = lex("let x = 1; // SystemTime here\n/* thread_rng */ let y = 2;\n");
        assert!(!l.masked.contains("SystemTime"));
        assert!(!l.masked.contains("thread_rng"));
        assert!(l.masked.contains("let y = 2;"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " SystemTime here");
        assert!(!l.comments[0].standalone);
        assert!(l.comments[1].standalone);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        assert!(l.masked.starts_with('a'));
        assert!(l.masked.ends_with('b'));
        assert!(!l.masked.contains("inner"));
        assert!(!l.masked.contains("still"));
    }

    #[test]
    fn masks_string_contents_but_keeps_quotes() {
        let l = lex(r#"x.expect("SystemTime broke"); y("ok");"#);
        assert!(l.masked.contains("x.expect(\""));
        assert!(!l.masked.contains("SystemTime"));
        assert_eq!(
            l.masked.len(),
            r#"x.expect("SystemTime broke"); y("ok");"#.len()
        );
    }

    #[test]
    fn raw_and_byte_strings() {
        let l =
            lex(r###"let p = r#"panic!("inside")"#; let b = b"unwrap()"; let br = br##"x"##;"###);
        assert!(!l.masked.contains("panic!"));
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("let b ="));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(l.masked.contains("<'a>"));
        assert!(l.masked.contains("&'a str"));
        assert!(!l.masked.contains("'x'"));
        assert!(!l.masked.contains("\\n"));
    }

    #[test]
    fn escaped_quotes_inside_strings() {
        let l = lex(r#"let s = "he said \"unwrap()\" loudly"; done();"#);
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("done();"));
    }

    #[test]
    fn multiline_strings_preserve_line_numbers() {
        let src = "let a = \"line1\nline2\nline3\";\n// after\nlet b = 1;\n";
        let l = lex(src);
        assert_eq!(l.masked.len(), src.len());
        assert_eq!(
            l.masked.matches('\n').count(),
            src.matches('\n').count(),
            "newlines preserved"
        );
        assert_eq!(l.comments[0].line, 4);
    }

    #[test]
    fn identifier_r_is_not_raw_string() {
        let l = lex("for r in rs { r.f(); } let var_b = b; expr\"s\"");
        assert!(l.masked.contains("for r in rs"));
        assert!(l.masked.contains("let var_b = b;"));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let l = lex("fn r#match(r#type: u32) -> u32 { r#type + 1 } done();");
        assert!(l.masked.contains("fn r#match(r#type: u32)"));
        assert!(l.masked.contains("r#type + 1"));
        assert!(l.masked.contains("done();"));
    }

    #[test]
    fn raw_identifier_before_string_still_masks_the_string() {
        let l = lex(r##"let r#type = 1; let s = "secret"; let raw = r#"panic!()"#;"##);
        assert!(l.masked.contains("let r#type = 1;"));
        assert!(!l.masked.contains("secret"));
        assert!(!l.masked.contains("panic!"));
    }

    #[test]
    fn raw_string_is_not_a_raw_identifier() {
        let l = lex(r##"let a = r#"unwrap()"#; let b = r"also masked";"##);
        assert!(!l.masked.contains("unwrap"));
        assert!(!l.masked.contains("also masked"));
        assert!(l.masked.contains("let b ="));
    }
}
