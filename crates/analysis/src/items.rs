//! A lightweight item parser over the lexer/scope output: every `fn`
//! item in the workspace, with its enclosing `impl` type, visibility,
//! return-type text, and body span. This is the symbol table the call
//! graph ([`crate::callgraph`]) resolves against.
//!
//! Like the rest of this crate it is lexical, not syntactic: `impl`
//! headers are recognized by scanning the masked source, visibility by
//! looking back from the `fn` keyword, and the self type by taking the
//! final path segment of the `impl` (or `impl … for`) type. That is
//! enough for name-based resolution; anything it cannot classify becomes
//! a counted unresolved call rather than a wrong edge.

use crate::lexer::is_ident_byte;
use crate::scope::{brace_match, ident_occurrences, FileMap};

/// One function item, workspace-wide.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index into the workspace file list.
    pub file: usize,
    /// The function's name (raw identifiers are unescaped: `r#match` →
    /// `match`).
    pub name: String,
    /// The `impl` type the function is a method of, if any (`impl Foo`
    /// and `impl Trait for Foo` both yield `Foo`).
    pub self_ty: Option<String>,
    /// Whether the item carries a `pub` qualifier.
    pub is_pub: bool,
    /// Byte offset of the `fn` keyword in its file.
    pub sig_start: usize,
    /// Byte range of the `{ … }` body in its file.
    pub body: (usize, usize),
    /// Return-type text (masked), empty when the function returns `()`.
    pub ret: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the item sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Whether the item sits inside a `#[cfg(debug_assertions)]` region.
    pub in_debug: bool,
}

impl FnItem {
    /// `Type::name` when the item is a method, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `impl` block: its self type and brace span.
#[derive(Debug, Clone)]
struct ImplSpan {
    self_ty: String,
    body: (usize, usize),
}

/// Collects every `fn` item in `fm`, tagged with file index `file_idx`.
pub fn collect(fm: &FileMap, file_idx: usize) -> Vec<FnItem> {
    let impls = find_impls(&fm.masked);
    let mut out = Vec::new();
    for f in &fm.fns {
        let sig = &fm.masked[f.sig_start..f.body.0];
        let ret = sig
            .find("->")
            .map(|arrow| ret_text(&sig[arrow + 2..]))
            .unwrap_or_default();
        let self_ty = impls
            .iter()
            .filter(|im| f.sig_start > im.body.0 && f.sig_start < im.body.1)
            .min_by_key(|im| im.body.1 - im.body.0)
            .map(|im| im.self_ty.clone());
        let (line, _) = fm.line_col(f.sig_start);
        out.push(FnItem {
            file: file_idx,
            name: f.name.clone(),
            self_ty,
            is_pub: is_pub(&fm.masked, f.sig_start),
            sig_start: f.sig_start,
            body: f.body,
            ret,
            line,
            in_test: fm.in_test(f.sig_start),
            in_debug: fm.in_debug(f.sig_start),
        });
    }
    out
}

/// The return type up to the body's opening brace or a `where` clause,
/// whitespace-normalized.
fn ret_text(after_arrow: &str) -> String {
    let cut = after_arrow
        .find(" where ")
        .or_else(|| after_arrow.find('{'))
        .unwrap_or(after_arrow.len());
    after_arrow[..cut]
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

/// Whether the item declared at `sig_start` carries `pub`: scan the text
/// back to the previous item boundary (`;`, `{`, `}`, or `]` closing an
/// attribute) for a `pub` token. Masked comments are already blank, so
/// prose cannot fool this.
fn is_pub(masked: &str, sig_start: usize) -> bool {
    let b = masked.as_bytes();
    let mut i = sig_start;
    while i > 0 {
        match b[i - 1] {
            b';' | b'{' | b'}' | b']' => break,
            _ => i -= 1,
        }
    }
    !ident_occurrences(&masked[i..sig_start], "pub").is_empty()
}

/// Locates every `impl` block and extracts its self type.
fn find_impls(masked: &str) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    for at in ident_occurrences(masked, "impl") {
        // Header runs to the block's opening brace. Generic bounds can
        // contain `{` only inside const generics, which the workspace
        // does not use in impl headers.
        let Some(open_rel) = masked[at..].find('{') else {
            continue;
        };
        let open = at + open_rel;
        let header = &masked[at + 4..open];
        let ty_text = match header.rfind(" for ") {
            Some(p) => &header[p + 5..],
            None => skip_generics(header),
        };
        if let Some(name) = first_type_ident(ty_text) {
            out.push(ImplSpan {
                self_ty: name,
                body: (open, brace_match(masked, open)),
            });
        }
    }
    out
}

/// Skips a leading `<…>` generic-parameter list.
fn skip_generics(header: &str) -> &str {
    let t = header.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let b = t.as_bytes();
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// The first meaningful type identifier in `ty_text`: skips `&`,
/// lifetimes, `dyn` / `mut`, and module path prefixes, returning the
/// last segment's head identifier (`fmt::Display` → `Display`,
/// `AideEngine<R>` → `AideEngine`).
fn first_type_ident(ty_text: &str) -> Option<String> {
    let mut last: Option<String> = None;
    let b = ty_text.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if is_ident_byte(c) {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            let word = &ty_text[start..i];
            match word {
                "dyn" | "mut" | "const" => continue,
                _ => {}
            }
            last = Some(word.to_string());
            // A `<` or end-of-path means this segment is the type head;
            // `::` means another segment follows.
            if !ty_text[i..].trim_start().starts_with("::") {
                return last;
            }
        } else if c == b'\'' {
            // Lifetime: skip the tick and its identifier.
            i += 1;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
        } else {
            i += 1;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<FnItem> {
        let fm = FileMap::new("crates/x/src/lib.rs", src);
        collect(&fm, 0)
    }

    #[test]
    fn free_and_method_items() {
        let src = "pub fn free() {}\n\
                   struct Foo;\n\
                   impl Foo {\n    pub fn method(&self) -> u32 { 1 }\n    fn hidden(&self) {}\n}\n\
                   impl std::fmt::Display for Foo {\n    fn fmt(&self) {}\n}\n";
        let it = items(src);
        let by_name: Vec<(String, Option<String>, bool)> = it
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.is_pub))
            .collect();
        assert_eq!(
            by_name,
            [
                ("free".into(), None, true),
                ("method".into(), Some("Foo".into()), true),
                ("hidden".into(), Some("Foo".into()), false),
                ("fmt".into(), Some("Foo".into()), false),
            ]
        );
        assert_eq!(it[1].ret, "u32");
        assert_eq!(it[1].qualified(), "Foo::method");
    }

    #[test]
    fn generic_impl_headers() {
        let src = "impl<R: Repository> AideEngine<R> {\n    fn run(&self) {}\n}\n\
                   impl<'a> Cursor<'a> {\n    fn next(&mut self) {}\n}\n";
        let it = items(src);
        assert_eq!(it[0].self_ty.as_deref(), Some("AideEngine"));
        assert_eq!(it[1].self_ty.as_deref(), Some("Cursor"));
    }

    #[test]
    fn test_and_debug_flags() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n\
                   #[cfg(debug_assertions)]\nmod dynamic {\n    fn note() {}\n}\n";
        let it = items(src);
        assert!(!it[0].in_test && !it[0].in_debug);
        assert!(it[1].in_test);
        assert!(it[2].in_debug);
    }

    #[test]
    fn pub_crate_counts_as_pub() {
        let it = items("pub(crate) fn f() {}\nfn g() {}\n");
        assert!(it[0].is_pub);
        assert!(!it[1].is_pub);
    }
}
