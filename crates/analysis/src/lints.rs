//! The six lint passes. Each works purely on the masked source (see
//! [`crate::lexer`]) plus the structural indexes in [`crate::scope`].
//!
//! These are *lexical* checks: they trade type-level precision for zero
//! dependencies and total workspace coverage, and rely on the waiver
//! mechanism (see [`crate::waivers`]) for the handful of sites where the
//! heuristic is wrong or the violation is deliberate. LINTS.md documents
//! each rule, its rationale, and its known blind spots.

use crate::config::{panic_checked, vfs_boundary_checked, wallclock_allowed, Config};
use crate::scope::{ident_occurrences, FileMap};
use aide_util::sync::lockrank;

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint family name.
    pub lint: &'static str,
    /// What was found.
    pub message: String,
    /// One-line fix suggestion.
    pub hint: &'static str,
}

/// Runs every enabled lint over one file. Findings are returned in file
/// order; waivers are applied by the caller.
pub fn lint_file(fm: &FileMap, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.enabled("determinism") {
        determinism(fm, &mut out);
    }
    if cfg.enabled("hash-iter") {
        hash_iter(fm, &mut out);
    }
    if cfg.enabled("lock-order") {
        lock_order(fm, &mut out);
    }
    if cfg.enabled("no-panic") {
        no_panic(fm, &mut out);
    }
    if cfg.enabled("seqcst") {
        seqcst(fm, &mut out);
    }
    if cfg.enabled("vfs-boundary") {
        vfs_boundary(fm, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}

fn push(
    fm: &FileMap,
    out: &mut Vec<Finding>,
    off: usize,
    lint: &'static str,
    message: String,
    hint: &'static str,
) {
    let (line, col) = fm.line_col(off);
    out.push(Finding {
        file: fm.rel.clone(),
        line,
        col,
        lint,
        message,
        hint,
    });
}

// ---------------------------------------------------------------- lint 1

/// Identifiers whose presence means code is reading ambient time,
/// randomness, or environment — the things that break the virtual-clock
/// determinism contract (DESIGN.md §4e–§4g).
const AMBIENT: &[&str] = &[
    "SystemTime",
    "Instant",
    "std::time",
    "thread_rng",
    "from_entropy",
    "rand::random",
    "getrandom",
    "std::env",
];

fn determinism(fm: &FileMap, out: &mut Vec<Finding>) {
    if wallclock_allowed(&fm.rel) {
        return;
    }
    for needle in AMBIENT {
        for off in ident_occurrences(&fm.masked, needle) {
            if fm.in_test(off) {
                continue;
            }
            push(
                fm,
                out,
                off,
                "determinism",
                format!("ambient time/randomness/environment source `{needle}`"),
                "route time through aide_util::time::Clock and randomness through aide_util::Rng; \
                 only crates/util/src/time.rs and the bench harness may touch the real world",
            );
        }
    }
}

// ---------------------------------------------------------------- lint 2

/// Iterator-draw method calls whose order is arbitrary on a hash
/// container.
const HASH_DRAWS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain(",
];

/// Tokens that mean a function renders or serializes output.
const SINKS: &[&str] = &[
    "format!",
    "write!",
    "writeln!",
    "push_str",
    "print!",
    "println!",
    "serialize",
    "to_json",
];

/// Order-insensitive consumers: iteration feeding one of these within
/// the suppression window is fine regardless of hash order.
const ORDER_FREE: &[&str] = &[
    ".sort",
    ".sum(",
    ".count(",
    ".fold(",
    ".all(",
    ".any(",
    ".max",
    ".min",
    ".product(",
    "BTreeMap",
    "BTreeSet",
    ".len(",
];

/// How far past an iteration draw to look for a sort or an
/// order-insensitive reduction (covers the `let mut v: Vec<_> = …;
/// v.sort();` idiom).
const SUPPRESS_WINDOW: usize = 400;

fn hash_iter(fm: &FileMap, out: &mut Vec<Finding>) {
    let names = hash_container_names(fm);
    if names.is_empty() {
        return;
    }
    let masked = &fm.masked;
    let mut flagged_lines: Vec<u32> = Vec::new();
    let mut candidates: Vec<(usize, String)> = Vec::new();
    for draw in HASH_DRAWS {
        let mut from = 0usize;
        while let Some(pos) = masked[from..].find(draw) {
            let at = from + pos;
            from = at + draw.len();
            let chain = receiver_chain(masked, at);
            if let Some(name) = chain.iter().find(|c| names.contains(c)) {
                candidates.push((at, name.clone()));
            }
        }
    }
    // `for pat in expr {` draws.
    for at in ident_occurrences(masked, "for") {
        let Some(rest) = masked.get(at..(at + 200).min(masked.len())) else {
            continue;
        };
        let Some(in_rel) = rest.find(" in ") else {
            continue;
        };
        let Some(brace_rel) = rest.find('{') else {
            continue;
        };
        if brace_rel <= in_rel {
            continue;
        }
        let expr = &rest[in_rel + 4..brace_rel];
        for name in &names {
            if ident_occurrences(expr, name).is_empty() {
                continue;
            }
            candidates.push((at, name.clone()));
        }
    }
    candidates.sort();
    candidates.dedup();
    for (at, name) in candidates {
        if fm.in_test(at) {
            continue;
        }
        let Some(f) = fm.enclosing_fn(at) else {
            continue;
        };
        let body = &masked[f.body.0..f.body.1];
        if !SINKS.iter().any(|s| body.contains(s)) {
            continue;
        }
        let window_end = (at + SUPPRESS_WINDOW).min(f.body.1);
        let window = &masked[at..window_end];
        if ORDER_FREE.iter().any(|s| window.contains(s)) {
            continue;
        }
        let (line, _) = fm.line_col(at);
        if flagged_lines.contains(&line) {
            continue;
        }
        flagged_lines.push(line);
        push(
            fm,
            out,
            at,
            "hash-iter",
            format!("iteration over hash container `{name}` in a function that formats/serializes output"),
            "sort before rendering (collect + sort, or a BTreeMap) so output is byte-stable, \
             as aide-obs's sorted-at-export renderers do",
        );
    }
}

/// Collects identifiers in this file that are (or produce) `HashMap` /
/// `HashSet` values: `let` bindings, typed fields/params, and functions
/// whose return type mentions a hash container.
fn hash_container_names(fm: &FileMap) -> Vec<String> {
    let masked = &fm.masked;
    let b = masked.as_bytes();
    let mut names = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        for at in ident_occurrences(masked, ty) {
            // Walk back to the start of the declaration segment.
            let mut i = at;
            let mut segment_start = 0usize;
            while i > 0 {
                let c = b[i - 1];
                if c == b';' || c == b'{' || c == b'}' || c == b'(' || c == b',' {
                    segment_start = i;
                    break;
                }
                i -= 1;
            }
            let seg = &masked[segment_start..at];
            if let Some(name) = declared_name(seg) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    // Functions returning hash containers: `fn shard(…) -> &RwLock<HashMap<…>>`.
    for f in &fm.fns {
        let sig = &masked[f.sig_start..f.body.0];
        if let Some(arrow) = sig.find("->") {
            let ret = &sig[arrow..];
            if (ret.contains("HashMap") || ret.contains("HashSet")) && !names.contains(&f.name) {
                names.push(f.name.clone());
            }
        }
    }
    names
}

/// Extracts the declared identifier from a declaration segment ending
/// just before a `HashMap`/`HashSet` token: `name: …`, `let [mut] name
/// [: …] = …`, or `name = …`.
fn declared_name(seg: &str) -> Option<String> {
    // `let mut name = HashMap::new()` / `let name: HashMap<…> = …`
    let trimmed = seg.trim_start();
    if let Some(rest) = trimmed.strip_prefix("let ") {
        let rest = rest.trim_start();
        let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        return if name.is_empty() || name == "_" {
            None
        } else {
            Some(name)
        };
    }
    // `name: Type<HashMap<…>>` (field or parameter). Find the first
    // single `:` that is not part of `::`.
    let bytes = seg.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b':' {
            if bytes.get(i + 1) == Some(&b':') || (i > 0 && bytes[i - 1] == b':') {
                i += 1;
                continue;
            }
            // A `)` after the colon means the colon types a parameter and
            // the hash container sits in a return type; the
            // function-return rule in the caller handles that case.
            if seg[i..].contains(')') {
                return None;
            }
            let before = seg[..i].trim_end();
            let name: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            return if name.is_empty() { None } else { Some(name) };
        }
        i += 1;
    }
    None
}

/// Walks the method-call chain leftward from the `.` at `dot_at`,
/// collecting the base identifiers (`self.diff_cache.shard(url).lock()`
/// → `["lock", "shard", "diff_cache", "self"]`-ish, minus `self`).
pub(crate) fn receiver_chain(masked: &str, dot_at: usize) -> Vec<String> {
    let b = masked.as_bytes();
    let mut idents = Vec::new();
    let mut i = dot_at;
    loop {
        // Skip whitespace backwards.
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            break;
        }
        match b[i - 1] {
            b')' | b']' => {
                // Skip a balanced group backwards.
                let close = b[i - 1];
                let open = if close == b')' { b'(' } else { b'[' };
                let mut depth = 0usize;
                while i > 0 {
                    let c = b[i - 1];
                    if c == close {
                        depth += 1;
                    } else if c == open {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    i -= 1;
                }
            }
            c if crate::lexer::is_ident_byte(c) => {
                let end = i;
                while i > 0 && crate::lexer::is_ident_byte(b[i - 1]) {
                    i -= 1;
                }
                idents.push(masked[i..end].to_string());
            }
            b'.' => {
                i -= 1;
            }
            b':' if i > 1 && b[i - 2] == b':' => {
                i -= 2;
            }
            _ => break,
        }
    }
    idents
}

// ---------------------------------------------------------------- lint 3

#[derive(Debug, Clone)]
struct HeldGuard {
    class: &'static lockrank::LockClass,
    receiver: String,
    /// Names the guard is reachable through (destructuring can bind it
    /// under several, e.g. `let (g, h) = …`); `drop(name)` releases when
    /// `name` is any of them.
    names: Vec<String>,
    depth: usize,
    line: u32,
}

fn lock_order(fm: &FileMap, out: &mut Vec<Finding>) {
    for f in &fm.fns {
        if fm.in_test(f.body.0) {
            continue;
        }
        lock_order_fn(fm, f.body, out);
    }
}

/// Classifies one acquisition site; `None` means "not an acquisition".
pub(crate) fn classify_acquisition(masked: &str, at: usize, stmt: &str) -> Option<&'static str> {
    let after = &masked[at..];
    if after.starts_with(".lock()") || after.starts_with(".read()") || after.starts_with(".write()")
    {
        return Some("structure");
    }
    if after.starts_with(".once(") {
        return Some("flight");
    }
    if after.starts_with(".lock_shard(") {
        // aide-store's shard acquisition (rank-checked mutex per shard).
        return Some("store");
    }
    if after.starts_with(".lock(") {
        // Named lock with a key argument.
        if stmt.contains("url_key") {
            return Some("url");
        }
        if stmt.contains("user_key") {
            return Some("user");
        }
        return Some("flight");
    }
    None
}

fn lock_order_fn(fm: &FileMap, body: (usize, usize), out: &mut Vec<Finding>) {
    let masked = &fm.masked;
    let b = masked.as_bytes();

    // Pre-collect acquisition and drop sites inside the body.
    let mut events: Vec<usize> = Vec::new();
    for pat in [".lock(", ".lock_shard(", ".read()", ".write()", ".once("] {
        let mut from = body.0;
        while let Some(pos) = masked[from..body.1].find(pat) {
            let at = from + pos;
            events.push(at);
            from = at + pat.len();
        }
    }
    events.sort_unstable();
    events.dedup();

    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth = 0usize;
    let mut ev = events.iter().peekable();
    let mut i = body.0;
    while i < body.1 {
        // Handle any acquisition event at this offset.
        if let Some(&&at) = ev.peek() {
            if at == i {
                ev.next();
                let (stmt_start, stmt_end) = statement_bounds(masked, body, at);
                let stmt = &masked[stmt_start..stmt_end];
                if let Some(class_name) = classify_acquisition(masked, at, stmt) {
                    let class = lockrank::class(class_name).unwrap_or(&lockrank::TABLE[0]);
                    let receiver = normalize(&receiver_text(masked, at, stmt_start));
                    let (line, _) = fm.line_col(at);
                    for g in &held {
                        if g.class.rank > class.rank {
                            push(
                                fm,
                                out,
                                at,
                                "lock-order",
                                format!(
                                    "lock-order inversion: acquiring `{}` (rank {}) while `{}` (rank {}) from line {} is held",
                                    class.name, class.rank, g.class.name, g.class.rank, g.line
                                ),
                                "acquire locks in ascending rank order (flight, url, user, sched, wal, store, then structure guards); \
                                 see the shared rank table in aide_util::sync::lockrank",
                            );
                        } else if class.exclusive && g.class.name == class.name {
                            push(
                                fm,
                                out,
                                at,
                                "lock-order",
                                format!(
                                    "second `{}` lock acquired while the one from line {} is still held",
                                    class.name, g.line
                                ),
                                "hold at most one lock of each named kind; drop the first guard before taking another",
                            );
                        } else if class.name == "structure"
                            && g.class.name == "structure"
                            && !g.receiver.is_empty()
                            && g.receiver == receiver
                        {
                            push(
                                fm,
                                out,
                                at,
                                "lock-order",
                                format!(
                                    "re-acquiring `{}` while the guard from line {} is still held (self-deadlock)",
                                    receiver, g.line
                                ),
                                "reuse the existing guard instead of locking the same structure twice",
                            );
                        }
                    }
                    let names = crate::scope::bound_names(stmt);
                    if !names.is_empty() && binding_holds_guard(masked, at, (stmt_start, stmt_end))
                    {
                        // An `if let` / `while let` guard scopes to the
                        // block that follows, not the enclosing one.
                        let guard_depth = if crate::scope::is_conditional_binding(stmt) {
                            depth + 1
                        } else {
                            depth
                        };
                        held.push(HeldGuard {
                            class,
                            receiver,
                            names,
                            depth: guard_depth,
                            line,
                        });
                    }
                }
            }
        }
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
            }
            b'd' if masked[i..].starts_with("drop(") => {
                let arg_end = masked[i + 5..body.1]
                    .find(')')
                    .map(|p| i + 5 + p)
                    .unwrap_or(body.1);
                let arg = normalize(&masked[i + 5..arg_end]);
                held.retain(|g| !g.names.iter().any(|n| n == &arg));
            }
            _ => {}
        }
        i += 1;
    }
}

/// Finds the statement containing `at` within `body`: bounded by `;`,
/// `{`, or `}` at the statement's own nesting level.
pub(crate) fn statement_bounds(masked: &str, body: (usize, usize), at: usize) -> (usize, usize) {
    let b = masked.as_bytes();
    // Backward: stop at `;`/`{`/`}` at depth 0 (counting groups we back
    // over).
    let mut depth = 0i32;
    let mut start = body.0;
    let mut i = at;
    while i > body.0 {
        let c = b[i - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => depth -= 1,
            b';' | b'{' | b'}' if depth <= 0 => {
                start = i;
                break;
            }
            _ => {}
        }
        i -= 1;
    }
    // Forward: stop at `;` or `{` or `}` at depth 0.
    let mut depth = 0i32;
    let mut end = body.1;
    let mut j = at;
    while j < body.1 {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b';' | b'{' | b'}' if depth <= 0 => {
                end = j;
                break;
            }
            _ => {}
        }
        j += 1;
    }
    (start, end.max(start))
}

/// The receiver expression text before the `.` at `at` (for
/// self-deadlock detection), bounded by the statement start.
pub(crate) fn receiver_text(masked: &str, at: usize, stmt_start: usize) -> String {
    let b = masked.as_bytes();
    let mut i = at;
    let mut depth = 0usize;
    while i > stmt_start {
        let c = b[i - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b'=' | b';' | b',' | b'&' if depth == 0 => break,
            c if c.is_ascii_whitespace() && depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    masked[i..at].to_string()
}

/// Whether a `let` binding whose right-hand side contains the
/// acquisition at `at` actually binds the *guard*, as opposed to a value
/// derived from it (`let v = m.lock().entries.get(k).cloned()` drops the
/// temporary guard at the end of the statement). The guard survives only
/// when nothing but unwrap-style adapters follow the lock call.
pub(crate) fn binding_holds_guard(masked: &str, at: usize, stmt: (usize, usize)) -> bool {
    let b = masked.as_bytes();
    // Find the close of the acquisition call's argument list.
    let Some(open_rel) = masked[at..stmt.1].find('(') else {
        return true;
    };
    let mut i = at + open_rel;
    let mut depth = 0usize;
    while i < stmt.1 {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Skip chained `.unwrap()` / `.expect(…)` / `.unwrap_or_else(…)`
    // adapters; anything else after the call means the guard is a
    // temporary.
    loop {
        while i < stmt.1 && b[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= stmt.1 {
            return true;
        }
        if b[i] != b'.' {
            return false;
        }
        let ident_start = i + 1;
        let mut j = ident_start;
        while j < stmt.1 && crate::lexer::is_ident_byte(b[j]) {
            j += 1;
        }
        let name = &masked[ident_start..j];
        if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
            return false;
        }
        // Skip the adapter's argument list.
        let mut depth = 0usize;
        i = j;
        while i < stmt.1 {
            match b[i] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
}

pub(crate) fn normalize(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

// ---------------------------------------------------------------- lint 4

fn no_panic(fm: &FileMap, out: &mut Vec<Finding>) {
    if !panic_checked(&fm.rel) {
        return;
    }
    let masked = &fm.masked;
    // `.unwrap()` — never matches `unwrap_or*` because of the closing paren.
    let mut from = 0usize;
    while let Some(pos) = masked[from..].find(".unwrap()") {
        let at = from + pos;
        from = at + ".unwrap()".len();
        if fm.in_test(at) {
            continue;
        }
        push(
            fm,
            out,
            at,
            "no-panic",
            "`.unwrap()` in library code".to_string(),
            "propagate a typed error (`?` / ok_or_else) or justify with `// aide-lint: allow(no-panic): why`",
        );
    }
    // `.expect("…")` — only when the first argument is a string literal,
    // so parser methods like `Cursor::expect(char)` don't trip it.
    let mut from = 0usize;
    while let Some(pos) = masked[from..].find(".expect(") {
        let at = from + pos;
        from = at + ".expect(".len();
        if fm.in_test(at) {
            continue;
        }
        let after = masked[at + ".expect(".len()..].trim_start();
        if !after.starts_with('"') {
            continue;
        }
        push(
            fm,
            out,
            at,
            "no-panic",
            "`.expect(\"…\")` in library code".to_string(),
            "propagate a typed error (`?` / ok_or_else) or justify with `// aide-lint: allow(no-panic): why`",
        );
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for at in ident_occurrences(masked, mac) {
            if fm.in_test(at) {
                continue;
            }
            push(
                fm,
                out,
                at,
                "no-panic",
                format!("`{mac}` in library code"),
                "return a typed error, or justify with `// aide-lint: allow(no-panic): why`",
            );
        }
    }
}

// ---------------------------------------------------------------- lint 5

fn seqcst(fm: &FileMap, out: &mut Vec<Finding>) {
    for at in ident_occurrences(&fm.masked, "SeqCst") {
        if fm.in_test(at) {
            continue;
        }
        push(
            fm,
            out,
            at,
            "seqcst",
            "`Ordering::SeqCst` outside tests".to_string(),
            "plain stat counters use Relaxed (repo convention); if the stronger ordering is \
             load-bearing, say why in an `// aide-lint: allow(seqcst): why` waiver",
        );
    }
}

// ---------------------------------------------------------------- lint 6

/// Direct-I/O paths that bypass the `Vfs` trait. Everything the storage
/// engine persists must flow through a `Vfs` so the fault-injecting
/// implementation can interpose (torn writes, lying fsync, kill points);
/// a stray `std::fs` call is invisible to the crash-recovery suite.
const DIRECT_IO: &[&str] = &["std::fs", "std::io"];

fn vfs_boundary(fm: &FileMap, out: &mut Vec<Finding>) {
    if !vfs_boundary_checked(&fm.rel) {
        return;
    }
    for needle in DIRECT_IO {
        for off in ident_occurrences(&fm.masked, needle) {
            if fm.in_test(off) {
                continue;
            }
            push(
                fm,
                out,
                off,
                "vfs-boundary",
                format!("`{needle}` outside the VFS boundary"),
                "route file I/O through aide_util::vfs::Vfs so fault injection and crash tests \
                 can interpose; only crates/store/src/vfs.rs (RealVfs) touches the real filesystem",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let fm = FileMap::new("crates/x/src/lib.rs", src);
        lint_file(&fm, &Config::default())
    }

    #[test]
    fn clean_file_is_clean() {
        let f = run("pub fn add(a: u32, b: u32) -> u32 { a + b }\n");
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn receiver_chain_walks_calls_and_fields() {
        let c = receiver_chain("x = self.cache.shard(url).lock()", 25);
        assert!(c.contains(&"shard".to_string()));
        assert!(c.contains(&"cache".to_string()));
        assert!(c.contains(&"self".to_string()));
    }

    #[test]
    fn destructured_guard_cannot_dodge_lock_order() {
        let src = "pub fn f(t: &LockTable, repo: &Repo) {\n\
                   \x20   let (_held, mut sh) = repo.lock_shard(0);\n\
                   \x20   let g = t.lock(&LockTable::url_key(\"u\"));\n\
                   \x20   sh.touch();\n\
                   \x20   drop(g);\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "lock-order");
        assert!(f[0].message.contains("`url`"), "{}", f[0].message);
    }

    #[test]
    fn destructured_guard_released_by_drop() {
        let src = "pub fn f(t: &LockTable, repo: &Repo) {\n\
                   \x20   let (_held, sh) = repo.lock_shard(0);\n\
                   \x20   drop(sh);\n\
                   \x20   drop(_held);\n\
                   \x20   let g = t.lock(&LockTable::url_key(\"u\"));\n\
                   \x20   drop(g);\n\
                   }\n";
        let f = run(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn if_let_guard_scopes_to_its_block() {
        let src = "pub fn f(t: &LockTable, m: &Mutex<u32>) {\n\
                   \x20   if let Ok(g) = m.lock() {\n\
                   \x20       g.touch();\n\
                   \x20   }\n\
                   \x20   let u = t.lock(&LockTable::url_key(\"u\"));\n\
                   \x20   drop(u);\n\
                   }\n";
        let f = run(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn if_let_guard_is_held_inside_its_block() {
        let src = "pub fn f(t: &LockTable, repo: &Repo) {\n\
                   \x20   if let Ok(g) = repo.lock_shard(0) {\n\
                   \x20       let u = t.lock(&LockTable::url_key(\"u\"));\n\
                   \x20       drop(u);\n\
                   \x20       drop(g);\n\
                   \x20   }\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "lock-order");
    }

    #[test]
    fn declared_name_forms() {
        assert_eq!(declared_name("let mut seen = "), Some("seen".to_string()));
        assert_eq!(declared_name("    entries: "), Some("entries".to_string()));
        assert_eq!(
            declared_name(" pages: Vec<RwLock<"),
            Some("pages".to_string())
        );
        assert_eq!(declared_name("Foo::<"), None);
    }
}
