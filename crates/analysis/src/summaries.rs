//! Per-function effect summaries and the bottom-up fixpoint that
//! propagates them over the call graph.
//!
//! A summary answers, for one function, three may-questions: which lock
//! classes can a call to it acquire (directly or transitively), which
//! blocking operations can it reach (fsync, condvar wait, channel recv,
//! sleep, `Vfs` I/O), and can it reach a panic site. Each effect carries
//! a *witness* — the local line or the call edge it first arrived
//! through — so diagnostics can print the full offending chain rather
//! than just "somewhere below here".
//!
//! The fixpoint is monotone over finite sets (lock classes × functions,
//! blocking kinds × functions, one panic bit per function), so iteration
//! terminates even on recursive cycles; witnesses are set once and never
//! rewritten, which keeps chains deterministic run to run.
//!
//! Effects in `#[cfg(test)]` and `#[cfg(debug_assertions)]` regions are
//! not collected: test scaffolding may block and panic at will, and the
//! debug-only runtime lock-rank checker panics by design.

use crate::callgraph::CallGraph;
use crate::items::FnItem;
use crate::lints::{classify_acquisition, receiver_chain, statement_bounds};
use crate::scope::{ident_occurrences, FileMap};
use aide_util::sync::lockrank;
use std::collections::BTreeMap;

/// The blocking kinds denied while an exclusive lock is held. `vfs-io`
/// is tracked but deliberately absent: buffered reads and WAL appends
/// under a shard lock are the store's design (DESIGN.md §4i); only the
/// latency-unbounded kinds are deny-by-default.
pub const DENIED_UNDER_LOCK: &[&str] = &["fsync", "condvar-wait", "chan-recv", "sleep"];

/// How an effect entered a function's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Witness {
    /// The effect happens in the function's own body at this line.
    Local { line: u32 },
    /// The effect arrives through a call to `callee` at this line.
    Call { callee: usize, line: u32 },
}

/// One function's effect summary.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Lock classes a call may acquire, with the witness that first
    /// introduced each.
    pub acquires: BTreeMap<&'static str, Witness>,
    /// Blocking kinds a call may reach.
    pub blocks: BTreeMap<&'static str, Witness>,
    /// Whether a call may reach a panic site, and through what.
    pub panics: Option<Witness>,
    /// Lines of panic sites in this function's own body (not
    /// propagated; `panic-reach` anchors findings and waivers here).
    pub panic_sites: Vec<u32>,
    /// Lock classes a *let-bound call* to this function leaves held in
    /// the caller, with per-class exclusivity — non-empty only for
    /// guard-returning helpers (`lock_shard`, `locked()`,
    /// `begin_commit`). When a helper performs a named `lockrank`
    /// acquisition, the backing structure mutex is that named lock's
    /// implementation detail and is not double-counted.
    pub guards: Vec<(&'static str, bool)>,
}

/// One locally-detected acquisition site.
#[derive(Debug, Clone)]
pub struct AcqSite {
    /// Byte offset of the acquisition pattern.
    pub off: usize,
    /// 1-based line.
    pub line: u32,
    /// Lock-class name from the shared rank table.
    pub class: &'static str,
    /// Whether the acquisition takes the lock exclusively (`.read()`
    /// does not; every other mode does).
    pub exclusive: bool,
}

/// One locally-detected blocking site.
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// Byte offset of the pattern.
    pub off: usize,
    /// 1-based line.
    pub line: u32,
    /// Blocking kind (`fsync`, `condvar-wait`, `chan-recv`, `sleep`,
    /// `vfs-io`).
    pub kind: &'static str,
}

/// Intra-body facts about one function, kept for the interprocedural
/// walkers (which need site order and offsets, not just the may-sets).
#[derive(Debug, Clone, Default)]
pub struct LocalFacts {
    /// Acquisition sites in body order.
    pub acquisitions: Vec<AcqSite>,
    /// Blocking sites in body order.
    pub blocks: Vec<BlockSite>,
}

/// The acquisition patterns shared with the intraprocedural lint.
const ACQ_PATTERNS: &[&str] = &[".lock(", ".lock_shard(", ".read()", ".write()", ".once("];

/// Collects the local acquisition sites of `fns[id]`, including
/// `lockrank::acquire("class", …)` calls with a literal class name (the
/// literal's bytes live in the unmasked source).
pub fn local_acquisitions(fm: &FileMap, fns: &[FnItem], id: usize) -> Vec<AcqSite> {
    let masked = &fm.masked;
    let mut out = Vec::new();
    for range in crate::callgraph::own_ranges(fns, id) {
        for pat in ACQ_PATTERNS {
            let mut from = range.0;
            while let Some(pos) = masked[from..range.1].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if fm.in_test(at) || fm.in_debug(at) {
                    continue;
                }
                let stmt = statement_bounds(masked, fns[id].body, at);
                let Some(class) = classify_acquisition(masked, at, &masked[stmt.0..stmt.1]) else {
                    continue;
                };
                out.push(AcqSite {
                    off: at,
                    line: fm.line_col(at).0,
                    class,
                    exclusive: !masked[at..].starts_with(".read()"),
                });
            }
        }
        for rel in ident_occurrences(&masked[range.0..range.1], "lockrank") {
            let at = range.0 + rel;
            if fm.in_test(at) || fm.in_debug(at) {
                continue;
            }
            let Some(rest) = masked[at..].strip_prefix("lockrank::acquire(") else {
                continue;
            };
            let lead = rest.len() - rest.trim_start().len();
            if !rest[lead..].starts_with('"') {
                continue; // dynamic class name: untracked
            }
            // Masking blanks literal contents but keeps the quotes, at
            // identical byte offsets — read the name from the original.
            let lit_start = at + "lockrank::acquire(".len() + lead + 1;
            let Some(lit_len) = fm.src[lit_start..].find('"') else {
                continue;
            };
            let Some(class) = lockrank::class(&fm.src[lit_start..lit_start + lit_len]) else {
                continue;
            };
            out.push(AcqSite {
                off: at,
                line: fm.line_col(at).0,
                class: class.name,
                exclusive: class.exclusive,
            });
        }
    }
    out.sort_by_key(|a| a.off);
    out.dedup_by_key(|a| a.off);
    out
}

/// Blocking-operation patterns: `(kind, pattern, needs_vfs_receiver)`.
/// The vfs-io patterns collide with collection methods (`.remove(…)`,
/// `.append(…)`, `.len(…)`), so they only count when the receiver chain
/// passes through an identifier containing `vfs`.
const BLOCK_PATTERNS: &[(&str, &str, bool)] = &[
    ("fsync", ".sync(", false),
    ("fsync", ".sync_all(", false),
    ("fsync", ".sync_data(", false),
    ("condvar-wait", ".wait(", false),
    ("condvar-wait", ".wait_while(", false),
    ("condvar-wait", ".wait_timeout(", false),
    ("chan-recv", ".recv()", false),
    ("chan-recv", ".recv_timeout(", false),
    ("vfs-io", ".append(", true),
    ("vfs-io", ".read(", true),
    ("vfs-io", ".read_range(", true),
    ("vfs-io", ".truncate(", true),
    ("vfs-io", ".remove(", true),
    ("vfs-io", ".list(", true),
    ("vfs-io", ".create_dir_all(", true),
    ("vfs-io", ".len(", true),
];

/// Collects the local blocking sites of `fns[id]`.
pub fn local_blocks(fm: &FileMap, fns: &[FnItem], id: usize) -> Vec<BlockSite> {
    let masked = &fm.masked;
    let mut out = Vec::new();
    for range in crate::callgraph::own_ranges(fns, id) {
        for &(kind, pat, needs_vfs) in BLOCK_PATTERNS {
            let mut from = range.0;
            while let Some(pos) = masked[from..range.1].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if fm.in_test(at) || fm.in_debug(at) {
                    continue;
                }
                if needs_vfs && !receiver_chain(masked, at).iter().any(|c| c.contains("vfs")) {
                    continue;
                }
                out.push(BlockSite {
                    off: at,
                    line: fm.line_col(at).0,
                    kind,
                });
            }
        }
        // `thread::sleep(…)` / bare `sleep(…)`.
        for rel in ident_occurrences(&masked[range.0..range.1], "sleep") {
            let at = range.0 + rel;
            if fm.in_test(at) || fm.in_debug(at) {
                continue;
            }
            if masked[at + "sleep".len()..].trim_start().starts_with('(') {
                out.push(BlockSite {
                    off: at,
                    line: fm.line_col(at).0,
                    kind: "sleep",
                });
            }
        }
    }
    out.sort_by_key(|b| b.off);
    out.dedup_by(|a, b| a.off == b.off && a.kind == b.kind);
    out
}

/// Lines of panic-capable sites in `fns[id]`'s own body, using the same
/// shapes as the intraprocedural `no-panic` lint.
pub fn local_panic_sites(fm: &FileMap, fns: &[FnItem], id: usize) -> Vec<u32> {
    let masked = &fm.masked;
    let mut offs: Vec<usize> = Vec::new();
    for range in crate::callgraph::own_ranges(fns, id) {
        for pat in [".unwrap()", ".expect("] {
            let mut from = range.0;
            while let Some(pos) = masked[from..range.1].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                if fm.in_test(at) || fm.in_debug(at) {
                    continue;
                }
                // Only the string-message form of `.expect(…)` is a
                // panic shape; a parser's `expect(Token)` is control
                // flow. (`.unwrap()`'s closing paren excludes
                // `unwrap_or*`.)
                if pat == ".expect(" && !masked[at + pat.len()..].trim_start().starts_with('"') {
                    continue;
                }
                offs.push(at);
            }
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            for rel in ident_occurrences(&masked[range.0..range.1], mac) {
                let at = range.0 + rel;
                if fm.in_test(at) || fm.in_debug(at) {
                    continue;
                }
                if masked[at + mac.len()..].starts_with("!(") {
                    offs.push(at);
                }
            }
        }
    }
    offs.sort_unstable();
    offs.dedup();
    offs.iter().map(|&o| fm.line_col(o).0).collect()
}

/// Return types that mean "a let-binding of this call keeps something
/// alive in the caller" — lock guards and RAII permits.
fn returns_guard(ret: &str) -> bool {
    ["Guard", "Held", "Permit", "Pause", "DerefMut"]
        .iter()
        .any(|m| ret.contains(m))
}

/// Builds local facts and summaries for every function, then runs the
/// fixpoint over `graph`. Returns `(summaries, local_facts)`.
pub fn fixpoint(
    files: &[FileMap],
    fns: &[FnItem],
    graph: &CallGraph,
) -> (Vec<Summary>, Vec<LocalFacts>) {
    let mut sums: Vec<Summary> = vec![Summary::default(); fns.len()];
    let mut facts: Vec<LocalFacts> = vec![LocalFacts::default(); fns.len()];

    for (id, f) in fns.iter().enumerate() {
        if f.in_test || f.in_debug {
            continue;
        }
        let fm = &files[f.file];
        let acq = local_acquisitions(fm, fns, id);
        let blk = local_blocks(fm, fns, id);
        for a in &acq {
            sums[id]
                .acquires
                .entry(a.class)
                .or_insert(Witness::Local { line: a.line });
        }
        for b in &blk {
            sums[id]
                .blocks
                .entry(b.kind)
                .or_insert(Witness::Local { line: b.line });
        }
        let panic_lines = local_panic_sites(fm, fns, id);
        if let Some(&line) = panic_lines.first() {
            sums[id].panics = Some(Witness::Local { line });
        }
        sums[id].panic_sites = panic_lines;
        if returns_guard(&f.ret) {
            // A named-class acquisition subsumes its backing structure
            // mutex: `Scheduler::locked()` takes the `sched` rank *and*
            // locks the state mutex that implements it, but a caller
            // holds one logical lock, not two.
            let named: Vec<(&'static str, bool)> = acq
                .iter()
                .filter(|a| a.class != "structure")
                .map(|a| (a.class, a.exclusive))
                .collect();
            let mut guards = if named.is_empty() {
                acq.iter().map(|a| (a.class, a.exclusive)).collect()
            } else {
                named
            };
            guards.sort_unstable();
            guards.dedup();
            sums[id].guards = guards;
        }
        facts[id] = LocalFacts {
            acquisitions: acq,
            blocks: blk,
        };
    }

    // Bottom-up propagation to a fixed point. Witnesses are
    // first-writer-wins over a deterministic iteration order.
    loop {
        let mut changed = false;
        for id in 0..fns.len() {
            if fns[id].in_test || fns[id].in_debug {
                continue;
            }
            for s in 0..graph.sites[id].len() {
                let (line, targets) = {
                    let site = &graph.sites[id][s];
                    (site.line, site.targets.clone())
                };
                for t in targets {
                    let acq: Vec<&'static str> = sums[t].acquires.keys().copied().collect();
                    let blk: Vec<&'static str> = sums[t].blocks.keys().copied().collect();
                    let pan = sums[t].panics.is_some();
                    for class in acq {
                        sums[id].acquires.entry(class).or_insert_with(|| {
                            changed = true;
                            Witness::Call { callee: t, line }
                        });
                    }
                    for kind in blk {
                        sums[id].blocks.entry(kind).or_insert_with(|| {
                            changed = true;
                            Witness::Call { callee: t, line }
                        });
                    }
                    if pan && sums[id].panics.is_none() {
                        changed = true;
                        sums[id].panics = Some(Witness::Call { callee: t, line });
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    (sums, facts)
}

/// Renders the call chain by which `fns[id]` reaches the acquisition of
/// `class`, ending at the acquiring function's local line.
pub fn acquire_chain(
    files: &[FileMap],
    fns: &[FnItem],
    sums: &[Summary],
    id: usize,
    class: &str,
) -> String {
    chain(
        files,
        fns,
        id,
        |f| sums[f].acquires.get(class).cloned(),
        &format!("acquires `{class}`"),
    )
}

/// Renders the call chain by which `fns[id]` reaches a blocking
/// operation of `kind`.
pub fn block_chain(
    files: &[FileMap],
    fns: &[FnItem],
    sums: &[Summary],
    id: usize,
    kind: &str,
) -> String {
    chain(
        files,
        fns,
        id,
        |f| sums[f].blocks.get(kind).cloned(),
        &format!("reaches a {kind} op"),
    )
}

/// Renders the call chain by which `fns[id]` reaches a panic site.
pub fn panic_chain(files: &[FileMap], fns: &[FnItem], sums: &[Summary], id: usize) -> String {
    chain(files, fns, id, |f| sums[f].panics.clone(), "can panic")
}

/// Follows witnesses from `start` until a `Local` one, printing each
/// hop as `` `fn` (file:line) ``. A cycle or over-long chain ends in
/// `…` rather than looping.
fn chain(
    files: &[FileMap],
    fns: &[FnItem],
    start: usize,
    witness_of: impl Fn(usize) -> Option<Witness>,
    terminal: &str,
) -> String {
    let mut parts = Vec::new();
    let mut cur = start;
    let mut seen = vec![start];
    loop {
        let file = &files[fns[cur].file].rel;
        match witness_of(cur) {
            Some(Witness::Local { line }) => {
                parts.push(format!(
                    "`{}` {terminal} at {file}:{line}",
                    fns[cur].qualified()
                ));
                break;
            }
            Some(Witness::Call { callee, line }) => {
                parts.push(format!("`{}` ({file}:{line})", fns[cur].qualified()));
                if seen.contains(&callee) || parts.len() > 12 {
                    parts.push("…".to_string());
                    break;
                }
                seen.push(callee);
                cur = callee;
            }
            None => break,
        }
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{self, Symbols};
    use crate::items;

    fn setup(src: &str) -> (Vec<FileMap>, Vec<FnItem>, CallGraph, Vec<Summary>) {
        let files = vec![FileMap::new("crates/x/src/lib.rs", src)];
        let fns = items::collect(&files[0], 0);
        let syms = Symbols::build(&fns);
        let graph = callgraph::build(&files, &fns, &syms);
        let (sums, _) = fixpoint(&files, &fns, &graph);
        (files, fns, graph, sums)
    }

    fn id_of(fns: &[FnItem], name: &str) -> usize {
        fns.iter().position(|f| f.name == name).expect("fn")
    }

    #[test]
    fn effects_propagate_transitively() {
        let src = "\
fn leaf(t: &LockTable) { let g = t.lock(&LockTable::url_key(\"u\")); drop(g); }
fn mid(t: &LockTable) { leaf(t); }
pub fn top(t: &LockTable) { mid(t); }
";
        let (files, fns, _, sums) = setup(src);
        let top = id_of(&fns, "top");
        assert!(sums[top].acquires.contains_key("url"), "{:?}", sums[top]);
        let chain = acquire_chain(&files, &fns, &sums, top, "url");
        assert!(chain.contains("`top`"), "{chain}");
        assert!(chain.contains("`leaf` acquires `url`"), "{chain}");
    }

    #[test]
    fn recursive_cycle_converges() {
        let src = "\
fn ping(n: u32, v: &std::sync::Mutex<u32>) { if n > 0 { pong(n - 1, v); } }
fn pong(n: u32, v: &std::sync::Mutex<u32>) { let g = v.lock(); drop(g); ping(n, v); }
";
        let (_, fns, _, sums) = setup(src);
        assert!(sums[id_of(&fns, "ping")].acquires.contains_key("structure"));
        assert!(sums[id_of(&fns, "pong")].acquires.contains_key("structure"));
    }

    #[test]
    fn blocking_and_panic_effects() {
        let src = "\
fn flush(vfs: &dyn Vfs) { vfs.sync(\"wal\"); }
fn boom(x: Option<u32>) -> u32 { x.unwrap() }
pub fn top(vfs: &dyn Vfs, x: Option<u32>) -> u32 { flush(vfs); boom(x) }
";
        let (_, fns, _, sums) = setup(src);
        let top = id_of(&fns, "top");
        assert!(sums[top].blocks.contains_key("fsync"), "{:?}", sums[top]);
        assert!(sums[top].panics.is_some());
        assert_eq!(sums[id_of(&fns, "boom")].panic_sites.len(), 1);
    }

    #[test]
    fn named_acquisition_subsumes_backing_mutex_in_guards() {
        let src = "\
struct Sched;
impl Sched {
    fn locked(&self) -> (lockrank::Held, MutexGuard<State>) {
        let held = lockrank::acquire(\"sched\", \"sched:state\");
        (held, self.state.lock())
    }
}
";
        let (_, fns, _, sums) = setup(src);
        let id = id_of(&fns, "locked");
        assert_eq!(sums[id].guards, [("sched", true)], "{:?}", sums[id]);
        assert!(sums[id].acquires.contains_key("sched"));
        assert!(sums[id].acquires.contains_key("structure"));
    }

    #[test]
    fn vfs_receiver_gate_on_io_patterns() {
        let src = "\
fn a(vfs: &dyn Vfs, path: &str) { vfs.append(path, b\"x\"); }
fn b(v: &mut Vec<u8>, w: Vec<u8>) { let mut w = w; v.append(&mut w); }
";
        let (_, fns, _, sums) = setup(src);
        assert!(sums[id_of(&fns, "a")].blocks.contains_key("vfs-io"));
        assert!(sums[id_of(&fns, "b")].blocks.is_empty(), "{:?}", sums[1]);
    }

    #[test]
    fn test_and_debug_effects_are_invisible() {
        let src = "\
pub fn lib(v: &std::sync::Mutex<u32>) { let _ = v; }
#[cfg(debug_assertions)]
fn checker() { panic!(\"debug only\"); }
#[cfg(test)]
mod tests {
    fn helper() { std::thread::sleep(d); }
}
";
        let (_, fns, _, sums) = setup(src);
        assert!(sums[id_of(&fns, "lib")].panics.is_none());
        assert!(sums.iter().all(|s| s.blocks.is_empty()));
    }
}
