//! `aide-lint`: a zero-third-party-dependency static-analysis pass that
//! machine-checks the workspace's load-bearing invariants.
//!
//! PRs 1–4 accumulated contracts that until now existed only as prose
//! and tests: the per-key lock-ordering discipline (DESIGN.md §4d/§4h),
//! the byte-identical-output and deterministic-when-on contracts
//! (§4e–§4g), and the virtual-clock rule that nothing outside
//! `crates/util/src/time.rs` and the bench harness may touch wall-clock
//! time. This crate walks every `crates/*/src` tree with its own
//! lightweight Rust lexer (raw strings, nested block comments, lifetime
//! vs char-literal disambiguation) and enforces five lint families:
//!
//! | lint          | contract                                                        |
//! |---------------|-----------------------------------------------------------------|
//! | `determinism` | no `SystemTime`/`Instant`/`thread_rng`/`std::env` off-allowlist |
//! | `hash-iter`   | no unsorted `HashMap`/`HashSet` iteration into rendered output  |
//! | `lock-order`  | nested acquisitions follow the shared lock-rank table           |
//! | `no-panic`    | no `unwrap`/`expect`/`panic!` in library code                   |
//! | `seqcst`      | stat counters use `Relaxed`, not `SeqCst`                       |
//!
//! Deliberate exceptions carry inline `// aide-lint: allow(lint): why`
//! waivers, which the tool parses, applies, counts (`--waivers`), and
//! caps in CI (`--max-waivers`). See LINTS.md for the catalog.

pub mod callgraph;
pub mod config;
pub mod interproc;
pub mod items;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scope;
pub mod summaries;
pub mod waivers;

use config::Config;
use lints::Finding;
use report::{GraphStats, Report, UnusedWaiver};
use scope::FileMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints a set of files together: the per-file lexical lints plus the
/// interprocedural families (which need the whole set to build the call
/// graph). Vendored files are skipped. Waivers are parsed per file and
/// applied to whichever findings anchor there, whatever pass produced
/// them.
pub fn lint_sources(sources: &[(String, String)], cfg: &Config) -> Report {
    let files: Vec<FileMap> = sources
        .iter()
        .filter(|(rel, _)| !config::is_vendored(rel))
        .map(|(rel, src)| FileMap::new(rel, src))
        .collect();
    let mut by_file: Vec<Vec<Finding>> = files.iter().map(|fm| lints::lint_file(fm, cfg)).collect();

    let index: std::collections::BTreeMap<String, usize> = files
        .iter()
        .enumerate()
        .map(|(i, fm)| (fm.rel.clone(), i))
        .collect();
    let ws = interproc::analyze(files);
    for f in interproc::lint_graph(&ws, cfg) {
        if let Some(&i) = index.get(&f.file) {
            by_file[i].push(f);
        }
    }

    let mut report = Report {
        files: ws.files.len(),
        graph: GraphStats {
            functions: ws.fns.len(),
            calls_resolved: ws.graph.resolved,
            calls_unresolved: ws.graph.unresolved,
            calls_denied: ws.graph.denied,
        },
        ..Report::default()
    };
    for (i, fm) in ws.files.iter().enumerate() {
        let mut raw = std::mem::take(&mut by_file[i]);
        raw.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
        raw.dedup();
        let waivers = waivers::parse(&fm.comments);
        let mut used = vec![false; waivers.len()];
        for f in raw {
            let mut hit = false;
            for (k, w) in waivers.iter().enumerate() {
                if w.applies_to == f.line && w.lints.iter().any(|l| l == f.lint) {
                    used[k] = true;
                    hit = true;
                }
            }
            if hit {
                report.waived.push(f);
            } else {
                report.findings.push(f);
            }
        }
        report.unused_waivers.extend(
            waivers
                .iter()
                .zip(used)
                .filter(|(w, used)| {
                    // A waiver for a disabled lint is not "unused" — it
                    // simply did not get a chance to fire this run.
                    !used && w.lints.iter().any(|l| cfg.enabled(l))
                })
                .map(|(w, _)| UnusedWaiver {
                    file: fm.rel.clone(),
                    line: w.line,
                    lints: w.lints.clone(),
                }),
        );
    }
    report
}

/// Lints one file's source text under its repo-relative path, applying
/// waivers. Returns `(active, waived, unused_waivers)`. Interprocedural
/// families see a one-file call graph — cross-file paths need
/// [`lint_sources`].
pub fn lint_source(
    rel: &str,
    src: &str,
    cfg: &Config,
) -> (Vec<Finding>, Vec<Finding>, Vec<UnusedWaiver>) {
    let report = lint_sources(&[(rel.to_string(), src.to_string())], cfg);
    (report.findings, report.waived, report.unused_waivers)
}

/// Recursively collects `.rs` files under `dir`, sorted for output
/// determinism.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `crates/*/src` tree under `root` (the workspace root),
/// building one whole-workspace call graph for the interprocedural
/// families.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    let mut sources = Vec::new();
    for member in members {
        let src = member.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rs_files(&src)? {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, fs::read_to_string(&file)?));
        }
    }
    Ok(lint_sources(&sources, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_and_counts() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // aide-lint: allow(no-panic): test scaffold\n}\n";
        let (active, waived, unused) = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(waived.len(), 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_waiver_reported() {
        let src = "// aide-lint: allow(no-panic): nothing here\npub fn f() {}\n";
        let (active, _, unused) = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(active.is_empty());
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 1);
    }

    #[test]
    fn vendored_files_are_skipped() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (active, waived, _) =
            lint_source("crates/criterion/src/lib.rs", src, &Config::default());
        assert!(active.is_empty());
        assert!(waived.is_empty());
    }
}
