//! `aide-lint`: a zero-third-party-dependency static-analysis pass that
//! machine-checks the workspace's load-bearing invariants.
//!
//! PRs 1–4 accumulated contracts that until now existed only as prose
//! and tests: the per-key lock-ordering discipline (DESIGN.md §4d/§4h),
//! the byte-identical-output and deterministic-when-on contracts
//! (§4e–§4g), and the virtual-clock rule that nothing outside
//! `crates/util/src/time.rs` and the bench harness may touch wall-clock
//! time. This crate walks every `crates/*/src` tree with its own
//! lightweight Rust lexer (raw strings, nested block comments, lifetime
//! vs char-literal disambiguation) and enforces five lint families:
//!
//! | lint          | contract                                                        |
//! |---------------|-----------------------------------------------------------------|
//! | `determinism` | no `SystemTime`/`Instant`/`thread_rng`/`std::env` off-allowlist |
//! | `hash-iter`   | no unsorted `HashMap`/`HashSet` iteration into rendered output  |
//! | `lock-order`  | nested acquisitions follow the shared lock-rank table           |
//! | `no-panic`    | no `unwrap`/`expect`/`panic!` in library code                   |
//! | `seqcst`      | stat counters use `Relaxed`, not `SeqCst`                       |
//!
//! Deliberate exceptions carry inline `// aide-lint: allow(lint): why`
//! waivers, which the tool parses, applies, counts (`--waivers`), and
//! caps in CI (`--max-waivers`). See LINTS.md for the catalog.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;
pub mod scope;
pub mod waivers;

use config::Config;
use lints::Finding;
use report::{Report, UnusedWaiver};
use scope::FileMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints one file's source text under its repo-relative path, applying
/// waivers. Returns `(active, waived, unused_waivers)`.
pub fn lint_source(
    rel: &str,
    src: &str,
    cfg: &Config,
) -> (Vec<Finding>, Vec<Finding>, Vec<UnusedWaiver>) {
    if config::is_vendored(rel) {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let fm = FileMap::new(rel, src);
    let raw = lints::lint_file(&fm, cfg);
    let waivers = waivers::parse(&fm.comments);
    let mut used = vec![false; waivers.len()];
    let mut active = Vec::new();
    let mut waived = Vec::new();
    for f in raw {
        let mut hit = false;
        for (i, w) in waivers.iter().enumerate() {
            if w.applies_to == f.line && w.lints.iter().any(|l| l == f.lint) {
                used[i] = true;
                hit = true;
            }
        }
        if hit {
            waived.push(f);
        } else {
            active.push(f);
        }
    }
    let unused = waivers
        .iter()
        .zip(used)
        .filter(|(w, used)| {
            // A waiver for a disabled lint is not "unused" — it simply
            // did not get a chance to fire this run.
            !used && w.lints.iter().any(|l| cfg.enabled(l))
        })
        .map(|(w, _)| UnusedWaiver {
            file: rel.to_string(),
            line: w.line,
            lints: w.lints.clone(),
        })
        .collect();
    (active, waived, unused)
}

/// Recursively collects `.rs` files under `dir`, sorted for output
/// determinism.
fn rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for p in entries {
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `crates/*/src` tree under `root` (the workspace root).
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    members.sort();
    for member in members {
        let src = member.join("src");
        if !src.is_dir() {
            continue;
        }
        for file in rs_files(&src)? {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&file)?;
            let (active, waived, unused) = lint_source(&rel, &text, cfg);
            report.files += 1;
            report.findings.extend(active);
            report.waived.extend(waived);
            report.unused_waivers.extend(unused);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_and_counts() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // aide-lint: allow(no-panic): test scaffold\n}\n";
        let (active, waived, unused) = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(active.is_empty(), "{active:?}");
        assert_eq!(waived.len(), 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_waiver_reported() {
        let src = "// aide-lint: allow(no-panic): nothing here\npub fn f() {}\n";
        let (active, _, unused) = lint_source("crates/x/src/lib.rs", src, &Config::default());
        assert!(active.is_empty());
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 1);
    }

    #[test]
    fn vendored_files_are_skipped() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let (active, waived, _) =
            lint_source("crates/criterion/src/lib.rs", src, &Config::default());
        assert!(active.is_empty());
        assert!(waived.is_empty());
    }
}
