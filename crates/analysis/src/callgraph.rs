//! Workspace call graph: every call site in every (non-test,
//! non-vendored) function body, resolved by name against the item table
//! from [`crate::items`].
//!
//! Resolution is deliberately conservative and fully accounted:
//!
//! * **Lock acquisitions are not edges.** A call site the acquisition
//!   classifier recognizes (`.lock()`, `.lock_shard(…)`, `.once(…)`,
//!   `lockrank::acquire(…)`, …) is modeled as an *acquisition event* by
//!   the summary layer, not as a call — blocking inside the acquisition
//!   path (the WAL follower parked on the named-lock queue) is the
//!   lock-order discipline's concern, not `blocking-while-locked`'s.
//! * **Std-colliding method names are never resolved.** A bare method
//!   call like `.remove(…)` or `.store(…)` could be `BTreeMap::remove`
//!   or an atomic store just as well as `Repository::remove`; linking it
//!   by name alone would invent lock acquisitions out of thin air. The
//!   [`METHOD_DENY`] list names these; such sites are counted in
//!   [`CallGraph::denied`]. Qualified calls (`Type::name(…)`) and calls
//!   through `self` stay precise and are always resolved.
//! * **Everything else that fails to resolve is counted**, never
//!   guessed: [`CallGraph::unresolved`] is part of the report summary,
//!   so a resolution regression is visible in CI diffs.

use crate::items::FnItem;
use crate::lints::{classify_acquisition, receiver_chain, statement_bounds};
use crate::scope::FileMap;
use std::collections::BTreeMap;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(…)` or `module::helper(…)`.
    Bare,
    /// `receiver.method(…)`.
    Method,
    /// `Type::method(…)` (including `Self::method(…)`).
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name in the file.
    pub off: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Name shape at the site.
    pub kind: CallKind,
    /// Resolved callee item ids (may-aliasing: every same-named method).
    pub targets: Vec<usize>,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Call sites per function, indexed by `FnItem` id.
    pub sites: Vec<Vec<CallSite>>,
    /// Number of call sites with at least one resolved target.
    pub resolved: usize,
    /// Number of call sites naming no known workspace function.
    pub unresolved: usize,
    /// Number of method-call sites skipped by the [`METHOD_DENY`]
    /// std-collision policy.
    pub denied: usize,
}

/// Method names a bare `.name(…)` call is never resolved by: each
/// collides with a std collection / primitive / atomic method, so a
/// name-only match would fabricate edges into same-named workspace
/// methods (`BTreeMap::remove` vs `Repository::remove`, atomic `store`
/// vs `Repository::store`). Qualified calls resolve these precisely.
pub const METHOD_DENY: &[&str] = &[
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "bytes",
    "capacity",
    "chain",
    "chars",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "compare_exchange_weak",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "err",
    "expect",
    "extend",
    "extend_from_slice",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_xor",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "insert_str",
    "into_inner",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "list",
    "load",
    "lock",
    "map",
    "map_err",
    "matches",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "next_back",
    "ok",
    "or_else",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "push",
    "push_str",
    "range",
    "read",
    "recv",
    "recv_timeout",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "reverse",
    "rfind",
    "send",
    "skip",
    "sleep",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "splice",
    "split",
    "split_at",
    "split_off",
    "split_whitespace",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap",
    "swap_remove",
    "sync",
    "sync_all",
    "sync_data",
    "take",
    "then",
    "then_with",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "trim_end",
    "trim_start",
    "truncate",
    "try_lock",
    "try_recv",
    "unwrap",
    "unwrap_err",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "wait",
    "wait_timeout",
    "wait_while",
    "windows",
    "write",
    "zip",
];

/// Keywords an `ident(` site must not be mistaken for.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "union", "unsafe", "use",
    "where", "while", "yield",
];

/// Symbol table: name-keyed indexes over the workspace item list.
pub struct Symbols {
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    by_qualified: BTreeMap<String, Vec<usize>>,
}

impl Symbols {
    /// Builds the indexes. Test-only functions are never resolution
    /// targets: a `#[cfg(test)]` helper must not absorb calls from
    /// library code that happens to share its name.
    pub fn build(fns: &[FnItem]) -> Symbols {
        let mut methods_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qualified: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            match &f.self_ty {
                Some(_) => {
                    methods_by_name.entry(f.name.clone()).or_default().push(id);
                    by_qualified.entry(f.qualified()).or_default().push(id);
                }
                None => free_by_name.entry(f.name.clone()).or_default().push(id),
            }
        }
        Symbols {
            methods_by_name,
            free_by_name,
            by_qualified,
        }
    }
}

/// Scans every function body and resolves its call sites.
pub fn build(files: &[FileMap], fns: &[FnItem], syms: &Symbols) -> CallGraph {
    let mut graph = CallGraph {
        sites: vec![Vec::new(); fns.len()],
        ..CallGraph::default()
    };
    for (id, f) in fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let fm = &files[f.file];
        for range in own_ranges(fns, id) {
            scan_range(fm, f, range, syms, id, &mut graph);
        }
        graph.sites[id].sort_by_key(|s| s.off);
    }
    // Counters were accumulated during the scan; recompute resolved from
    // the final site lists for consistency.
    graph.resolved = graph
        .sites
        .iter()
        .flatten()
        .filter(|s| !s.targets.is_empty())
        .count();
    graph
}

/// The parts of `fns[id]`'s body not covered by a nested `fn` item
/// (whose calls belong to the nested function, not this one).
pub fn own_ranges(fns: &[FnItem], id: usize) -> Vec<(usize, usize)> {
    let f = &fns[id];
    let mut children: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|(cid, c)| {
            *cid != id && c.file == f.file && c.sig_start > f.body.0 && c.body.1 <= f.body.1
        })
        .map(|(_, c)| (c.sig_start, c.body.1))
        .collect();
    children.sort_unstable();
    let mut out = Vec::new();
    let mut cursor = f.body.0;
    for (a, b) in children {
        if a > cursor {
            out.push((cursor, a));
        }
        cursor = cursor.max(b);
    }
    if cursor < f.body.1 {
        out.push((cursor, f.body.1));
    }
    out
}

/// Scans one byte range of `f`'s body for call sites into
/// `graph.sites[id]`.
fn scan_range(
    fm: &FileMap,
    f: &FnItem,
    range: (usize, usize),
    syms: &Symbols,
    id: usize,
    graph: &mut CallGraph,
) {
    let masked = &fm.masked;
    let b = masked.as_bytes();
    let mut i = range.0;
    while i < range.1 {
        if !crate::lexer::is_ident_byte(b[i]) || (i > 0 && crate::lexer::is_ident_byte(b[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < range.1 && crate::lexer::is_ident_byte(b[i]) {
            i += 1;
        }
        let name = &masked[start..i];
        // Skip whitespace and an optional `::<…>` turbofish to the
        // decisive byte.
        let mut j = i;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if masked[j..].starts_with("::<") {
            let mut depth = 0usize;
            j += 2;
            while j < b.len() {
                match b[j] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if b.get(j) != Some(&b'(') {
            continue; // not a call (also rejects `name!(` macros: `!` sits at j)
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        if name == "drop" {
            continue; // a release event for the held-guard walkers, not an edge
        }
        // Tuple-struct constructors and enum variants (`Some(…)`,
        // `RepoError::Corrupt(…)`): uppercase-initial names are data
        // constructors, not calls; workspace methods are snake_case.
        if name.as_bytes()[0].is_ascii_uppercase() {
            continue;
        }
        if prev_token_is_fn(masked, start) {
            continue; // a nested definition's own name
        }
        let before = prev_nonspace(b, start);
        let kind = match before {
            Some((_, b'.')) => CallKind::Method,
            Some((p, b':')) if p > 0 && b[p - 1] == b':' => {
                let qual = path_qualifier(masked, p - 1);
                match qual {
                    Some(q) => CallKind::Qualified(q),
                    None => CallKind::Bare,
                }
            }
            _ => CallKind::Bare,
        };
        // Acquisition sites are events, not edges (see module docs).
        if matches!(kind, CallKind::Method) {
            let dot = before.map(|(p, _)| p).unwrap_or(start);
            let stmt = statement_bounds(masked, f.body, dot);
            if classify_acquisition(masked, dot, &masked[stmt.0..stmt.1]).is_some() {
                continue;
            }
            if METHOD_DENY.contains(&name) {
                graph.denied += 1;
                continue;
            }
        }
        if matches!(&kind, CallKind::Qualified(q) if q == "lockrank") && name == "acquire" {
            continue; // modeled as an acquisition event
        }
        let targets = resolve(fm, f, start, name, &kind, syms);
        let (line, _) = fm.line_col(start);
        if targets.is_empty() {
            graph.unresolved += 1;
        }
        graph.sites[id].push(CallSite {
            off: start,
            line,
            name: name.to_string(),
            kind,
            targets,
        });
    }
}

/// Resolves one call site to workspace item ids.
fn resolve(
    fm: &FileMap,
    f: &FnItem,
    start: usize,
    name: &str,
    kind: &CallKind,
    syms: &Symbols,
) -> Vec<usize> {
    match kind {
        CallKind::Method => {
            // `self.method(…)` resolves within the enclosing impl type
            // when that type defines the method; otherwise fall back to
            // every same-named workspace method (may-aliasing).
            let chain = receiver_chain(&fm.masked, start.saturating_sub(1));
            if chain.len() == 1 && chain[0] == "self" {
                if let Some(ty) = &f.self_ty {
                    if let Some(ids) = syms.by_qualified.get(&format!("{ty}::{name}")) {
                        return ids.clone();
                    }
                }
            }
            syms.methods_by_name.get(name).cloned().unwrap_or_default()
        }
        CallKind::Qualified(q) => {
            let ty = if q == "Self" {
                f.self_ty.clone().unwrap_or_else(|| q.clone())
            } else {
                q.clone()
            };
            if let Some(ids) = syms.by_qualified.get(&format!("{ty}::{name}")) {
                return ids.clone();
            }
            // A lowercase qualifier is a module path (`frame::decode`),
            // so the callee is a free function.
            if ty
                .as_bytes()
                .first()
                .is_some_and(|c| c.is_ascii_lowercase())
            {
                return syms.free_by_name.get(name).cloned().unwrap_or_default();
            }
            Vec::new()
        }
        CallKind::Bare => syms.free_by_name.get(name).cloned().unwrap_or_default(),
    }
}

/// The previous non-whitespace byte before `at`, with its position.
fn prev_nonspace(b: &[u8], at: usize) -> Option<(usize, u8)> {
    let mut i = at;
    while i > 0 {
        let c = b[i - 1];
        if !c.is_ascii_whitespace() {
            return Some((i - 1, c));
        }
        i -= 1;
    }
    None
}

/// Whether the token before `at` (skipping whitespace) is the `fn`
/// keyword, i.e. `at` is a definition's name, not a call.
fn prev_token_is_fn(masked: &str, at: usize) -> bool {
    let b = masked.as_bytes();
    let mut i = at;
    // A raw-identifier name (`fn r#match`) puts `r#` between.
    if i >= 2 && b[i - 1] == b'#' && b[i - 2] == b'r' {
        i -= 2;
    }
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    i >= 2 && &masked[i - 2..i] == "fn" && (i == 2 || !crate::lexer::is_ident_byte(b[i - 3]))
}

/// The identifier before the `::` whose first `:` is at `colon`.
fn path_qualifier(masked: &str, colon: usize) -> Option<String> {
    let b = masked.as_bytes();
    let mut i = colon;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Skip a generic argument list: `Vec<u8>::new` — rare; give up.
    let end = i;
    while i > 0 && crate::lexer::is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(masked[i..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;

    fn graph_of(src: &str) -> (Vec<FnItem>, CallGraph) {
        let fm = FileMap::new("crates/x/src/lib.rs", src);
        let fns = items::collect(&fm, 0);
        let syms = Symbols::build(&fns);
        let g = build(std::slice::from_ref(&fm), &fns, &syms);
        (fns, g)
    }

    fn edge(fns: &[FnItem], g: &CallGraph, from: &str, to: &str) -> bool {
        let from_id = fns.iter().position(|f| f.name == from).expect("from");
        g.sites[from_id]
            .iter()
            .any(|s| s.targets.iter().any(|&t| fns[t].name == to))
    }

    #[test]
    fn bare_method_and_qualified_calls_resolve() {
        let src = "fn helper() {}\n\
                   struct Foo;\n\
                   impl Foo {\n\
                   \x20   fn step(&self) {}\n\
                   \x20   fn run(&self) { helper(); self.step(); Foo::step(&self); }\n\
                   }\n";
        let (fns, g) = graph_of(src);
        assert!(edge(&fns, &g, "run", "helper"));
        assert!(edge(&fns, &g, "run", "step"));
        assert_eq!(g.unresolved, 0);
    }

    #[test]
    fn std_collision_names_are_denied_not_guessed() {
        let src = "struct Repo;\n\
                   impl Repo {\n    fn remove(&self, k: &str) {}\n}\n\
                   fn caller(m: &mut std::collections::BTreeMap<u32, u32>) { m.remove(&1); }\n";
        let (fns, g) = graph_of(src);
        assert!(!edge(&fns, &g, "caller", "remove"));
        assert_eq!(g.denied, 1);
    }

    #[test]
    fn acquisitions_and_macros_are_not_edges() {
        let src = "struct T;\nimpl T {\n    fn lock(&self, k: &str) {}\n}\n\
                   fn caller(t: &T, m: &std::sync::Mutex<u32>) {\n\
                   \x20   let g = m.lock();\n\
                   \x20   println!(\"x\");\n\
                   \x20   drop(g);\n\
                   }\n";
        let (fns, g) = graph_of(src);
        let caller = fns.iter().position(|f| f.name == "caller").expect("caller");
        assert!(
            g.sites[caller].iter().all(|s| s.name != "lock"),
            "{:?}",
            g.sites[caller]
        );
    }

    #[test]
    fn unresolved_calls_are_counted() {
        let (_, g) = graph_of("fn caller() { nonexistent_helper_xyz(); }\n");
        assert_eq!(g.unresolved, 1);
        assert_eq!(g.resolved, 0);
    }

    #[test]
    fn test_helpers_are_not_targets() {
        let src = "fn caller() { shared(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn shared() {}\n}\n";
        let (fns, g) = graph_of(src);
        assert!(!edge(&fns, &g, "caller", "shared"));
    }

    #[test]
    fn nested_fn_calls_belong_to_the_nested_fn() {
        let src = "fn inner_target() {}\n\
                   fn outer() {\n    fn inner() { inner_target(); }\n    inner();\n}\n";
        let (fns, g) = graph_of(src);
        assert!(edge(&fns, &g, "inner", "inner_target"));
        assert!(!edge(&fns, &g, "outer", "inner_target"));
        assert!(edge(&fns, &g, "outer", "inner"));
    }
}
