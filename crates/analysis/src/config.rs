//! Lint catalog and the workspace policy: which crates are vendored,
//! which paths may touch wall-clock time, and which files the
//! panic-freedom lint covers.

/// Metadata for one lint family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintInfo {
    /// Lint name, as used in diagnostics and waiver comments.
    pub name: &'static str,
    /// One-line description of the contract the lint enforces.
    pub description: &'static str,
}

/// The five lint families, in reporting order. See LINTS.md for the full
/// catalog with rationale and waiver guidance.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        name: "determinism",
        description: "wall-clock time, ambient randomness and std::env are banned outside the virtual-clock allowlist",
    },
    LintInfo {
        name: "hash-iter",
        description: "HashMap/HashSet iteration must not flow into formatting or serialization unsorted",
    },
    LintInfo {
        name: "lock-order",
        description: "nested lock acquisitions must follow the shared lock-rank table (DESIGN.md §4h)",
    },
    LintInfo {
        name: "no-panic",
        description: "library code must not unwrap/expect/panic; return typed errors or carry a waiver",
    },
    LintInfo {
        name: "seqcst",
        description: "stat counters use Relaxed ordering; SeqCst needs a justifying waiver",
    },
    LintInfo {
        name: "vfs-boundary",
        description: "std::fs/std::io stay behind the Vfs trait; only crates/store/src/vfs.rs touches the real filesystem",
    },
    LintInfo {
        name: "lock-order-interproc",
        description: "no call path from a lock-holding region may transitively acquire an equal-or-lower-rank lock",
    },
    LintInfo {
        name: "blocking-while-locked",
        description: "no fsync/condvar-wait/channel-recv/sleep may be reached while an exclusive lock is held",
    },
    LintInfo {
        name: "panic-reach",
        description: "public entry points of the engine crates must not transitively reach an unwaived panic site",
    },
];

/// Which lints to run (all by default).
#[derive(Debug, Clone)]
pub struct Config {
    /// Enabled lint names.
    pub lints: Vec<&'static str>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            lints: LINTS.iter().map(|l| l.name).collect(),
        }
    }
}

impl Config {
    /// Whether `name` is enabled.
    pub fn enabled(&self, name: &str) -> bool {
        self.lints.contains(&name)
    }
}

/// Vendored third-party shims: skipped by every lint.
pub fn is_vendored(rel: &str) -> bool {
    rel.starts_with("crates/criterion/") || rel.starts_with("crates/proptest/")
}

/// Paths allowed to read wall-clock time, ambient randomness, or the
/// process environment: the virtual-clock home itself and the bench
/// harness (which measures real elapsed time by design).
pub fn wallclock_allowed(rel: &str) -> bool {
    rel == "crates/util/src/time.rs" || rel.starts_with("crates/bench/") || is_vendored(rel)
}

/// Whether the panic-freedom lint covers `rel`. Binary targets (CLI
/// entry points, bench drivers) may abort on bad input; library code
/// must not.
pub fn panic_checked(rel: &str) -> bool {
    if is_vendored(rel) || rel.starts_with("crates/bench/") || rel.starts_with("crates/cli/") {
        return false;
    }
    !rel.contains("/src/bin/") && !rel.ends_with("/src/main.rs")
}

/// Whether `rel` belongs to a crate whose public functions are
/// `panic-reach` entry points: the engine crates a host program drives
/// directly. Binary targets may abort on bad input and are excluded,
/// as is everything `panic_checked` already exempts.
pub fn panic_entry(rel: &str) -> bool {
    const ENTRY_CRATES: &[&str] = &[
        "crates/rcs/src/",
        "crates/snapshot/src/",
        "crates/diffcore/src/",
        "crates/htmldiff/src/",
        "crates/store/src/",
        "crates/sched/src/",
        "crates/serve/src/",
    ];
    ENTRY_CRATES.iter().any(|p| rel.starts_with(p)) && panic_checked(rel)
}

/// Whether the VFS-boundary lint covers `rel`. Library code must route
/// file I/O through `aide_util::vfs::Vfs` so the fault-injection and
/// crash-recovery suites can interpose; the exemptions are the one
/// sanctioned implementation (`RealVfs`), binary targets (CLI tools and
/// bench drivers talk to the user's files by design), and the lint tool
/// itself (which exists to read source files).
pub fn vfs_boundary_checked(rel: &str) -> bool {
    if is_vendored(rel)
        || rel.starts_with("crates/bench/")
        || rel.starts_with("crates/cli/")
        || rel.starts_with("crates/analysis/")
    {
        return false;
    }
    if rel == "crates/store/src/vfs.rs" {
        return false;
    }
    !rel.contains("/src/bin/") && !rel.ends_with("/src/main.rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vfs_boundary_policy() {
        assert!(vfs_boundary_checked("crates/rcs/src/repo.rs"));
        assert!(vfs_boundary_checked("crates/store/src/repo.rs"));
        assert!(!vfs_boundary_checked("crates/store/src/vfs.rs"));
        assert!(!vfs_boundary_checked("crates/cli/src/bin/htmldiff.rs"));
        assert!(!vfs_boundary_checked("crates/analysis/src/lib.rs"));
        assert!(!vfs_boundary_checked("crates/criterion/src/lib.rs"));
    }

    #[test]
    fn policy_classification() {
        assert!(is_vendored("crates/criterion/src/lib.rs"));
        assert!(wallclock_allowed("crates/util/src/time.rs"));
        assert!(wallclock_allowed("crates/bench/src/bin/figure1_report.rs"));
        assert!(!wallclock_allowed("crates/util/src/sync.rs"));
        assert!(panic_checked("crates/rcs/src/format.rs"));
        assert!(!panic_checked("crates/cli/src/bin/htmldiff.rs"));
        assert!(!panic_checked("crates/analysis/src/main.rs"));
        assert!(!panic_checked("crates/w3newer/src/bin/w3newer.rs"));
    }

    #[test]
    fn default_config_enables_all() {
        let c = Config::default();
        for l in LINTS {
            assert!(c.enabled(l.name));
        }
        assert!(!c.enabled("nonesuch"));
    }
}
