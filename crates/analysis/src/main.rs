//! The `aide-lint` command-line driver.
//!
//! ```text
//! aide-lint [--root DIR] [--deny] [--json] [--waivers] [--max-waivers N]
//!           [--lint NAME]... [--list]
//! ```
//!
//! Default mode prints human-readable diagnostics and exits 0; `--deny`
//! exits 1 if any unwaived violation exists (the CI gate). `--waivers`
//! prints the waiver accounting, and `--max-waivers N` exits 1 if the
//! waived-violation count exceeds the committed baseline.

use aide_analysis::config::{Config, LINTS};
use aide_analysis::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: aide-lint [--root DIR] [--deny] [--json] [--waivers] \
         [--max-waivers N] [--lint NAME]... [--list]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // aide-lint: allow(determinism): a CLI entry point must read its own argv
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json = false;
    let mut waivers = false;
    let mut max_waivers: Option<usize> = None;
    let mut only: Vec<String> = Vec::new();

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--deny" => deny = true,
            "--json" => json = true,
            "--waivers" => waivers = true,
            "--max-waivers" => {
                let n = it.next().unwrap_or_else(|| usage());
                max_waivers = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--lint" => only.push(it.next().unwrap_or_else(|| usage()).clone()),
            "--list" => {
                for l in LINTS {
                    println!("{:12} {}", l.name, l.description);
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    let mut cfg = Config::default();
    if !only.is_empty() {
        for name in &only {
            if !LINTS.iter().any(|l| l.name == name) {
                eprintln!("aide-lint: unknown lint {name:?} (try --list)");
                return ExitCode::from(2);
            }
        }
        cfg.lints.retain(|l| only.iter().any(|o| o == l));
    }

    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aide-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else if waivers {
        print!("{}", report.render_waivers());
    } else {
        print!("{}", report.render_text());
    }

    if let Some(cap) = max_waivers {
        if report.waived.len() > cap {
            eprintln!(
                "aide-lint: waiver count {} exceeds the committed baseline {cap}; \
                 fix the new violation or bump .aide-lint-waivers with justification",
                report.waived.len()
            );
            return ExitCode::FAILURE;
        }
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
