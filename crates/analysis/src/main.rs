//! The `aide-lint` command-line driver.
//!
//! ```text
//! aide-lint [--root DIR] [--deny] [--emit text|json|sarif] [--waivers]
//!           [--max-waivers N] [--budget-ms N] [--lint NAME]... [--list]
//! ```
//!
//! Default mode prints human-readable diagnostics and exits 0; `--deny`
//! exits 1 if any unwaived violation exists (the CI gate). `--waivers`
//! prints the waiver accounting, and `--max-waivers N` exits 1 if the
//! waived-violation count exceeds the committed baseline. `--budget-ms N`
//! exits 1 if the analysis itself (excluding process startup) takes
//! longer than N milliseconds — CI pins the committed budget so the
//! whole-workspace fixpoint cannot quietly become a build bottleneck.
//! `--json` is shorthand for `--emit json`.

use aide_analysis::config::{Config, LINTS};
use aide_analysis::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: aide-lint [--root DIR] [--deny] [--emit text|json|sarif] [--waivers] \
         [--max-waivers N] [--budget-ms N] [--lint NAME]... [--list]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // aide-lint: allow(determinism): a CLI entry point must read its own argv
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut emit = "text".to_string();
    let mut waivers = false;
    let mut max_waivers: Option<usize> = None;
    let mut budget_ms: Option<u64> = None;
    let mut only: Vec<String> = Vec::new();

    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--deny" => deny = true,
            "--json" => emit = "json".to_string(),
            "--emit" => {
                emit = it.next().unwrap_or_else(|| usage()).clone();
                if !["text", "json", "sarif"].contains(&emit.as_str()) {
                    usage();
                }
            }
            "--waivers" => waivers = true,
            "--max-waivers" => {
                let n = it.next().unwrap_or_else(|| usage());
                max_waivers = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--budget-ms" => {
                let n = it.next().unwrap_or_else(|| usage());
                budget_ms = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--lint" => only.push(it.next().unwrap_or_else(|| usage()).clone()),
            "--list" => {
                for l in LINTS {
                    println!("{:22} {}", l.name, l.description);
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    let mut cfg = Config::default();
    if !only.is_empty() {
        for name in &only {
            if !LINTS.iter().any(|l| l.name == name) {
                eprintln!("aide-lint: unknown lint {name:?} (try --list)");
                return ExitCode::from(2);
            }
        }
        cfg.lints.retain(|l| only.iter().any(|o| o == l));
    }

    // aide-lint: allow(determinism): the budget check measures the tool's own wall clock by design
    let started = std::time::Instant::now();
    let report = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("aide-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;

    if waivers {
        print!("{}", report.render_waivers());
    } else {
        match emit.as_str() {
            "json" => print!("{}", report.render_json()),
            "sarif" => print!("{}", report.render_sarif()),
            _ => print!("{}", report.render_text()),
        }
    }

    let mut failed = false;
    if let Some(cap) = max_waivers {
        if report.waived.len() > cap {
            eprintln!(
                "aide-lint: waiver count {} exceeds the committed baseline {cap}; \
                 fix the new violation or bump .aide-lint-waivers with justification",
                report.waived.len()
            );
            failed = true;
        }
    }
    if let Some(budget) = budget_ms {
        if elapsed_ms > budget {
            eprintln!(
                "aide-lint: analysis took {elapsed_ms} ms, over the committed {budget} ms budget; \
                 profile the new pass or bump .aide-lint-budget-ms with justification"
            );
            failed = true;
        }
    }
    if deny && !report.findings.is_empty() {
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
