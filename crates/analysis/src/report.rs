//! Diagnostic aggregation and rendering (human text and `--json`).

use crate::lints::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A waiver that suppressed nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedWaiver {
    /// File the waiver comment is in.
    pub file: String,
    /// Line of the waiver comment.
    pub line: u32,
    /// Lint names it names.
    pub lints: Vec<String>,
}

/// Call-graph resolution accounting: how much of the workspace the
/// interprocedural families actually see. A resolution regression (new
/// unresolved calls) shows up as a diff in the committed JSON artifact.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GraphStats {
    /// Function items indexed.
    pub functions: usize,
    /// Call sites resolved to at least one workspace function.
    pub calls_resolved: usize,
    /// Call sites naming no known workspace function (std/primitive
    /// calls, mostly).
    pub calls_unresolved: usize,
    /// Method-call sites skipped by the std-collision deny list.
    pub calls_denied: usize,
}

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by any waiver.
    pub findings: Vec<Finding>,
    /// Violations suppressed by waivers (counted, for the CI cap).
    pub waived: Vec<Finding>,
    /// Waivers that matched no finding.
    pub unused_waivers: Vec<UnusedWaiver>,
    /// Number of files scanned.
    pub files: usize,
    /// Call-graph resolution accounting.
    pub graph: GraphStats,
}

impl Report {
    /// Waived-violation counts per lint, sorted by lint name.
    pub fn waived_by_lint(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for f in &self.waived {
            *out.entry(f.lint).or_insert(0) += 1;
        }
        out
    }

    /// Active-violation counts per lint, sorted by lint name.
    pub fn findings_by_lint(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for f in &self.findings {
            *out.entry(f.lint).or_insert(0) += 1;
        }
        out
    }

    /// Human-readable rendering of the active findings plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}",
                f.file, f.line, f.col, f.lint, f.message
            );
            let _ = writeln!(out, "    hint: {}", f.hint);
        }
        let _ = writeln!(
            out,
            "aide-lint: {} files, {} violations, {} waived",
            self.files,
            self.findings.len(),
            self.waived.len()
        );
        let _ = writeln!(
            out,
            "    call graph: {} fns, {} calls resolved, {} unresolved, {} denied by the std-collision policy",
            self.graph.functions,
            self.graph.calls_resolved,
            self.graph.calls_unresolved,
            self.graph.calls_denied
        );
        if !self.findings.is_empty() {
            for (lint, n) in self.findings_by_lint() {
                let _ = writeln!(out, "    {lint}: {n}");
            }
        }
        out
    }

    /// The `--waivers` accounting view.
    pub fn render_waivers(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "aide-lint waivers: {} total", self.waived.len());
        for (lint, n) in self.waived_by_lint() {
            let _ = writeln!(out, "    {lint}: {n}");
        }
        for w in &self.unused_waivers {
            let _ = writeln!(
                out,
                "unused waiver at {}:{} ({})",
                w.file,
                w.line,
                w.lints.join(", ")
            );
        }
        out
    }

    /// Machine-readable rendering. Key order and finding order are
    /// deterministic, so the artifact is byte-stable run to run.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"lint\": {}, \"message\": {}, \"hint\": {}}}",
                json_str(&f.file),
                f.line,
                f.col,
                json_str(f.lint),
                json_str(&f.message),
                json_str(f.hint)
            );
        }
        out.push_str("\n  ],\n  \"waived\": {");
        for (i, (lint, n)) in self.waived_by_lint().into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(lint), n);
        }
        let _ = write!(
            out,
            "}},\n  \"graph\": {{\"functions\": {}, \"calls_resolved\": {}, \"calls_unresolved\": {}, \"calls_denied\": {}}},\n  \"summary\": {{\"files\": {}, \"violations\": {}, \"waived\": {}, \"unused_waivers\": {}}}\n}}\n",
            self.graph.functions,
            self.graph.calls_resolved,
            self.graph.calls_unresolved,
            self.graph.calls_denied,
            self.files,
            self.findings.len(),
            self.waived.len(),
            self.unused_waivers.len()
        );
        out
    }

    /// SARIF 2.1.0 rendering of the active findings, for code-scanning
    /// upload. Deterministic key and result order, like `render_json`.
    pub fn render_sarif(&self) -> String {
        let mut out = String::from(
            "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\"name\": \"aide-lint\", \"rules\": [",
        );
        for (i, l) in crate::config::LINTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(l.name),
                json_str(l.description)
            );
        }
        out.push_str("\n    ]}},\n    \"results\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}",
                json_str(f.lint),
                json_str(&format!("{} (hint: {})", f.message, f.hint)),
                json_str(&f.file),
                f.line,
                f.col
            );
        }
        out.push_str("\n    ]\n  }]\n}\n");
        out
    }
}

/// JSON string-escapes `s`.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn json_shape() {
        let mut r = Report {
            files: 2,
            ..Report::default()
        };
        r.findings.push(Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            lint: "no-panic",
            message: "`.unwrap()` in library code".into(),
            hint: "h",
        });
        let j = r.render_json();
        assert!(j.contains("\"lint\": \"no-panic\""));
        assert!(j.contains("\"violations\": 1"));
        assert!(j.contains("\"calls_unresolved\": 0"));
    }

    #[test]
    fn sarif_shape() {
        let mut r = Report::default();
        r.findings.push(Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            lint: "panic-reach",
            message: "m".into(),
            hint: "h",
        });
        let s = r.render_sarif();
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"panic-reach\""));
        assert!(s.contains("\"startLine\": 3"));
        // Every lint family is declared as a rule.
        for l in crate::config::LINTS {
            assert!(s.contains(&format!("\"id\": \"{}\"", l.name)), "{}", l.name);
        }
    }
}
