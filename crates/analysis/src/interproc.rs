//! The three interprocedural lint families, built on the call graph
//! ([`crate::callgraph`]) and the effect summaries
//! ([`crate::summaries`]):
//!
//! * **`lock-order-interproc`** — while a lock of rank R is held, no
//!   call path may transitively acquire a lock of rank < R, nor a
//!   second lock of the same exclusive named class. The diagnostic
//!   prints the full offending call chain down to the acquiring line.
//! * **`blocking-while-locked`** — while an *exclusive* lock is held,
//!   no local statement or call path may reach an unbounded-latency
//!   blocking operation: fsync, condvar wait, channel recv, or sleep.
//!   (`Vfs` reads/appends under a shard lock are the store's design and
//!   stay allowed.) Deliberate exceptions — the WAL group-commit leader
//!   fsyncing under the shard lock — carry justification waivers.
//! * **`panic-reach`** — no public function of the engine crates
//!   (rcs, snapshot, diffcore, htmldiff, store, sched, serve) may
//!   transitively reach an unwaived panic site. Findings anchor at the
//!   panic *site*, so one waiver covers the site however many entry
//!   points reach it.
//!
//! Held-lock regions are tracked with the same lexical discipline as the
//! intraprocedural `lock-order` lint — let-bound (including
//! destructured) guards, brace scoping, explicit `drop(…)` — extended
//! with one interprocedural rule: a let-bound call to a *guard-returning
//! helper* (per [`Summary::guards`]) holds that helper's lock classes in
//! the caller.

use crate::callgraph::{CallGraph, Symbols};
use crate::config::{panic_entry, Config};
use crate::items::{self, FnItem};
use crate::lints::{binding_holds_guard, normalize, statement_bounds, Finding};
use crate::scope::{bound_names, is_conditional_binding, FileMap};
use crate::summaries::{
    acquire_chain, block_chain, fixpoint, LocalFacts, Summary, DENIED_UNDER_LOCK,
};
use aide_util::sync::lockrank;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// The whole-workspace analysis state: files, items, call graph, and
/// fixpoint summaries. Built once, shared by all three lint passes.
pub struct Workspace {
    /// Parsed files, in input order.
    pub files: Vec<FileMap>,
    /// Every function item, workspace-wide.
    pub fns: Vec<FnItem>,
    /// The resolved call graph over `fns`.
    pub graph: CallGraph,
    /// Per-function transitive effect summaries.
    pub sums: Vec<Summary>,
    /// Per-function local acquisition/blocking sites.
    pub facts: Vec<LocalFacts>,
}

/// Parses, indexes, and summarizes `files`.
pub fn analyze(files: Vec<FileMap>) -> Workspace {
    let mut fns = Vec::new();
    for (idx, fm) in files.iter().enumerate() {
        fns.extend(items::collect(fm, idx));
    }
    let syms = Symbols::build(&fns);
    let graph = crate::callgraph::build(&files, &fns, &syms);
    let (sums, facts) = fixpoint(&files, &fns, &graph);
    Workspace {
        files,
        fns,
        graph,
        sums,
        facts,
    }
}

/// Runs the enabled interprocedural lints. Findings are sorted by
/// (file, line, col) per file by the caller's merge.
pub fn lint_graph(ws: &Workspace, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    if cfg.enabled("lock-order-interproc") || cfg.enabled("blocking-while-locked") {
        for id in 0..ws.fns.len() {
            held_walk(ws, cfg, id, &mut out);
        }
    }
    if cfg.enabled("panic-reach") {
        panic_reach(ws, &mut out);
    }
    out
}

/// One lock guard held at a point in the walk.
struct HeldG {
    class: &'static lockrank::LockClass,
    /// Whether the acquisition mode is exclusive (a `.read()` is not).
    exclusive: bool,
    /// Whether the guard arrived through a guard-returning helper call
    /// (the intraprocedural `lock-order` lint cannot see those, so
    /// inversions against them are this lint's to report).
    via_call: bool,
    names: Vec<String>,
    depth: usize,
    line: u32,
}

/// An event the walker reacts to, in body order.
enum Event {
    /// Index into `facts[id].acquisitions`.
    Acq(usize),
    /// Index into `facts[id].blocks`.
    Block(usize),
    /// Index into `graph.sites[id]`.
    Call(usize),
}

/// Walks one function body tracking held locks, firing
/// `lock-order-interproc` at call sites whose transitive acquisitions
/// invert the held ranks, and `blocking-while-locked` at local blocking
/// sites and call sites that transitively block.
fn held_walk(ws: &Workspace, cfg: &Config, id: usize, out: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    if f.in_test || f.in_debug {
        return;
    }
    let fm = &ws.files[f.file];
    let masked = &fm.masked;
    let b = masked.as_bytes();
    let facts = &ws.facts[id];

    let mut events: Vec<(usize, Event)> = Vec::new();
    events.extend(
        facts
            .acquisitions
            .iter()
            .enumerate()
            .map(|(i, a)| (a.off, Event::Acq(i))),
    );
    events.extend(
        facts
            .blocks
            .iter()
            .enumerate()
            .map(|(i, bl)| (bl.off, Event::Block(i))),
    );
    events.extend(
        ws.graph.sites[id]
            .iter()
            .enumerate()
            .map(|(i, s)| (s.off, Event::Call(i))),
    );
    events.sort_by_key(|(off, _)| *off);

    let mut held: Vec<HeldG> = Vec::new();
    let mut depth = 0usize;
    let mut ev = events.iter().peekable();
    let mut i = f.body.0;
    while i < f.body.1 {
        while let Some((at, e)) = ev.peek() {
            if *at != i {
                break;
            }
            match e {
                Event::Acq(k) => {
                    on_acquire(ws, cfg, id, &facts.acquisitions[*k], depth, &mut held, out)
                }
                Event::Block(k) => {
                    let bl = &facts.blocks[*k];
                    if cfg.enabled("blocking-while-locked") && DENIED_UNDER_LOCK.contains(&bl.kind)
                    {
                        if let Some(g) = held.iter().find(|g| g.exclusive) {
                            out.push(Finding {
                                file: fm.rel.clone(),
                                line: bl.line,
                                col: fm.line_col(bl.off).1,
                                lint: "blocking-while-locked",
                                message: format!(
                                    "{} operation while the exclusive `{}` lock from line {} is held",
                                    bl.kind, g.class.name, g.line
                                ),
                                hint: BLOCK_HINT,
                            });
                        }
                    }
                }
                Event::Call(k) => {
                    on_call(ws, cfg, id, *k, &held, out);
                    push_call_guards(ws, id, *k, depth, &mut held);
                }
            }
            ev.next();
        }
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|g| g.depth <= depth);
            }
            b'd' if masked[i..].starts_with("drop(") => {
                let arg_end = masked[i + 5..f.body.1]
                    .find(')')
                    .map(|p| i + 5 + p)
                    .unwrap_or(f.body.1);
                let arg = normalize(&masked[i + 5..arg_end]);
                held.retain(|g| !g.names.iter().any(|n| n == &arg));
            }
            _ => {}
        }
        i += 1;
    }
}

const ORDER_HINT: &str =
    "acquire locks in ascending rank order on every call path (flight, url, user, sched, wal, store, \
     then structure guards); hoist the inner acquisition out of the locked region or take it first";
const BLOCK_HINT: &str =
    "move the blocking operation outside the locked region, or waive with a justification if \
     blocking under this lock is the design (e.g. the WAL group-commit leader)";

/// Handles a local acquisition: first checks it against guards that
/// arrived through helper calls (the intraprocedural `lock-order` lint
/// cannot see those), then pushes a held guard when the statement
/// let-binds the result (including destructuring patterns).
fn on_acquire(
    ws: &Workspace,
    cfg: &Config,
    id: usize,
    a: &crate::summaries::AcqSite,
    depth: usize,
    held: &mut Vec<HeldG>,
    out: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let fm = &ws.files[f.file];
    let masked = &fm.masked;
    let Some(class) = lockrank::class(a.class) else {
        return;
    };
    if cfg.enabled("lock-order-interproc") {
        let offender = held.iter().find(|g| {
            g.via_call
                && (class.rank < g.class.rank || (class.exclusive && g.class.name == class.name))
        });
        if let Some(g) = offender {
            out.push(Finding {
                file: fm.rel.clone(),
                line: a.line,
                col: fm.line_col(a.off).1,
                lint: "lock-order-interproc",
                message: format!(
                    "acquiring `{}` (rank {}) while `{}` (rank {}) is held via the helper call at line {}",
                    class.name, class.rank, g.class.name, g.class.rank, g.line
                ),
                hint: ORDER_HINT,
            });
        }
    }
    let (stmt_start, stmt_end) = statement_bounds(masked, f.body, a.off);
    let stmt = &masked[stmt_start..stmt_end];
    let names = bound_names(stmt);
    if names.is_empty() || !binding_holds_guard(masked, a.off, (stmt_start, stmt_end)) {
        return;
    }
    let guard_depth = if is_conditional_binding(stmt) {
        depth + 1
    } else {
        depth
    };
    held.push(HeldG {
        class,
        exclusive: a.exclusive,
        via_call: false,
        names,
        depth: guard_depth,
        line: a.line,
    });
}

/// Checks one call site against the held set, then (if the callee is a
/// guard-returning helper and the call is let-bound) extends the held
/// set with the callee's guard classes.
fn on_call(
    ws: &Workspace,
    cfg: &Config,
    id: usize,
    site_idx: usize,
    held: &[HeldG],
    out: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let fm = &ws.files[f.file];
    let site = &ws.graph.sites[id][site_idx];
    if site.targets.is_empty() {
        return;
    }

    // Union the targets' transitive effects, keeping the first target
    // that exhibits each (deterministic: targets are in item order).
    let mut acq: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut blk: BTreeMap<&'static str, usize> = BTreeMap::new();
    for &t in &site.targets {
        for class in ws.sums[t].acquires.keys() {
            acq.entry(class).or_insert(t);
        }
        for kind in ws.sums[t].blocks.keys() {
            blk.entry(kind).or_insert(t);
        }
    }

    if cfg.enabled("lock-order-interproc") {
        for (&class_name, &t) in &acq {
            let Some(class) = lockrank::class(class_name) else {
                continue;
            };
            // The first held guard that the acquisition inverts: lower
            // rank than held, or a second exclusive lock of the same
            // named class. (Equal-rank `structure`-vs-`structure` never
            // fires here — receivers are not comparable across calls.)
            let offender = held.iter().find(|g| {
                class.rank < g.class.rank || (class.exclusive && g.class.name == class.name)
            });
            if let Some(g) = offender {
                let chain = acquire_chain(&ws.files, &ws.fns, &ws.sums, t, class_name);
                out.push(Finding {
                    file: fm.rel.clone(),
                    line: site.line,
                    col: fm.line_col(site.off).1,
                    lint: "lock-order-interproc",
                    message: format!(
                        "call to `{}` may acquire `{}` (rank {}) while `{}` (rank {}) from line {} is held; via {}",
                        ws.fns[t].qualified(),
                        class.name,
                        class.rank,
                        g.class.name,
                        g.class.rank,
                        g.line,
                        chain
                    ),
                    hint: ORDER_HINT,
                });
            }
        }
    }

    if cfg.enabled("blocking-while-locked") {
        if let Some(g) = held.iter().find(|g| g.exclusive) {
            for (&kind, &t) in &blk {
                if !DENIED_UNDER_LOCK.contains(&kind) {
                    continue;
                }
                let chain = block_chain(&ws.files, &ws.fns, &ws.sums, t, kind);
                out.push(Finding {
                    file: fm.rel.clone(),
                    line: site.line,
                    col: fm.line_col(site.off).1,
                    lint: "blocking-while-locked",
                    message: format!(
                        "call to `{}` may reach a {} operation while the exclusive `{}` lock from line {} is held; via {}",
                        ws.fns[t].qualified(),
                        kind,
                        g.class.name,
                        g.line,
                        chain
                    ),
                    hint: BLOCK_HINT,
                });
            }
        }
    }
}

/// Extends the held set after a guard-returning call site has been
/// checked. Separated from [`on_call`] so the call's own effects are
/// judged against the *prior* held set.
fn push_call_guards(
    ws: &Workspace,
    id: usize,
    site_idx: usize,
    depth: usize,
    held: &mut Vec<HeldG>,
) {
    let f = &ws.fns[id];
    let fm = &ws.files[f.file];
    let masked = &fm.masked;
    let site = &ws.graph.sites[id][site_idx];
    let mut classes: Vec<(&'static str, bool)> = site
        .targets
        .iter()
        .flat_map(|&t| ws.sums[t].guards.iter().copied())
        .collect();
    classes.sort_unstable();
    classes.dedup();
    if classes.is_empty() {
        return;
    }
    let (stmt_start, stmt_end) = statement_bounds(masked, f.body, site.off);
    let stmt = &masked[stmt_start..stmt_end];
    let names = bound_names(stmt);
    if names.is_empty() || !binding_holds_guard(masked, site.off, (stmt_start, stmt_end)) {
        return;
    }
    let guard_depth = if is_conditional_binding(stmt) {
        depth + 1
    } else {
        depth
    };
    for (class_name, exclusive) in classes {
        let Some(class) = lockrank::class(class_name) else {
            continue;
        };
        held.push(HeldG {
            class,
            exclusive,
            via_call: true,
            names: names.clone(),
            depth: guard_depth,
            line: site.line,
        });
    }
}

/// Breadth-first reachability from every public entry function of the
/// engine crates to panic sites, with predecessor links for the chain
/// diagnostic. Findings anchor at the panic site.
fn panic_reach(ws: &Workspace, out: &mut Vec<Finding>) {
    let n = ws.fns.len();
    let mut visited = vec![false; n];
    let mut pred: Vec<Option<(usize, u32)>> = vec![None; n];
    let mut root = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_pub && !f.in_test && !f.in_debug && panic_entry(&ws.files[f.file].rel) {
            visited[id] = true;
            root[id] = id;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for site in &ws.graph.sites[id] {
            for &t in &site.targets {
                if !visited[t] {
                    visited[t] = true;
                    pred[t] = Some((id, site.line));
                    root[t] = root[id];
                    queue.push_back(t);
                }
            }
        }
    }
    for id in 0..n {
        if !visited[id] || ws.sums[id].panic_sites.is_empty() {
            continue;
        }
        let entry = root[id];
        let path = render_path(ws, &pred, entry, id);
        let fm = &ws.files[ws.fns[id].file];
        for &line in &ws.sums[id].panic_sites {
            out.push(Finding {
                file: fm.rel.clone(),
                line,
                col: 1,
                lint: "panic-reach",
                message: format!(
                    "panic site reachable from public entry `{}` ({}:{}){}",
                    ws.fns[entry].qualified(),
                    ws.files[ws.fns[entry].file].rel,
                    ws.fns[entry].line,
                    path
                ),
                hint:
                    "return a typed error along this path, or waive the site with a justification \
                       if the panic guards a broken internal invariant",
            });
        }
    }
}

/// Renders ` via a → b → c` from the BFS predecessor links (empty when
/// the site is in the entry itself).
fn render_path(ws: &Workspace, pred: &[Option<(usize, u32)>], entry: usize, id: usize) -> String {
    let mut hops = Vec::new();
    let mut cur = id;
    while cur != entry {
        let Some((p, line)) = pred[cur] else {
            break;
        };
        hops.push(format!(
            "`{}` (called at {}:{})",
            ws.fns[cur].qualified(),
            ws.files[ws.fns[p].file].rel,
            line
        ));
        cur = p;
    }
    if hops.is_empty() {
        return String::new();
    }
    hops.reverse();
    format!("; via {}", hops.join(" → "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)], lints: &[&'static str]) -> Vec<Finding> {
        let files: Vec<FileMap> = srcs.iter().map(|(rel, s)| FileMap::new(rel, s)).collect();
        let ws = analyze(files);
        let cfg = Config {
            lints: lints.to_vec(),
        };
        lint_graph(&ws, &cfg)
    }

    #[test]
    fn interproc_inversion_across_two_crates() {
        let caller = "\
pub fn ingest(t: &LockTable, s: &aide_store::Store) {
    let g = t.lock(&LockTable::url_key(\"u\"));
    aide_store::persist(s);
    drop(g);
}
";
        let callee = "\
pub fn persist(s: &Store) { let f = s.flights.once(\"k\"); drop(f); }
";
        let out = run(
            &[
                ("crates/sched/src/a.rs", caller),
                ("crates/store/src/b.rs", callee),
            ],
            &["lock-order-interproc"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].lint, "lock-order-interproc");
        assert!(
            out[0].message.contains("`flight` (rank 5)"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("`persist` acquires `flight`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn ascending_rank_call_is_clean() {
        let src = "\
fn leaf(v: &std::sync::Mutex<u32>) { let g = v.lock(); drop(g); }
pub fn top(t: &LockTable, v: &std::sync::Mutex<u32>) {
    let g = t.lock(&LockTable::url_key(\"u\"));
    leaf(v);
    drop(g);
}
";
        let out = run(&[("crates/store/src/a.rs", src)], &["lock-order-interproc"]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn blocking_reached_through_call_under_lock() {
        let src = "\
fn flush(vfs: &dyn Vfs) { vfs.sync(\"wal\"); }
pub fn commit(vfs: &dyn Vfs, v: &std::sync::Mutex<u32>) {
    let g = v.lock();
    flush(vfs);
    drop(g);
}
";
        let out = run(
            &[("crates/store/src/a.rs", src)],
            &["blocking-while-locked"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("fsync"), "{}", out[0].message);
        assert!(
            out[0].message.contains("`flush` reaches a fsync op"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn blocking_under_read_lock_is_allowed() {
        let src = "\
fn flush(vfs: &dyn Vfs) { vfs.sync(\"wal\"); }
pub fn scan(vfs: &dyn Vfs, v: &std::sync::RwLock<u32>) {
    let g = v.read();
    flush(vfs);
    drop(g);
}
";
        let out = run(
            &[("crates/store/src/a.rs", src)],
            &["blocking-while-locked"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn local_blocking_under_lock_fires() {
        let src = "\
pub fn commit(vfs: &dyn Vfs, v: &std::sync::Mutex<u32>) {
    let g = v.lock();
    vfs.sync(\"wal\");
    drop(g);
}
";
        let out = run(
            &[("crates/store/src/a.rs", src)],
            &["blocking-while-locked"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn guard_returning_helper_holds_its_class() {
        let src = "\
struct Sched;
impl Sched {
    fn locked(&self) -> (lockrank::Held, MutexGuard<State>) {
        let held = lockrank::acquire(\"sched\", \"sched:state\");
        (held, self.state.lock())
    }
    pub fn tick(&self, t: &LockTable) {
        let (held, st) = self.locked();
        let g = t.lock(&LockTable::url_key(\"u\"));
        drop(g);
        drop(st);
        drop(held);
    }
}
";
        let out = run(&[("crates/sched/src/a.rs", src)], &["lock-order-interproc"]);
        // `tick` holds `sched` (rank 22) via the helper; the direct
        // `url` (rank 10) acquisition inverts it. The intraprocedural
        // lint cannot see helper-held guards, so this family reports it.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("held via the helper call"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn guard_returning_helper_then_inverting_call_fires() {
        let src = "\
struct Sched;
impl Sched {
    fn locked(&self) -> (lockrank::Held, MutexGuard<State>) {
        let held = lockrank::acquire(\"sched\", \"sched:state\");
        (held, self.state.lock())
    }
    pub fn tick(&self, t: &LockTable) {
        let (held, st) = self.locked();
        grab_url(t);
        drop(st);
        drop(held);
    }
}
fn grab_url(t: &LockTable) { let g = t.lock(&LockTable::url_key(\"u\")); drop(g); }
";
        let out = run(&[("crates/sched/src/a.rs", src)], &["lock-order-interproc"]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0]
                .message
                .contains("`url` (rank 10) while `sched` (rank 22)"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn diamond_call_graph_reports_once_per_site() {
        let src = "\
fn leaf(t: &LockTable) { let g = t.lock(&LockTable::url_key(\"u\")); drop(g); }
fn left(t: &LockTable) { leaf(t); }
fn right(t: &LockTable) { leaf(t); }
pub fn top(t: &LockTable, s: &Shards) {
    let (h, sh) = s.lock_shard(0);
    left(t);
    right(t);
    drop(sh);
    drop(h);
}
";
        let out = run(&[("crates/store/src/a.rs", src)], &["lock-order-interproc"]);
        // One finding per call site (left, right), not per path.
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn drop_releases_before_the_call() {
        let src = "\
fn flush(vfs: &dyn Vfs) { vfs.sync(\"wal\"); }
pub fn commit(vfs: &dyn Vfs, v: &std::sync::Mutex<u32>) {
    let g = v.lock();
    drop(g);
    flush(vfs);
}
";
        let out = run(
            &[("crates/store/src/a.rs", src)],
            &["blocking-while-locked"],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn panic_reach_anchors_at_the_site() {
        let helper = "\
pub(crate) fn decode(x: Option<u32>) -> u32 { x.unwrap() }
";
        let entry = "\
pub fn open(x: Option<u32>) -> u32 { aide_util::decode(x) }
";
        let out = run(
            &[
                ("crates/util/src/helper.rs", helper),
                ("crates/rcs/src/lib.rs", entry),
            ],
            &["panic-reach"],
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, "crates/util/src/helper.rs");
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("`open`"), "{}", out[0].message);
        assert!(
            out[0].message.contains("via `decode`"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn unreachable_panic_site_is_quiet() {
        let srcs = [
            (
                "crates/util/src/helper.rs",
                "pub(crate) fn boom() { panic!(\"x\"); }\n",
            ),
            ("crates/rcs/src/lib.rs", "pub fn open() -> u32 { 1 }\n"),
        ];
        let out = run(&srcs, &["panic-reach"]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn non_entry_crate_pub_fns_are_not_entries() {
        let out = run(
            &[(
                "crates/util/src/lib.rs",
                "pub fn boom() { panic!(\"x\"); }\n",
            )],
            &["panic-reach"],
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
