//! Structural views over a lexed file: line/column mapping, `#[cfg(test)]`
//! regions, and function body spans.
//!
//! Everything here works on the *masked* source (see [`crate::lexer`]),
//! so brace matching and keyword scanning cannot be fooled by braces or
//! keywords inside strings and comments.

use crate::lexer::{is_ident_byte, is_raw_ident_start, lex, Comment};

/// A lexed file plus the structural indexes the lints navigate by.
#[derive(Debug)]
pub struct FileMap {
    /// Path relative to the repository root, with `/` separators.
    pub rel: String,
    /// The original source (for reading string-literal contents that the
    /// masked copy blanks, e.g. lock-class names).
    pub src: String,
    /// The masked source (same byte offsets as the original).
    pub masked: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Byte ranges covered by `#[cfg(debug_assertions)]` items (the
    /// debug-only runtime checker panics by design; panic-reachability
    /// must not count those sites).
    pub debug_spans: Vec<(usize, usize)>,
    /// Function bodies, outermost first.
    pub fns: Vec<FnSpan>,
}

/// One `fn` item: its name and the byte range of its `{ … }` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword (the signature runs from here to
    /// the body's opening brace).
    pub sig_start: usize,
    /// Byte range of the body, including the outer braces.
    pub body: (usize, usize),
}

impl FileMap {
    /// Lexes and indexes `src` under the repo-relative path `rel`.
    pub fn new(rel: &str, src: &str) -> FileMap {
        let lexed = lex(src);
        let masked = lexed.masked;
        let mut line_starts = vec![0usize];
        for (i, b) in masked.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_attr_spans(&masked, &["#[cfg(test)]", "#[cfg(all(test", "#[test]"]);
        let debug_spans = find_attr_spans(&masked, &["#[cfg(debug_assertions)]"]);
        let fns = find_fns(&masked);
        FileMap {
            rel: rel.to_string(),
            src: src.to_string(),
            masked,
            comments: lexed.comments,
            line_starts,
            test_spans,
            debug_spans,
            fns,
        }
    }

    /// Maps a byte offset to 1-based (line, column).
    pub fn line_col(&self, off: usize) -> (u32, u32) {
        let line_idx = match self.line_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (
            (line_idx + 1) as u32,
            (off - self.line_starts[line_idx] + 1) as u32,
        )
    }

    /// Whether `off` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, off: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| off >= a && off < b)
    }

    /// Whether `off` falls inside a `#[cfg(debug_assertions)]` region.
    pub fn in_debug(&self, off: usize) -> bool {
        self.debug_spans.iter().any(|&(a, b)| off >= a && off < b)
    }

    /// The innermost function body containing `off`, if any.
    pub fn enclosing_fn(&self, off: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| off >= f.body.0 && off < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Finds every occurrence of `needle` in `hay` at identifier boundaries.
pub fn ident_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        // `r#match` must not match the needle `match`: a raw-identifier
        // prefix immediately before the match site is a hard boundary.
        let raw_prefixed = at >= 2 && is_raw_ident_start(hb, at - 2);
        let left_ok = (at == 0 || !is_ident_byte(hb[at - 1])) && !raw_prefixed;
        let end = at + needle.len();
        // A path needle ending in `::` (or any non-ident byte) has no
        // right boundary to respect.
        let needs_right = needle.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let right_ok = !needs_right || end >= hb.len() || !is_ident_byte(hb[end]);
        if left_ok && right_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Returns the offset just past the `]` closing the attribute whose `#`
/// is at `at`, or `None` if unclosed.
fn attr_end(masked: &str, at: usize) -> Option<usize> {
    let b = masked.as_bytes();
    let mut i = at;
    while i < b.len() && b[i] != b'[' {
        i += 1;
    }
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Returns the offset just past the `}` matching the `{` at `open`, or
/// the end of `masked` if unbalanced.
pub fn brace_match(masked: &str, open: usize) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Locates the spans of items (or statement-level blocks) annotated with
/// any of `markers` (e.g. `#[cfg(test)]`, `#[cfg(debug_assertions)]`).
fn find_attr_spans(masked: &str, markers: &[&str]) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut spans = Vec::new();
    for marker in markers {
        for at in substring_occurrences(masked, marker) {
            // Skip past this attribute and any further ones, then find
            // the item's opening `{` (or terminating `;`).
            let Some(mut i) = attr_end(masked, at) else {
                continue;
            };
            loop {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'#' {
                    match attr_end(masked, i) {
                        Some(next) => i = next,
                        None => break,
                    }
                } else {
                    break;
                }
            }
            let mut j = i;
            while j < b.len() && b[j] != b'{' && b[j] != b';' {
                j += 1;
            }
            if j < b.len() && b[j] == b'{' {
                spans.push((at, brace_match(masked, j)));
            } else {
                spans.push((at, j.min(b.len())));
            }
        }
    }
    spans.sort_unstable();
    spans
}

/// Plain (non-identifier-boundary) substring occurrence scan.
fn substring_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len().max(1);
    }
    out
}

/// Locates every `fn` item body.
fn find_fns(masked: &str) -> Vec<FnSpan> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    for at in ident_occurrences(masked, "fn") {
        // Name: next identifier after `fn`.
        let mut i = at + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        // `fn r#match` names the function `match`, not `r`.
        if is_raw_ident_start(b, i) {
            i += 2;
        }
        let name_start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in an `Fn()` bound or closure-typed position
        }
        let name = masked[name_start..i].to_string();
        // Body: first `{` before any `;` (a `;` first means a trait or
        // extern declaration with no body).
        let mut j = i;
        let mut body = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    body = Some((j, brace_match(masked, j)));
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            out.push(FnSpan {
                name,
                sig_start: at,
                body,
            });
        }
    }
    out
}

/// The identifiers bound by `stmt` when it is a `let` statement
/// (including `if let` / `while let` and destructuring patterns such as
/// `let (g, _) = …` or `if let Ok(g) = …`) or a plain reassignment of an
/// existing binding (`st = self.state.lock();`). Identifiers starting
/// with an uppercase letter (enum constructors, struct names) and the
/// pattern keywords `mut`/`ref` are not bindings and are skipped; `_`
/// binds nothing. Returns an empty vector when nothing trackable is
/// bound.
pub fn bound_names(stmt: &str) -> Vec<String> {
    let t = stmt.trim_start();
    let t = t.strip_prefix("if ").unwrap_or(t).trim_start();
    let t = t.strip_prefix("while ").unwrap_or(t).trim_start();
    let pat: &str = if let Some(rest) = t.strip_prefix("let ") {
        match rest.find('=') {
            Some(eq) => &rest[..eq],
            None => return Vec::new(),
        }
    } else {
        // `name = rhs;` reassignment. Compound operators (`+=`, `<=`,
        // `==`) all put a non-`=` byte where we require `=`.
        let b = t.as_bytes();
        let mut i = 0usize;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if i == 0 {
            return Vec::new();
        }
        let rest = t[i..].trim_start();
        if !rest.starts_with('=') || rest.starts_with("==") {
            return Vec::new();
        }
        &t[..i]
    };
    // Cut a type annotation (`let g: MutexGuard<T> = …`); the first `:`
    // outside any pattern nesting ends the pattern proper. Struct
    // patterns with field renames are beyond this parser.
    let pat = pat.split(':').next().unwrap_or(pat);
    let mut out = Vec::new();
    let pb = pat.as_bytes();
    let mut i = 0usize;
    while i < pb.len() {
        if is_ident_byte(pb[i]) {
            let start = i;
            while i < pb.len() && is_ident_byte(pb[i]) {
                i += 1;
            }
            let name = &pat[start..i];
            let first = name.as_bytes()[0];
            if name != "_"
                && name != "mut"
                && name != "ref"
                && !first.is_ascii_uppercase()
                && !first.is_ascii_digit()
                && !out.iter().any(|n| n == name)
            {
                out.push(name.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Whether `stmt` is an `if let` / `while let` binding, whose bindings
/// scope to the block that follows rather than the enclosing one.
pub fn is_conditional_binding(stmt: &str) -> bool {
    let t = stmt.trim_start();
    t.starts_with("if ") || t.starts_with("while ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn outer(x: u32) -> u32 {
    let s = "fn fake() {";
    x + 1
}

#[cfg(test)]
mod tests {
    fn helper() { panic!("in tests"); }
}
"#;

    #[test]
    fn fn_spans_ignore_strings() {
        let fm = FileMap::new("x.rs", SRC);
        let names: Vec<&str> = fm.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "helper"]);
    }

    #[test]
    fn test_region_covers_mod() {
        let fm = FileMap::new("x.rs", SRC);
        let panic_at = fm.masked.find("panic!").expect("panic! survives masking");
        assert!(fm.in_test(panic_at));
        let outer_at = fm.masked.find("x + 1").expect("code");
        assert!(!fm.in_test(outer_at));
    }

    #[test]
    fn line_col_maps() {
        let fm = FileMap::new("x.rs", "ab\ncde\nf");
        assert_eq!(fm.line_col(0), (1, 1));
        assert_eq!(fm.line_col(3), (2, 1));
        assert_eq!(fm.line_col(5), (2, 3));
        assert_eq!(fm.line_col(7), (3, 1));
    }

    #[test]
    fn ident_boundaries_respected() {
        let occ = ident_occurrences("Instant x InstantLike y my_Instant z Instant", "Instant");
        assert_eq!(occ.len(), 2);
    }

    #[test]
    fn raw_identifiers_do_not_match_keywords() {
        assert!(ident_occurrences("let r#match = 1; r#match + 2", "match").is_empty());
        assert_eq!(
            ident_occurrences("match x { _ => r#match }", "match").len(),
            1
        );
    }

    #[test]
    fn raw_identifier_fn_names() {
        let fm = FileMap::new("x.rs", "fn r#match(x: u32) -> u32 { x }");
        assert_eq!(fm.fns[0].name, "match");
    }

    #[test]
    fn debug_spans_cover_cfg_blocks() {
        let src = "pub fn f() {\n    #[cfg(debug_assertions)]\n    {\n        check();\n    }\n    #[cfg(not(debug_assertions))]\n    {\n        fast();\n    }\n}\n";
        let fm = FileMap::new("x.rs", src);
        let check_at = src.find("check").expect("check");
        let fast_at = src.find("fast").expect("fast");
        assert!(fm.in_debug(check_at));
        assert!(!fm.in_debug(fast_at));
    }

    #[test]
    fn bound_names_cover_destructuring() {
        assert_eq!(bound_names("let g = m.lock()"), ["g"]);
        assert_eq!(bound_names("let (g, _) = pair()"), ["g"]);
        assert_eq!(
            bound_names("let (_held, mut sh) = self.lock_shard(si)"),
            ["_held", "sh"]
        );
        assert_eq!(bound_names("if let Ok(g) = m.lock()"), ["g"]);
        assert_eq!(bound_names("while let Some(x) = it.next()"), ["x"]);
        assert_eq!(bound_names("st = self.state.lock()"), ["st"]);
        assert_eq!(bound_names("let g: MutexGuard<u32> = m.lock()"), ["g"]);
        assert!(bound_names("let _ = m.lock()").is_empty());
        assert!(bound_names("x += 1").is_empty());
        assert!(bound_names("a == b").is_empty());
        assert!(bound_names("m.lock().touch()").is_empty());
    }

    #[test]
    fn conditional_bindings_detected() {
        assert!(is_conditional_binding("if let Ok(g) = m.lock()"));
        assert!(is_conditional_binding("  while let Some(x) = q.pop()"));
        assert!(!is_conditional_binding("let g = m.lock()"));
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn a() { fn b() { inner(); } outer(); }";
        let fm = FileMap::new("x.rs", src);
        let at = src.find("inner").expect("inner");
        assert_eq!(fm.enclosing_fn(at).expect("fn").name, "b");
        let at = src.find("outer").expect("outer");
        assert_eq!(fm.enclosing_fn(at).expect("fn").name, "a");
    }
}
