//! Structural views over a lexed file: line/column mapping, `#[cfg(test)]`
//! regions, and function body spans.
//!
//! Everything here works on the *masked* source (see [`crate::lexer`]),
//! so brace matching and keyword scanning cannot be fooled by braces or
//! keywords inside strings and comments.

use crate::lexer::{is_ident_byte, lex, Comment};

/// A lexed file plus the structural indexes the lints navigate by.
#[derive(Debug)]
pub struct FileMap {
    /// Path relative to the repository root, with `/` separators.
    pub rel: String,
    /// The masked source (same byte offsets as the original).
    pub masked: String,
    /// All comments, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
    /// Function bodies, outermost first.
    pub fns: Vec<FnSpan>,
}

/// One `fn` item: its name and the byte range of its `{ … }` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Byte offset of the `fn` keyword (the signature runs from here to
    /// the body's opening brace).
    pub sig_start: usize,
    /// Byte range of the body, including the outer braces.
    pub body: (usize, usize),
}

impl FileMap {
    /// Lexes and indexes `src` under the repo-relative path `rel`.
    pub fn new(rel: &str, src: &str) -> FileMap {
        let lexed = lex(src);
        let masked = lexed.masked;
        let mut line_starts = vec![0usize];
        for (i, b) in masked.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&masked);
        let fns = find_fns(&masked);
        FileMap {
            rel: rel.to_string(),
            masked,
            comments: lexed.comments,
            line_starts,
            test_spans,
            fns,
        }
    }

    /// Maps a byte offset to 1-based (line, column).
    pub fn line_col(&self, off: usize) -> (u32, u32) {
        let line_idx = match self.line_starts.binary_search(&off) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (
            (line_idx + 1) as u32,
            (off - self.line_starts[line_idx] + 1) as u32,
        )
    }

    /// Whether `off` falls inside a `#[cfg(test)]` region.
    pub fn in_test(&self, off: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| off >= a && off < b)
    }

    /// The innermost function body containing `off`, if any.
    pub fn enclosing_fn(&self, off: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| off >= f.body.0 && off < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Finds every occurrence of `needle` in `hay` at identifier boundaries.
pub fn ident_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let hb = hay.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let left_ok = at == 0 || !is_ident_byte(hb[at - 1]);
        let end = at + needle.len();
        // A path needle ending in `::` (or any non-ident byte) has no
        // right boundary to respect.
        let needs_right = needle.as_bytes().last().is_some_and(|&b| is_ident_byte(b));
        let right_ok = !needs_right || end >= hb.len() || !is_ident_byte(hb[end]);
        if left_ok && right_ok {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Returns the offset just past the `]` closing the attribute whose `#`
/// is at `at`, or `None` if unclosed.
fn attr_end(masked: &str, at: usize) -> Option<usize> {
    let b = masked.as_bytes();
    let mut i = at;
    while i < b.len() && b[i] != b'[' {
        i += 1;
    }
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Returns the offset just past the `}` matching the `{` at `open`, or
/// the end of `masked` if unbalanced.
pub fn brace_match(masked: &str, open: usize) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Locates the spans of items annotated `#[cfg(test)]` (and `#[test]`).
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut spans = Vec::new();
    for marker in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        for at in substring_occurrences(masked, marker) {
            // Skip past this attribute and any further ones, then find
            // the item's opening `{` (or terminating `;`).
            let Some(mut i) = attr_end(masked, at) else {
                continue;
            };
            loop {
                while i < b.len() && b[i].is_ascii_whitespace() {
                    i += 1;
                }
                if i < b.len() && b[i] == b'#' {
                    match attr_end(masked, i) {
                        Some(next) => i = next,
                        None => break,
                    }
                } else {
                    break;
                }
            }
            let mut j = i;
            while j < b.len() && b[j] != b'{' && b[j] != b';' {
                j += 1;
            }
            if j < b.len() && b[j] == b'{' {
                spans.push((at, brace_match(masked, j)));
            } else {
                spans.push((at, j.min(b.len())));
            }
        }
    }
    spans.sort_unstable();
    spans
}

/// Plain (non-identifier-boundary) substring occurrence scan.
fn substring_occurrences(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = hay[from..].find(needle) {
        out.push(from + pos);
        from += pos + needle.len().max(1);
    }
    out
}

/// Locates every `fn` item body.
fn find_fns(masked: &str) -> Vec<FnSpan> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    for at in ident_occurrences(masked, "fn") {
        // Name: next identifier after `fn`.
        let mut i = at + 2;
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in an `Fn()` bound or closure-typed position
        }
        let name = masked[name_start..i].to_string();
        // Body: first `{` before any `;` (a `;` first means a trait or
        // extern declaration with no body).
        let mut j = i;
        let mut body = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    body = Some((j, brace_match(masked, j)));
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            out.push(FnSpan {
                name,
                sig_start: at,
                body,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub fn outer(x: u32) -> u32 {
    let s = "fn fake() {";
    x + 1
}

#[cfg(test)]
mod tests {
    fn helper() { panic!("in tests"); }
}
"#;

    #[test]
    fn fn_spans_ignore_strings() {
        let fm = FileMap::new("x.rs", SRC);
        let names: Vec<&str> = fm.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "helper"]);
    }

    #[test]
    fn test_region_covers_mod() {
        let fm = FileMap::new("x.rs", SRC);
        let panic_at = fm.masked.find("panic!").expect("panic! survives masking");
        assert!(fm.in_test(panic_at));
        let outer_at = fm.masked.find("x + 1").expect("code");
        assert!(!fm.in_test(outer_at));
    }

    #[test]
    fn line_col_maps() {
        let fm = FileMap::new("x.rs", "ab\ncde\nf");
        assert_eq!(fm.line_col(0), (1, 1));
        assert_eq!(fm.line_col(3), (2, 1));
        assert_eq!(fm.line_col(5), (2, 3));
        assert_eq!(fm.line_col(7), (3, 1));
    }

    #[test]
    fn ident_boundaries_respected() {
        let occ = ident_occurrences("Instant x InstantLike y my_Instant z Instant", "Instant");
        assert_eq!(occ.len(), 2);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let src = "fn a() { fn b() { inner(); } outer(); }";
        let fm = FileMap::new("x.rs", src);
        let at = src.find("inner").expect("inner");
        assert_eq!(fm.enclosing_fn(at).expect("fn").name, "b");
        let at = src.find("outer").expect("outer");
        assert_eq!(fm.enclosing_fn(at).expect("fn").name, "a");
    }
}
