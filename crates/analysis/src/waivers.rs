//! Waiver comments: `// aide-lint: allow(lint-name, …): reason`.
//!
//! A waiver on the same line as a violation suppresses it; a waiver
//! comment standing alone on its own line suppresses violations on the
//! next code line (consecutive standalone comment lines — stacked
//! waivers or a multi-line justification — are skipped over). Waivers are counted, reported
//! by `aide-lint --waivers`, and capped in CI by `--max-waivers`, so the
//! waiver set can only shrink without an explicit baseline bump. Unused
//! waivers are reported too — a waiver that suppresses nothing is stale
//! and should be deleted.

use crate::lexer::Comment;

/// One parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Line the waiver comment itself is on (1-based).
    pub line: u32,
    /// The code line the waiver applies to.
    pub applies_to: u32,
    /// Lint names this waiver suppresses.
    pub lints: Vec<String>,
}

/// Extracts waivers from a file's comments.
pub fn parse(comments: &[Comment]) -> Vec<Waiver> {
    let mut out: Vec<Waiver> = Vec::new();
    for c in comments {
        let Some(lints) = parse_comment(&c.text) else {
            continue;
        };
        let applies_to = if c.standalone { c.line + 1 } else { c.line };
        out.push(Waiver {
            line: c.line,
            applies_to,
            lints,
        });
    }
    // A standalone waiver applies to the next *code* line: push its
    // target past any following standalone comment lines (further
    // waivers in a run, or the waiver's own explanation continuing onto
    // more comment lines).
    let standalone_lines: Vec<u32> = comments
        .iter()
        .filter(|c| c.standalone)
        .map(|c| c.line)
        .collect();
    for w in &mut out {
        while w.applies_to != w.line && standalone_lines.contains(&w.applies_to) {
            w.applies_to += 1;
        }
    }
    out
}

/// Parses one comment body; returns the waived lint names, if any.
fn parse_comment(text: &str) -> Option<Vec<String>> {
    let at = text.find("aide-lint:")?;
    let rest = text[at + "aide-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let names: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn same_line_waiver() {
        let l = lex("foo.unwrap(); // aide-lint: allow(no-panic): startup only\n");
        let w = parse(&l.comments);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].applies_to, 1);
        assert_eq!(w[0].lints, ["no-panic"]);
    }

    #[test]
    fn standalone_waiver_targets_next_line() {
        let l = lex("// aide-lint: allow(determinism, seqcst)\nlet t = now();\n");
        let w = parse(&l.comments);
        assert_eq!(w[0].line, 1);
        assert_eq!(w[0].applies_to, 2);
        assert_eq!(w[0].lints, ["determinism", "seqcst"]);
    }

    #[test]
    fn stacked_standalone_waivers_share_a_target() {
        let l = lex("// aide-lint: allow(no-panic)\n// aide-lint: allow(seqcst)\ncode();\n");
        let w = parse(&l.comments);
        assert_eq!(w[0].applies_to, 3);
        assert_eq!(w[1].applies_to, 3);
    }

    #[test]
    fn continuation_comment_lines_are_skipped() {
        let l = lex("// aide-lint: allow(seqcst): this justification\n// runs onto a second line\ncode();\n");
        let w = parse(&l.comments);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].applies_to, 3);
    }

    #[test]
    fn ordinary_comments_are_not_waivers() {
        let l = lex("// aide-lint is great\n// allow(no-panic) but no prefix\nx();\n");
        assert!(parse(&l.comments).is_empty());
    }
}
