//! Positive fixture: the caller holds a structure guard (rank 30) and
//! calls a helper whose summary says it acquires a store shard lock
//! (rank 25) — an inversion invisible to any single function.
//! Expected: `lock-order-interproc` fires at the call site.

use crate::shards::ShardedMap;

pub fn refresh(index: &std::sync::Mutex<Vec<u64>>, map: &ShardedMap, key: &str) {
    let _guard = index.lock();
    bump_shard(map, key);
}

fn bump_shard(map: &ShardedMap, key: &str) {
    let mut shard = map.lock_shard(key);
    shard.touch(key);
}
