//! Negative fixture: typed errors in library code; unwrap only inside
//! `#[cfg(test)]`. A single-char `expect` (parser-cursor style) takes
//! no message string and is not the panicking `Option::expect`.
//! Expected: no findings.

pub struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug)]
pub struct ParseError;

impl Cursor<'_> {
    pub fn expect(&mut self, want: char) -> Result<(), ParseError> {
        match self.src[self.pos..].chars().next() {
            Some(c) if c == want => {
                self.pos += c.len_utf8();
                Ok(())
            }
            _ => Err(ParseError),
        }
    }
}

pub fn first(xs: &[u32]) -> Result<u32, ParseError> {
    xs.first().copied().ok_or(ParseError)
}

pub fn open_paren(c: &mut Cursor<'_>) -> Result<(), ParseError> {
    c.expect('(')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_of_nonempty() {
        assert_eq!(first(&[7]).unwrap(), 7);
    }
}
