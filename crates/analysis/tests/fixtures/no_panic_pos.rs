//! Positive fixture: panicking constructs in library code. Expected:
//! `no-panic` fires (three times).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller promised a number")
}

pub fn limit(n: u32) -> u32 {
    if n > 100 {
        panic!("limit exceeded");
    }
    n
}
