//! Positive fixture: a plain stat counter bumped with `SeqCst`.
//! Expected: `seqcst` fires.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn record_hit() {
    HITS.fetch_add(1, Ordering::SeqCst);
}
