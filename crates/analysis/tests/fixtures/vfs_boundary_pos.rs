//! Positive fixture: library code reaching past the `Vfs` trait to the
//! real filesystem. Expected: `vfs-boundary` fires.

pub fn persist(path: &str, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body)
}
