//! Positive fixture: nested acquisitions that violate the documented
//! lock-rank table (url rank 10 must be taken before user rank 20).
//! Expected: `lock-order` fires.

use crate::locks::LockTable;

pub fn inverted(table: &LockTable, user: &str, url: &str) {
    let _user_guard = table.lock(&user_key(user));
    let _url_guard = table.lock(&url_key(url));
}

pub fn double_structure(shard: &std::sync::RwLock<Vec<u32>>) -> usize {
    let first = shard.read();
    let second = shard.read();
    first.len() + second.len()
}

fn user_key(u: &str) -> String {
    format!("user:{u}")
}

fn url_key(u: &str) -> String {
    format!("url:{u}")
}
