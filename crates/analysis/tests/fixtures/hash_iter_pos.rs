//! Positive fixture: iterating a `HashMap` straight into rendered
//! output. Expected: `hash-iter` fires.

use std::collections::HashMap;

pub fn render(counts: &HashMap<String, u32>) -> String {
    let mut out = String::new();
    for (k, v) in counts {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
