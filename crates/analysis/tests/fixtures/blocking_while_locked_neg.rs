//! Negative fixture: blocking is fine under a shared (read) guard —
//! readers stall nobody — and fine after the exclusive guard is
//! explicitly dropped. Expected: no findings.

use crate::queue::Inbox;

pub fn drain_shared(inbox: &Inbox) {
    let _snapshot = inbox.config.read();
    let _ = inbox.rx.recv();
}

pub fn drain_after_release(inbox: &Inbox) {
    let state = inbox.state.lock();
    drop(state);
    let _ = inbox.rx.recv();
}
