//! Negative fixture: stat counters use `Relaxed` (the repo convention);
//! `SeqCst` inside `#[cfg(test)]` is exempt. Expected: no findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn record_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_counts() {
        HITS.store(0, Ordering::SeqCst);
        record_hit();
        assert_eq!(HITS.load(Ordering::SeqCst), 1);
    }
}
