//! Positive fixture: ambient wall-clock and environment reads in
//! library code. Expected: `determinism` fires.

use std::time::SystemTime;

pub fn stamp() -> u64 {
    let t = SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0)
}

pub fn from_env() -> Option<String> {
    std::env::var("AIDE_SECRET_KNOB").ok()
}
