//! Negative fixture: the caller holds the url lock (rank 10) and calls
//! a helper that acquires a store shard (rank 25) — ascending rank
//! across the call, exactly the documented order. Expected: no
//! findings.

use crate::locks::LockTable;
use crate::shards::ShardedMap;

pub fn refresh(table: &LockTable, map: &ShardedMap, url: &str) {
    let _guard = table.lock(&url_key(url));
    bump_shard(map, url);
}

fn bump_shard(map: &ShardedMap, key: &str) {
    let mut shard = map.lock_shard(key);
    shard.touch(key);
}

fn url_key(u: &str) -> String {
    format!("url:{u}")
}
