//! Negative fixture: hash iteration is fine when the result is sorted
//! before rendering (or consumed order-insensitively). Expected: no
//! findings.

use std::collections::HashMap;

pub fn render_sorted(counts: &HashMap<String, u32>) -> String {
    let mut pairs: Vec<(&String, &u32)> = counts.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (k, v) in pairs {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn total(counts: &HashMap<String, u32>) -> u64 {
    counts.values().map(|v| u64::from(*v)).sum()
}
