//! Positive fixture: a public entry function reaches a panic site two
//! calls down. The site itself carries a `no-panic` waiver so this
//! fixture isolates the reachability lint: only `panic-reach` fires,
//! anchored at the site with the entry named in the message.
//! Expected: `panic-reach` fires (and the waived `no-panic` does not).

pub fn lookup(ids: &[u64], want: u64) -> u64 {
    position_of(ids, want)
}

fn position_of(ids: &[u64], want: u64) -> u64 {
    first_match(ids, want)
}

fn first_match(ids: &[u64], want: u64) -> u64 {
    // aide-lint: allow(no-panic): the reachability target this fixture
    // exists to detect; waived here so only panic-reach fires
    ids.iter().copied().find(|id| *id == want).unwrap()
}
