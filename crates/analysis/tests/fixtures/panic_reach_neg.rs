//! Negative fixture: the same shape of public entry over helper calls,
//! but every failure propagates as a typed error — no panic site is
//! reachable (or present at all). Expected: no findings.

#[derive(Debug)]
pub struct NotFound;

pub fn lookup(ids: &[u64], want: u64) -> Result<u64, NotFound> {
    position_of(ids, want)
}

fn position_of(ids: &[u64], want: u64) -> Result<u64, NotFound> {
    first_match(ids, want)
}

fn first_match(ids: &[u64], want: u64) -> Result<u64, NotFound> {
    ids.iter().copied().find(|id| *id == want).ok_or(NotFound)
}
