//! Negative fixture: file I/O routed through the `Vfs` trait, which the
//! fault-injecting implementation can interpose on. Expected: clean.

use aide_util::vfs::{Vfs, VfsError};
use std::sync::Arc;

pub fn persist(vfs: &Arc<dyn Vfs>, path: &str, body: &str) -> Result<(), VfsError> {
    vfs.append(path, body.as_bytes())?;
    vfs.sync(path)
}
