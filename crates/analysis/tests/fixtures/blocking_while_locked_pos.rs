//! Positive fixture: blocking operations reached while an exclusive
//! structure guard is held — one directly (a channel receive under the
//! state mutex), one through a call whose summary says it blocks.
//! Expected: `blocking-while-locked` fires.

use crate::queue::Inbox;

pub fn drain(inbox: &Inbox) {
    let _state = inbox.state.lock();
    let _ = inbox.rx.recv();
}

pub fn drain_via_helper(inbox: &Inbox) {
    let _state = inbox.state.lock();
    pull_one(inbox);
}

fn pull_one(inbox: &Inbox) {
    let _ = inbox.rx.recv();
}
