//! Negative fixture: nested acquisitions in documented order (url rank
//! 10, then user rank 20), and sequential — not nested — reacquisition
//! after an explicit drop. Expected: no findings.

use crate::locks::LockTable;

pub fn ordered(table: &LockTable, user: &str, url: &str) {
    let url_guard = table.lock(&url_key(url));
    let user_guard = table.lock(&user_key(user));
    drop(user_guard);
    drop(url_guard);
}

pub fn sequential(shard: &std::sync::RwLock<Vec<u32>>) -> usize {
    let first = shard.read().len();
    let second = shard.read().len();
    first + second
}

fn user_key(u: &str) -> String {
    format!("user:{u}")
}

fn url_key(u: &str) -> String {
    format!("url:{u}")
}
