//! Negative fixture: time flows in through the injected virtual clock,
//! never from the ambient environment. Expected: no findings.

use aide_util::time::Clock;

pub fn stamp(clock: &Clock) -> u64 {
    clock.now_secs()
}

/// Mentioning wall-clock types in a doc comment or a string is fine:
/// "SystemTime::now() is banned" is prose, not code.
pub fn describe() -> &'static str {
    "SystemTime::now() and std::env::var() are banned outside the allowlist"
}
