//! Fixture-driven lint tests: one positive and one negative fixture per
//! lint family. Each positive test asserts the family actually fires
//! (so deleting or breaking a lint fails the suite), each negative test
//! asserts the family stays quiet on the idiomatic counterpart, and a
//! cross-check asserts positives fall silent when their lint is the one
//! disabled — proving the finding comes from the lint under test, not a
//! neighbor.

use aide_analysis::config::Config;
use aide_analysis::lint_source;

/// Fixture sources are linted as if they lived in a normal library
/// crate: not vendored, not the clock allowlist, panic-checked.
const REL: &str = "crates/fixture/src/lib.rs";

/// Lint names that fire on `src` at path `rel` under the default
/// config.
fn fired_at(rel: &str, src: &str) -> Vec<&'static str> {
    let (active, _, _) = lint_source(rel, src, &Config::default());
    let mut lints: Vec<&'static str> = active.iter().map(|f| f.lint).collect();
    lints.sort_unstable();
    lints.dedup();
    lints
}

/// Findings on `src` with lint `except` disabled.
fn fired_without(rel: &str, src: &str, except: &str) -> Vec<&'static str> {
    let mut cfg = Config::default();
    cfg.lints.retain(|l| *l != except);
    let (active, _, _) = lint_source(rel, src, &cfg);
    active.iter().map(|f| f.lint).collect()
}

/// Asserts `pos` trips exactly `lint` (and nothing else), that
/// disabling `lint` silences it, and that `neg` is fully clean.
fn check_family(lint: &str, pos: &str, neg: &str) {
    check_family_at(REL, lint, pos, neg);
}

/// As [`check_family`], for fixtures that must live at a specific
/// path (the panic-reach entry set is path-gated).
fn check_family_at(rel: &str, lint: &str, pos: &str, neg: &str) {
    let on = fired_at(rel, pos);
    assert_eq!(on, [lint], "positive fixture for {lint} misfired");
    assert!(
        fired_without(rel, pos, lint).is_empty(),
        "{lint} positive fixture trips some other lint"
    );
    let (active, waived, _) = lint_source(rel, neg, &Config::default());
    assert!(
        active.is_empty() && waived.is_empty(),
        "negative fixture for {lint} is not clean: {active:?}"
    );
}

#[test]
fn determinism_family() {
    check_family(
        "determinism",
        include_str!("fixtures/determinism_pos.rs"),
        include_str!("fixtures/determinism_neg.rs"),
    );
}

#[test]
fn hash_iter_family() {
    check_family(
        "hash-iter",
        include_str!("fixtures/hash_iter_pos.rs"),
        include_str!("fixtures/hash_iter_neg.rs"),
    );
}

#[test]
fn lock_order_family() {
    check_family(
        "lock-order",
        include_str!("fixtures/lock_order_pos.rs"),
        include_str!("fixtures/lock_order_neg.rs"),
    );
}

#[test]
fn no_panic_family() {
    check_family(
        "no-panic",
        include_str!("fixtures/no_panic_pos.rs"),
        include_str!("fixtures/no_panic_neg.rs"),
    );
}

#[test]
fn no_panic_counts_each_site() {
    let (active, _, _) = lint_source(
        REL,
        include_str!("fixtures/no_panic_pos.rs"),
        &Config::default(),
    );
    assert_eq!(active.len(), 3, "unwrap, expect, and panic! each count");
}

#[test]
fn seqcst_family() {
    check_family(
        "seqcst",
        include_str!("fixtures/seqcst_pos.rs"),
        include_str!("fixtures/seqcst_neg.rs"),
    );
}

#[test]
fn vfs_boundary_family() {
    check_family(
        "vfs-boundary",
        include_str!("fixtures/vfs_boundary_pos.rs"),
        include_str!("fixtures/vfs_boundary_neg.rs"),
    );
}

#[test]
fn vfs_boundary_exempts_the_real_vfs_module() {
    let (active, _, _) = lint_source(
        "crates/store/src/vfs.rs",
        include_str!("fixtures/vfs_boundary_pos.rs"),
        &Config::default(),
    );
    assert!(
        active.is_empty(),
        "RealVfs's module is the sanctioned home for std::fs: {active:?}"
    );
}

#[test]
fn lock_order_knows_the_store_shard_class() {
    // A store-shard acquisition (rank 25) while a structure guard
    // (rank 30) is held inverts the table and must fire.
    let src = "pub fn bad(repo: &Repo) -> usize {\n\
               \x20   let guard = repo.table.read();\n\
               \x20   let (_held, sh) = repo.lock_shard(3);\n\
               \x20   guard.len() + sh.len()\n\
               }\n";
    let (active, _, _) = lint_source(REL, src, &Config::default());
    assert!(
        active
            .iter()
            .any(|f| f.lint == "lock-order" && f.message.contains("`store` (rank")),
        "expected a store-class inversion, got {active:?}"
    );
    // The rank-respecting order — shard mutex first, structure guard
    // after — is clean.
    let ok = "pub fn good(repo: &Repo) -> usize {\n\
              \x20   let (_held, sh) = repo.lock_shard(3);\n\
              \x20   let guard = repo.table.read();\n\
              \x20   guard.len() + sh.len()\n\
              }\n";
    let (active, _, _) = lint_source(REL, ok, &Config::default());
    assert!(active.is_empty(), "rank-ordered code misfired: {active:?}");
}

#[test]
fn lock_order_reports_both_shapes() {
    let (active, _, _) = lint_source(
        REL,
        include_str!("fixtures/lock_order_pos.rs"),
        &Config::default(),
    );
    let msgs: Vec<&str> = active.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("inversion")),
        "expected an inversion finding, got {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("self-deadlock")),
        "expected a self-deadlock finding, got {msgs:?}"
    );
}

#[test]
fn lock_order_interproc_family() {
    check_family(
        "lock-order-interproc",
        include_str!("fixtures/lock_order_interproc_pos.rs"),
        include_str!("fixtures/lock_order_interproc_neg.rs"),
    );
}

#[test]
fn blocking_while_locked_family() {
    check_family(
        "blocking-while-locked",
        include_str!("fixtures/blocking_while_locked_pos.rs"),
        include_str!("fixtures/blocking_while_locked_neg.rs"),
    );
}

#[test]
fn panic_reach_family() {
    // Path matters: only the serving-stack crates' pub fns are entry
    // points, so the fixture claims a store-crate path.
    check_family_at(
        "crates/store/src/fixture.rs",
        "panic-reach",
        include_str!("fixtures/panic_reach_pos.rs"),
        include_str!("fixtures/panic_reach_neg.rs"),
    );
}

#[test]
fn panic_reach_is_quiet_outside_the_entry_crates() {
    // The identical source under a non-entry path has no entry points,
    // so only the (waived) no-panic site remains.
    let on = fired_at(REL, include_str!("fixtures/panic_reach_pos.rs"));
    assert!(
        on.is_empty(),
        "non-entry crate grew panic-reach entries: {on:?}"
    );
}

#[test]
fn interproc_chain_crosses_crates_through_lint_sources() {
    // The full multi-file pipeline: a serve-crate caller holds a
    // structure guard and calls into a store-crate helper that takes a
    // shard lock. The finding lands in the caller's file and names the
    // callee.
    let caller = "pub fn respond(conn: &Conn, repo: &Repo) {\n\
                  \x20   let _q = conn.queue.lock();\n\
                  \x20   shard_bump(repo, 7);\n\
                  }\n";
    let callee = "pub fn shard_bump(repo: &Repo, k: u64) {\n\
                  \x20   let (_held, mut sh) = repo.lock_shard(k);\n\
                  \x20   sh.push(k);\n\
                  }\n";
    let report = aide_analysis::lint_sources(
        &[
            (
                "crates/serve/src/conn_fx.rs".to_string(),
                caller.to_string(),
            ),
            (
                "crates/store/src/shard_fx.rs".to_string(),
                callee.to_string(),
            ),
        ],
        &Config::default(),
    );
    let hit = report
        .findings
        .iter()
        .find(|f| f.lint == "lock-order-interproc")
        .unwrap_or_else(|| panic!("no cross-crate finding in {:?}", report.findings));
    assert_eq!(hit.file, "crates/serve/src/conn_fx.rs");
    assert!(
        hit.message.contains("shard_bump"),
        "chain should name the callee: {}",
        hit.message
    );
}

#[test]
fn waiver_silences_fixture() {
    let src = include_str!("fixtures/seqcst_pos.rs").replace(
        "HITS.fetch_add(1, Ordering::SeqCst);",
        "// aide-lint: allow(seqcst): fixture\n    HITS.fetch_add(1, Ordering::SeqCst);",
    );
    let (active, waived, _) = lint_source(REL, &src, &Config::default());
    assert!(active.is_empty());
    assert_eq!(waived.len(), 1);
}
