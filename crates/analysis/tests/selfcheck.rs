//! Self-run: the workspace this crate lives in must be lint-clean with
//! the committed waiver set, and that set must not drift past the
//! committed baseline or accumulate stale entries.

use aide_analysis::config::Config;
use aide_analysis::lint_workspace;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean() {
    let report =
        lint_workspace(workspace_root(), &Config::default()).expect("workspace walk succeeds");
    assert!(report.files > 50, "walked only {} files", report.files);
    assert!(
        report.findings.is_empty(),
        "aide-lint violations in the workspace:\n{}",
        report.render_text()
    );
}

#[test]
fn waivers_within_committed_baseline() {
    let report =
        lint_workspace(workspace_root(), &Config::default()).expect("workspace walk succeeds");
    let baseline: usize = std::fs::read_to_string(workspace_root().join(".aide-lint-waivers"))
        .expect(".aide-lint-waivers baseline file exists")
        .trim()
        .parse()
        .expect("baseline is a number");
    assert!(
        report.waived.len() <= baseline,
        "waiver count {} exceeds committed baseline {}; fix the new \
         violation or bump .aide-lint-waivers with justification",
        report.waived.len(),
        baseline
    );
    assert!(
        report.unused_waivers.is_empty(),
        "stale waivers should be deleted: {:?}",
        report.unused_waivers
    );
}
