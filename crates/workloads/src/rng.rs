//! A small deterministic PRNG.
//!
//! The generator itself now lives in [`aide_util::rng`] so the simulated
//! Web's fault injection and the workload drivers share one algorithm
//! and one stream shape; this module re-exports it under the historical
//! path. Seeds produce exactly the streams they always have.
//!
//! # Examples
//!
//! ```
//! use aide_workloads::rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

pub use aide_util::rng::Rng;
