//! Synthetic workloads for the AIDE experiments.
//!
//! The paper's evaluation ran against half a year of the real 1995 Web
//! (§7). This crate substitutes generative models for what webmasters
//! did to their pages, tuned so the experiments exercise the regimes the
//! paper discusses: append-mostly "What's New" pages, in-place edits,
//! full-replacement pages like the daily Dilbert strip, noisy CGI pages,
//! and the paragraph-to-list reformattings §5.1 worries about.
//!
//! - [`rng`]: a small deterministic PRNG (splitmix64-seeded xorshift),
//!   so every experiment is reproducible bit-for-bit. `rand` is
//!   deliberately not used here: its stream changes across major
//!   versions, and experiment reproducibility is the whole point.
//! - [`textgen`]: vocabulary and sentence/paragraph generation.
//! - [`page`]: a structured page model (headings, paragraphs, lists,
//!   links) that renders to period HTML and can be *edited* structurally.
//! - [`edits`]: the edit models and their application.
//! - [`evolve`]: schedules that drive page evolution on a simulated Web.
//! - [`openloop`]: deterministic open-loop (fixed arrival schedule)
//!   load generation and queue simulation for the capacity experiments.
//! - [`sites`]: prebuilt ensembles — the Table 1 scenario and bulk
//!   populations for the storage and scalability experiments.
//! - [`usenix`]: reconstructed USENIX home pages for the Figure 2
//!   reproduction.

pub mod edits;
pub mod evolve;
pub mod openloop;
pub mod page;
pub mod rng;
pub mod sites;
pub mod textgen;
pub mod usenix;

pub use edits::EditModel;
pub use evolve::EvolvingPage;
pub use page::{Block, Page};
pub use rng::Rng;
