//! Reconstructed USENIX Association home pages for the Figure 2
//! reproduction.
//!
//! Figure 2 of the paper shows "the differences between a subset of two
//! versions of the USENIX Association home page (as of 9/29/95 and
//! 11/3/95)". The original bytes are lost to history; these two pages
//! reconstruct the *kinds* of changes visible in the figure: a conference
//! announcement added, an expired deadline removed, dates edited in
//! place, and an anchor whose target (but not text) changed.

/// The USENIX home page as of 1995-09-29 (reconstruction).
pub const USENIX_1995_09_29: &str = r#"<HTML>
<HEAD><TITLE>USENIX Association</TITLE></HEAD>
<BODY>
<H1><IMG SRC="/icons/usenix-logo.gif"> USENIX Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association. Since 1975 the USENIX Association has brought
together the community of engineers, system administrators, and
technicians working on the cutting edge of the computing world.
<HR>
<H2>Conferences and Symposia</H2>
<UL>
<LI><A HREF="/events/lisa95.html">9th Systems Administration Conference (LISA '95)</A>,
September 17-22, 1995, Monterey, California.
<LI><A HREF="/events/tcl95.html">Tcl/Tk Workshop</A>, July 6-8, 1995, Toronto, Canada.
<LI><A HREF="/events/sec96.html">Sixth USENIX Security Symposium</A>,
submissions due October 10, 1995.
<LI><A HREF="/events/usenix96.html">1996 USENIX Technical Conference</A>,
January 22-26, 1996, San Diego, California.
</UL>
<H2>Publications</H2>
<P>Proceedings of past conferences are available to members.
See the <A HREF="/publications/index.html">publications index</A> for
ordering information. Computing Systems is published quarterly.
<H2>Membership</H2>
<P>Membership information and applications can be requested from the
USENIX office. Send email to office@usenix.org for details.
<HR>
<P>Last updated September 29, 1995.
</BODY>
</HTML>
"#;

/// The USENIX home page as of 1995-11-03 (reconstruction).
pub const USENIX_1995_11_03: &str = r#"<HTML>
<HEAD><TITLE>USENIX Association</TITLE></HEAD>
<BODY>
<H1><IMG SRC="/icons/usenix-logo.gif"> USENIX Association</H1>
<P>USENIX is the UNIX and Advanced Computing Systems professional and
technical association. Since 1975 the USENIX Association has brought
together the community of engineers, system administrators, and
technicians working on the cutting edge of the computing world.
<HR>
<H2>Conferences and Symposia</H2>
<UL>
<LI><A HREF="/events/usenix96.html">1996 USENIX Technical Conference</A>,
January 22-26, 1996, San Diego, California. Advance registration is now open!
<LI><A HREF="/events/sec96-program.html">Sixth USENIX Security Symposium</A>,
July 22-25, 1996, San Jose, California.
<LI><A HREF="/events/coots96.html">Conference on Object-Oriented Technologies (COOTS)</A>,
June 17-21, 1996, Toronto, Canada. Submissions due December 1, 1995.
<LI><A HREF="/events/lisa95.html">9th Systems Administration Conference (LISA '95)</A>,
September 17-22, 1995, Monterey, California.
</UL>
<H2>Publications</H2>
<P>Proceedings of past conferences are available to members.
See the <A HREF="/publications/catalog.html">publications index</A> for
ordering information. Computing Systems is published quarterly.
<H2>Membership</H2>
<P>Membership information and applications can be requested from the
USENIX office. Send email to office@usenix.org for details.
<HR>
<P>Last updated November 3, 1995.
</BODY>
</HTML>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use aide_htmldiff::{html_diff, Options};

    #[test]
    fn versions_differ() {
        assert_ne!(USENIX_1995_09_29, USENIX_1995_11_03);
    }

    #[test]
    fn figure2_diff_shape() {
        let r = html_diff(USENIX_1995_09_29, USENIX_1995_11_03, &Options::default());
        // New material (COOTS announcement, registration note) appears.
        assert!(r.stats.new_only_sentences > 0, "{:?}", r.stats);
        // Old material (Tcl/Tk workshop, expired deadline) was removed.
        assert!(r.stats.old_only_sentences > 0, "{:?}", r.stats);
        // Much of the page is common (the intro, membership blurb).
        assert!(r.stats.common_tokens > 10, "{:?}", r.stats);
        assert!(r.stats.changed_fraction < 0.8, "{:?}", r.stats);
        // The merged page carries the Figure 2 furniture.
        assert!(r.html.contains("<STRIKE>"));
        assert!(r.html.contains("<STRONG><I>"));
        assert!(r.html.contains("difftop"));
    }

    #[test]
    fn changed_anchor_target_detected() {
        // publications/index.html -> publications/catalog.html with the
        // same anchor text: the sentence matches approximately.
        let r = html_diff(USENIX_1995_09_29, USENIX_1995_11_03, &Options::default());
        assert!(r.stats.changed_pairs > 0, "{:?}", r.stats);
        assert!(r.html.contains("catalog.html"));
        assert!(
            !r.html.contains("publications/index.html"),
            "old href elided"
        );
    }

    #[test]
    fn deleted_workshop_struck_out() {
        let r = html_diff(USENIX_1995_09_29, USENIX_1995_11_03, &Options::default());
        assert!(r.html.contains("Tcl/Tk"), "deleted item text visible");
        let struck = r.html.split("<STRIKE>").skip(1).any(|seg| {
            seg.split("</STRIKE>")
                .next()
                .is_some_and(|s| s.contains("Tcl/Tk"))
        });
        assert!(struck, "Tcl/Tk workshop should be struck out: {}", r.html);
    }
}
