//! Edit models: what webmasters did to pages in 1995.
//!
//! Each model produces the change pattern one of the paper's scenarios
//! needs:
//!
//! - [`EditModel::AppendNews`] — "typically content is added to the end
//!   of a page" (the WikiWikiWeb observation, §1); cheap for RCS, easy
//!   for HtmlDiff.
//! - [`EditModel::InPlaceEdit`] — "content can be modified anywhere on
//!   the page, and those changes may be too subtle to notice" — the case
//!   AIDE exists for.
//! - [`EditModel::DeleteBlock`] — "the really major change might be the
//!   item that was deleted" (§1).
//! - [`EditModel::Reformat`] — the §5.1 paragraph-to-list example:
//!   format changes with no content change.
//! - [`EditModel::FullReplace`] — "the entire contents of the page
//!   changes (such as the 'What's New in Mosaic' page)" (§8.2), the case
//!   that defeats both delta storage and differencing.
//! - [`EditModel::LinkChurn`] — Virtual Library pages where "a number of
//!   links \[are\] added at a time" (§2.1).

use crate::page::{Block, Page};
use crate::rng::Rng;
use crate::textgen::{natural_sentence, title};

/// A page-evolution model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditModel {
    /// Append a dated news item to the end.
    AppendNews,
    /// Rewrite `sentences` sentences somewhere in the page.
    InPlaceEdit {
        /// How many sentences change per edit.
        sentences: usize,
    },
    /// Delete one block.
    DeleteBlock,
    /// Convert one paragraph to a list (or back) without content change.
    Reformat,
    /// Regenerate the whole page at the same size.
    FullReplace,
    /// Add `added` links and remove up to `removed`.
    LinkChurn {
        /// Links added per edit.
        added: usize,
        /// Links removed per edit (at most).
        removed: usize,
    },
}

impl EditModel {
    /// Applies one edit step to `page`.
    pub fn apply(self, page: &mut Page, rng: &mut Rng, step: u64) {
        match self {
            EditModel::AppendNews => {
                page.blocks.push(Block::Para(vec![
                    format!("Update {step}:"),
                    natural_sentence(rng),
                    natural_sentence(rng),
                ]));
            }
            EditModel::InPlaceEdit { sentences } => {
                for _ in 0..sentences.max(1) {
                    let paras = page.para_indices();
                    if paras.is_empty() {
                        page.blocks.push(Block::Para(vec![natural_sentence(rng)]));
                        continue;
                    }
                    let pi = *rng.pick(&paras);
                    if let Block::Para(s) = &mut page.blocks[pi] {
                        let si = rng.index(s.len().max(1));
                        if si < s.len() {
                            s[si] = natural_sentence(rng);
                        } else {
                            s.push(natural_sentence(rng));
                        }
                    }
                }
            }
            EditModel::DeleteBlock => {
                if page.blocks.len() > 1 {
                    let i = rng.index(page.blocks.len());
                    page.blocks.remove(i);
                }
            }
            EditModel::Reformat => {
                // Find a paragraph to listify, or a list to paragraph-ify.
                let candidates: Vec<usize> = page
                    .blocks
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| matches!(b, Block::Para(_) | Block::List(_)))
                    .map(|(i, _)| i)
                    .collect();
                if candidates.is_empty() {
                    return;
                }
                let i = *rng.pick(&candidates);
                page.blocks[i] = match &page.blocks[i] {
                    Block::Para(s) => Block::List(s.clone()),
                    Block::List(items) => Block::Para(items.clone()),
                    // Candidates are filtered to paras and lists above.
                    other => other.clone(),
                };
            }
            EditModel::FullReplace => {
                let size = page.byte_size();
                *page = Page::generate(rng, size.saturating_sub(200).max(300));
            }
            EditModel::LinkChurn { added, removed } => {
                for _ in 0..removed {
                    let links: Vec<usize> = page
                        .blocks
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| matches!(b, Block::Link { .. }))
                        .map(|(i, _)| i)
                        .collect();
                    if links.is_empty() {
                        break;
                    }
                    let i = *rng.pick(&links);
                    page.blocks.remove(i);
                }
                for k in 0..added {
                    page.blocks.push(Block::Link {
                        href: format!(
                            "http://www.site{}.org/new{}-{}.html",
                            rng.below(99),
                            step,
                            k
                        ),
                        text: title(rng),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_htmldiff::{html_diff, Options};

    fn base_page(seed: u64) -> Page {
        Page::generate(&mut Rng::new(seed), 3000)
    }

    #[test]
    fn append_grows_page() {
        let mut p = base_page(1);
        let before = p.blocks.len();
        EditModel::AppendNews.apply(&mut p, &mut Rng::new(2), 1);
        assert_eq!(p.blocks.len(), before + 1);
    }

    #[test]
    fn append_is_pure_insertion_for_htmldiff() {
        let mut p = base_page(2);
        let old = p.render();
        EditModel::AppendNews.apply(&mut p, &mut Rng::new(3), 1);
        let r = html_diff(&old, &p.render(), &Options::default());
        assert!(r.stats.old_only_sentences == 0, "{:?}", r.stats);
        assert!(r.stats.new_only_sentences > 0);
        assert_eq!(r.stats.changed_pairs, 0);
    }

    #[test]
    fn inplace_edit_changes_content() {
        let mut p = base_page(3);
        let old = p.render();
        EditModel::InPlaceEdit { sentences: 2 }.apply(&mut p, &mut Rng::new(4), 1);
        let r = html_diff(&old, &p.render(), &Options::default());
        assert!(r.stats.content_changed(), "{:?}", r.stats);
        // A two-sentence edit must not look like a rewrite.
        assert!(r.stats.changed_fraction < 0.5, "{:?}", r.stats);
    }

    #[test]
    fn delete_block_shrinks() {
        let mut p = base_page(4);
        let before = p.blocks.len();
        EditModel::DeleteBlock.apply(&mut p, &mut Rng::new(5), 1);
        assert_eq!(p.blocks.len(), before - 1);
    }

    #[test]
    fn reformat_preserves_content() {
        let mut p = base_page(5);
        let old = p.render();
        EditModel::Reformat.apply(&mut p, &mut Rng::new(6), 1);
        let new = p.render();
        assert_ne!(old, new, "formatting should differ");
        let r = html_diff(&old, &new, &Options::default());
        assert!(!r.stats.content_changed(), "format-only: {:?}", r.stats);
    }

    #[test]
    fn full_replace_rewrites_everything() {
        let mut p = base_page(6);
        let old = p.render();
        let old_size = p.byte_size();
        EditModel::FullReplace.apply(&mut p, &mut Rng::new(7), 1);
        let r = html_diff(&old, &p.render(), &Options::default());
        assert!(r.stats.changed_fraction > 0.6, "{:?}", r.stats);
        // Size stays in the same regime.
        assert!(p.byte_size() > old_size / 3);
    }

    #[test]
    fn link_churn_adds_links() {
        let mut p = base_page(7);
        let count_links = |p: &Page| {
            p.blocks
                .iter()
                .filter(|b| matches!(b, Block::Link { .. }))
                .count()
        };
        let before = count_links(&p);
        EditModel::LinkChurn {
            added: 5,
            removed: 1,
        }
        .apply(&mut p, &mut Rng::new(8), 1);
        let after = count_links(&p);
        assert!(after >= before + 4, "{before} -> {after}");
    }

    #[test]
    fn edits_deterministic() {
        let mut a = base_page(9);
        let mut b = base_page(9);
        EditModel::InPlaceEdit { sentences: 3 }.apply(&mut a, &mut Rng::new(10), 1);
        EditModel::InPlaceEdit { sentences: 3 }.apply(&mut b, &mut Rng::new(10), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn edits_on_tiny_pages_do_not_panic() {
        let mut p = Page {
            title: "t".to_string(),
            blocks: vec![],
        };
        let mut rng = Rng::new(11);
        for model in [
            EditModel::AppendNews,
            EditModel::InPlaceEdit { sentences: 1 },
            EditModel::DeleteBlock,
            EditModel::Reformat,
            EditModel::LinkChurn {
                added: 1,
                removed: 1,
            },
        ] {
            model.apply(&mut p, &mut rng, 0);
        }
    }
}
