//! Evolution schedules: driving page changes on the simulated Web.
//!
//! An [`EvolvingPage`] owns a structured page, an edit model and a change
//! period; [`EvolvingPage::tick`] applies due edits and republishes the
//! page with a fresh `Last-Modified`. Experiments advance the virtual
//! clock and tick their page population, replaying months of Web history
//! in milliseconds.

use crate::edits::EditModel;
use crate::page::Page;
use crate::rng::Rng;
use aide_simweb::net::Web;
use aide_util::time::{Duration, Timestamp};

/// A page that changes on a schedule.
#[derive(Debug, Clone)]
pub struct EvolvingPage {
    /// The page's URL.
    pub url: String,
    /// Current structured content.
    pub page: Page,
    /// How it changes.
    pub model: EditModel,
    /// Mean time between changes.
    pub period: Duration,
    /// Jitter fraction (0.0 = strictly periodic, 0.5 = ±50%).
    pub jitter: f64,
    rng: Rng,
    next_change: Timestamp,
    step: u64,
}

impl EvolvingPage {
    /// Creates an evolving page and publishes its initial version at
    /// `now`.
    pub fn publish(
        url: &str,
        page: Page,
        model: EditModel,
        period: Duration,
        jitter: f64,
        mut rng: Rng,
        web: &Web,
    ) -> EvolvingPage {
        let now = web.clock().now();
        // aide-lint: allow(no-panic): scenario URLs are statically
        // known-valid; a bad one is a workload-definition bug
        web.set_page(url, &page.render(), now).expect("valid URL");
        let mut ep = EvolvingPage {
            url: url.to_string(),
            page,
            model,
            period,
            jitter,
            next_change: now,
            step: 0,
            rng: rng.fork(0xE701),
        };
        ep.schedule_from(now);
        ep
    }

    fn schedule_from(&mut self, now: Timestamp) {
        let base = self.period.as_secs().max(1);
        let jitter_span = (base as f64 * self.jitter) as u64;
        let offset = if jitter_span > 0 {
            self.rng.range(0, 2 * jitter_span) as i64 - jitter_span as i64
        } else {
            0
        };
        let delay = (base as i64 + offset).max(1) as u64;
        self.next_change = now + Duration::seconds(delay);
    }

    /// When the next change is due.
    pub fn next_change(&self) -> Timestamp {
        self.next_change
    }

    /// Number of edits applied so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies all edits due by `now`, republishing after each. Returns
    /// the number of changes applied.
    pub fn tick(&mut self, web: &Web) -> usize {
        let now = web.clock().now();
        let mut changes = 0;
        while self.next_change <= now {
            self.step += 1;
            self.model.apply(&mut self.page, &mut self.rng, self.step);
            web.touch_page(&self.url, &self.page.render(), self.next_change)
                // aide-lint: allow(no-panic): the URL was validated when
                // the page was first installed
                .expect("valid URL");
            let due = self.next_change;
            self.schedule_from(due);
            changes += 1;
            // Guard against zero-period livelock.
            if changes > 10_000 {
                break;
            }
        }
        changes
    }
}

/// Ticks a whole population; returns total changes applied.
pub fn tick_all(pages: &mut [EvolvingPage], web: &Web) -> usize {
    pages.iter_mut().map(|p| p.tick(web)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::http::Request;
    use aide_util::time::Clock;

    fn setup() -> Web {
        Web::new(Clock::starting_at(Timestamp::from_ymd_hms(
            1995, 9, 1, 0, 0, 0,
        )))
    }

    fn page(seed: u64) -> Page {
        Page::generate(&mut Rng::new(seed), 1500)
    }

    #[test]
    fn publish_makes_page_fetchable() {
        let web = setup();
        let ep = EvolvingPage::publish(
            "http://h/p.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(1),
            0.0,
            Rng::new(2),
            &web,
        );
        let r = web.request(&Request::get("http://h/p.html")).unwrap();
        assert_eq!(r.body, ep.page.render());
    }

    #[test]
    fn tick_before_due_does_nothing() {
        let web = setup();
        let mut ep = EvolvingPage::publish(
            "http://h/p.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(2),
            0.0,
            Rng::new(2),
            &web,
        );
        web.clock().advance(Duration::hours(10));
        assert_eq!(ep.tick(&web), 0);
    }

    #[test]
    fn tick_applies_due_changes() {
        let web = setup();
        let mut ep = EvolvingPage::publish(
            "http://h/p.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(1),
            0.0,
            Rng::new(2),
            &web,
        );
        let before = web.request(&Request::get("http://h/p.html")).unwrap();
        web.clock().advance(Duration::days(3));
        let n = ep.tick(&web);
        assert_eq!(n, 3, "three daily changes in three days");
        let after = web.request(&Request::get("http://h/p.html")).unwrap();
        assert_ne!(before.body, after.body);
        assert!(after.last_modified.unwrap() > before.last_modified.unwrap());
    }

    #[test]
    fn last_modified_tracks_change_time_not_tick_time() {
        let web = setup();
        let mut ep = EvolvingPage::publish(
            "http://h/p.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(1),
            0.0,
            Rng::new(2),
            &web,
        );
        let start = web.clock().now();
        web.clock().advance(Duration::days(10));
        ep.tick(&web);
        let r = web.request(&Request::head("http://h/p.html")).unwrap();
        // The final change happened on day 10, not "now" per se — but
        // crucially not at the original publish date.
        assert!(r.last_modified.unwrap() > start);
        assert!(r.last_modified.unwrap() <= web.clock().now());
    }

    #[test]
    fn jitter_varies_schedule_deterministically() {
        let web = setup();
        let a = EvolvingPage::publish(
            "http://h/a.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(1),
            0.5,
            Rng::new(3),
            &web,
        );
        let b = EvolvingPage::publish(
            "http://h/b.html",
            page(1),
            EditModel::AppendNews,
            Duration::days(1),
            0.5,
            Rng::new(4),
            &web,
        );
        assert_ne!(
            a.next_change(),
            b.next_change(),
            "different seeds, different phase"
        );
    }

    #[test]
    fn tick_all_sums() {
        let web = setup();
        let mut pages = vec![
            EvolvingPage::publish(
                "http://h/1",
                page(1),
                EditModel::AppendNews,
                Duration::days(1),
                0.0,
                Rng::new(5),
                &web,
            ),
            EvolvingPage::publish(
                "http://h/2",
                page(2),
                EditModel::AppendNews,
                Duration::days(2),
                0.0,
                Rng::new(6),
                &web,
            ),
        ];
        web.clock().advance(Duration::days(2));
        let n = tick_all(&mut pages, &web);
        assert_eq!(n, 3, "2 changes for daily + 1 for every-2-days");
    }
}
