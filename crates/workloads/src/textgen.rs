//! Vocabulary and sentence generation.
//!
//! A fixed 1995-flavoured vocabulary (systems, networking, conference
//! announcements) sampled with a Zipf skew, so generated pages share
//! common words the way real prose does — which matters for the sentence
//! matcher: two unrelated generated sentences should usually fail the
//! `2W/L` test, while an edited sentence should pass it.

use crate::rng::Rng;

/// The generation vocabulary (order matters: earlier = more frequent).
pub const VOCABULARY: &[&str] = &[
    "the",
    "of",
    "and",
    "to",
    "a",
    "in",
    "for",
    "is",
    "on",
    "that",
    "with",
    "are",
    "as",
    "be",
    "this",
    "will",
    "can",
    "page",
    "web",
    "server",
    "system",
    "file",
    "user",
    "time",
    "new",
    "information",
    "version",
    "access",
    "network",
    "data",
    "service",
    "pages",
    "users",
    "html",
    "documents",
    "changes",
    "conference",
    "technical",
    "paper",
    "research",
    "internet",
    "browser",
    "protocol",
    "cache",
    "proxy",
    "archive",
    "release",
    "software",
    "available",
    "update",
    "mosaic",
    "netscape",
    "hypertext",
    "links",
    "session",
    "workshop",
    "tutorial",
    "program",
    "registration",
    "proceedings",
    "association",
    "members",
    "systems",
    "administration",
    "security",
    "distributed",
    "computing",
    "performance",
    "storage",
    "unix",
    "laboratory",
    "announcement",
    "schedule",
    "abstracts",
    "submissions",
    "deadline",
    "committee",
    "keynote",
    "symposium",
    "track",
    "presentation",
    "authors",
    "papers",
    "notes",
    "volume",
    "mailing",
    "list",
    "gopher",
    "ftp",
    "telnet",
    "directory",
    "index",
    "home",
    "site",
    "resources",
];

/// Generates one word.
pub fn word(rng: &mut Rng) -> &'static str {
    VOCABULARY[rng.zipf(VOCABULARY.len())]
}

/// Generates a sentence of `words` words, capitalized, ending with a
/// period (occasionally `!` for variety).
pub fn sentence(rng: &mut Rng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words.max(1) {
        if i > 0 {
            out.push(' ');
        }
        let w = word(rng);
        if i == 0 {
            let mut chars = w.chars();
            if let Some(first) = chars.next() {
                out.push(first.to_ascii_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push_str(w);
        }
    }
    out.push(if rng.chance(0.08) { '!' } else { '.' });
    out
}

/// Generates a sentence with natural length variation (5–18 words).
pub fn natural_sentence(rng: &mut Rng) -> String {
    let n = rng.range(5, 18) as usize;
    sentence(rng, n)
}

/// Generates a short title (2–5 words, capitalized).
pub fn title(rng: &mut Rng) -> String {
    let n = rng.range(2, 5) as usize;
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        let w = word(rng);
        let mut chars = w.chars();
        if let Some(first) = chars.next() {
            out.push(first.to_ascii_uppercase());
            out.push_str(chars.as_str());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_shape() {
        let mut rng = Rng::new(1);
        let s = sentence(&mut rng, 8);
        assert!(s.ends_with('.') || s.ends_with('!'));
        assert_eq!(s.split_whitespace().count(), 8);
        assert!(s.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn deterministic_generation() {
        let a = sentence(&mut Rng::new(5), 10);
        let b = sentence(&mut Rng::new(5), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_word_sentence_still_valid() {
        let s = sentence(&mut Rng::new(2), 0);
        assert!(!s.trim_end_matches(['.', '!']).is_empty());
    }

    #[test]
    fn titles_are_short() {
        let mut rng = Rng::new(3);
        for _ in 0..20 {
            let t = title(&mut rng);
            let n = t.split_whitespace().count();
            assert!((2..=5).contains(&n));
        }
    }

    #[test]
    fn vocabulary_reuse_is_common() {
        // Two sentences should usually share at least one word, thanks to
        // the Zipf head — the property the sentence matcher relies on.
        let mut rng = Rng::new(4);
        let mut sharing = 0;
        for _ in 0..50 {
            let a = natural_sentence(&mut rng);
            let b = natural_sentence(&mut rng);
            let a_words: Vec<&str> = a.split_whitespace().collect();
            if b.split_whitespace().any(|w| a_words.contains(&w)) {
                sharing += 1;
            }
        }
        assert!(sharing > 25, "sharing {sharing}/50");
    }
}
