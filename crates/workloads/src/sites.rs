//! Prebuilt site ensembles for the experiments.
//!
//! - [`table1_scenario`]: the seven-URL world of Table 1 — Yahoo, att.com
//!   pages, the NCSA "What's New in Mosaic" page, the Washington mobile
//!   computing page, the daily Dilbert strip, and a local file.
//! - [`population`]: bulk page populations with the §7 storage shape —
//!   hundreds of mostly-quiet URLs plus a few large high-churn files
//!   ("Three files account for 2.7 Mbytes of that total, and each file is
//!   a URL that changes every 1–3 days").

use crate::edits::EditModel;
use crate::evolve::EvolvingPage;
use crate::page::Page;
use crate::rng::Rng;
use aide_simweb::browser::Bookmark;
use aide_simweb::net::Web;
use aide_simweb::resource::Resource;
use aide_util::time::Duration;

/// The Table 1 world: pages, their evolution, and the user's hotlist.
pub struct Table1Scenario {
    /// The hotlist, in Table 1 order.
    pub hotlist: Vec<Bookmark>,
    /// The evolving pages (tick these as the clock advances).
    pub pages: Vec<EvolvingPage>,
}

/// Builds the Table 1 scenario on `web`.
pub fn table1_scenario(web: &Web, seed: u64) -> Table1Scenario {
    let mut rng = Rng::new(seed);
    let mut pages = Vec::new();
    let mut hotlist = Vec::new();

    // Yahoo: a big hub page, links added every couple of days. The user
    // polls it only weekly ("the user doesn't expect to revisit Yahoo
    // pages daily even if they change").
    let yahoo = "http://www.yahoo.com/";
    pages.push(EvolvingPage::publish(
        yahoo,
        Page::generate(&mut rng.fork(1), 12_000),
        EditModel::LinkChurn {
            added: 6,
            removed: 1,
        },
        Duration::days(2),
        0.3,
        rng.fork(2),
        web,
    ));
    hotlist.push(Bookmark {
        title: "Yahoo".to_string(),
        url: yahoo.to_string(),
    });

    // Two att.com pages: checked every run (threshold 0), modest edits.
    for (i, path) in [
        "http://www.research.att.com/orgs/ssr/",
        "http://www.att.com/news.html",
    ]
    .iter()
    .enumerate()
    {
        pages.push(EvolvingPage::publish(
            path,
            Page::generate(&mut rng.fork(10 + i as u64), 5_000),
            EditModel::InPlaceEdit { sentences: 2 },
            Duration::days(4),
            0.4,
            rng.fork(20 + i as u64),
            web,
        ));
        hotlist.push(Bookmark {
            title: format!("AT&T page {}", i + 1),
            url: path.to_string(),
        });
    }

    // The NCSA What's New page: append-mostly, changes twice a day.
    let ncsa = "http://www.ncsa.uiuc.edu/SDG/Software/Mosaic/Docs/whats-new.html";
    pages.push(EvolvingPage::publish(
        ncsa,
        Page::generate(&mut rng.fork(30), 20_000),
        EditModel::AppendNews,
        Duration::hours(10),
        0.3,
        rng.fork(31),
        web,
    ));
    hotlist.push(Bookmark {
        title: "What's New in Mosaic".to_string(),
        url: ncsa.to_string(),
    });

    // The mobile-computing page: weekly edits.
    let mobile = "http://snapple.cs.washington.edu:600/mobile/";
    pages.push(EvolvingPage::publish(
        mobile,
        Page::generate(&mut rng.fork(40), 8_000),
        EditModel::InPlaceEdit { sentences: 3 },
        Duration::days(7),
        0.4,
        rng.fork(41),
        web,
    ));
    hotlist.push(Bookmark {
        title: "Mobile Computing".to_string(),
        url: mobile.to_string(),
    });

    // Dilbert: full replacement every day — "will always be different".
    let dilbert = "http://www.unitedmedia.com/comics/dilbert/";
    pages.push(EvolvingPage::publish(
        dilbert,
        Page::generate(&mut rng.fork(50), 3_000),
        EditModel::FullReplace,
        Duration::days(1),
        0.0,
        rng.fork(51),
        web,
    ));
    hotlist.push(Bookmark {
        title: "Dilbert".to_string(),
        url: dilbert.to_string(),
    });

    // A local file, stat'ed for free on every run.
    let local = "file:/home/user/projects.html";
    web.write_local_file(
        "/home/user/projects.html",
        &Page::generate(&mut rng.fork(60), 2_000).render(),
        web.clock().now(),
    );
    hotlist.push(Bookmark {
        title: "My projects".to_string(),
        url: local.to_string(),
    });

    // A CGI page on one of the hosts, for checksum-path coverage.
    web.set_resource(
        "http://www.research.att.com/cgi-bin/whois?user=fred",
        Resource::Cgi {
            template: "<HTML><P>Fred Douglis, AT&T Bell Laboratories</HTML>".to_string(),
            hits: 0,
        },
    )
    // aide-lint: allow(no-panic): scenario URLs are statically
    // known-valid; a bad one is a workload-definition bug
    .expect("valid URL");

    Table1Scenario { hotlist, pages }
}

/// Parameters for a bulk population.
#[derive(Debug, Clone, Copy)]
pub struct PopulationConfig {
    /// How many URLs.
    pub urls: usize,
    /// Number of distinct hosts to spread them over.
    pub hosts: usize,
    /// Typical page size in bytes (sizes vary around this).
    pub typical_bytes: usize,
    /// Number of big, fast-churning pages (the §7 "three files").
    pub churners: usize,
    /// Size of each churner in bytes.
    pub churner_bytes: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            urls: 500,
            hosts: 50,
            typical_bytes: 6_000,
            churners: 3,
            churner_bytes: 60_000,
        }
    }
}

/// Builds a bulk page population with the §7 shape and publishes it.
pub fn population(web: &Web, seed: u64, cfg: &PopulationConfig) -> Vec<EvolvingPage> {
    let mut rng = Rng::new(seed);
    let mut pages = Vec::with_capacity(cfg.urls);
    for i in 0..cfg.urls {
        let host = format!("www.host{:03}.com", i % cfg.hosts.max(1));
        let url = format!("http://{host}/page{i:04}.html");
        let is_churner = i < cfg.churners;
        let (size, model, period, jitter) = if is_churner {
            // "Each file is a URL that changes every 1–3 days and is
            // being automatically archived upon each change."
            (
                cfg.churner_bytes,
                EditModel::FullReplace,
                Duration::days(2),
                0.5,
            )
        } else {
            // A mix of quiet and mildly active pages.
            let size = (cfg.typical_bytes / 4) + rng.index(cfg.typical_bytes * 3 / 2);
            let model = match rng.below(10) {
                0..=3 => EditModel::AppendNews,
                4..=6 => EditModel::InPlaceEdit { sentences: 2 },
                7 => EditModel::LinkChurn {
                    added: 3,
                    removed: 1,
                },
                8 => EditModel::Reformat,
                _ => EditModel::DeleteBlock,
            };
            // Change periods: a week to a couple of months, skewed long.
            let days = 7 + rng.zipf(60) as u64;
            (size, model, Duration::days(days), 0.5)
        };
        let page = Page::generate(&mut rng.fork(1000 + i as u64), size);
        pages.push(EvolvingPage::publish(
            &url,
            page,
            model,
            period,
            jitter,
            rng.fork(5000 + i as u64),
            web,
        ));
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_simweb::http::Request;
    use aide_util::time::{Clock, Timestamp};

    fn web() -> Web {
        Web::new(Clock::starting_at(Timestamp::from_ymd_hms(
            1995, 9, 1, 0, 0, 0,
        )))
    }

    #[test]
    fn table1_scenario_serves_all_hotlist_urls() {
        let web = web();
        let scenario = table1_scenario(&web, 42);
        assert_eq!(scenario.hotlist.len(), 7);
        for mark in &scenario.hotlist {
            let r = web.request(&Request::head(&mark.url)).unwrap();
            assert!(r.status.is_success(), "{}: {:?}", mark.url, r.status);
        }
    }

    #[test]
    fn table1_pages_evolve() {
        let web = web();
        let mut scenario = table1_scenario(&web, 42);
        web.clock().advance(Duration::days(7));
        let changes = crate::evolve::tick_all(&mut scenario.pages, &web);
        // Dilbert alone changes 7 times in a week; NCSA ~16 times.
        assert!(changes > 15, "changes {changes}");
    }

    #[test]
    fn population_publishes_requested_count() {
        let web = web();
        let cfg = PopulationConfig {
            urls: 40,
            hosts: 5,
            ..PopulationConfig::default()
        };
        let pages = population(&web, 7, &cfg);
        assert_eq!(pages.len(), 40);
        assert_eq!(web.urls().len(), 40);
    }

    #[test]
    fn population_churners_are_big_and_fast() {
        let web = web();
        let cfg = PopulationConfig {
            urls: 30,
            hosts: 3,
            churners: 3,
            ..PopulationConfig::default()
        };
        let pages = population(&web, 8, &cfg);
        for p in pages.iter().take(3) {
            assert!(p.page.byte_size() >= cfg.churner_bytes, "churner too small");
            assert!(p.period <= Duration::days(2));
        }
        let typical: usize = pages[3..].iter().map(|p| p.page.byte_size()).sum::<usize>() / 27;
        assert!(typical < cfg.churner_bytes / 3, "typical {typical}");
    }

    #[test]
    fn population_is_deterministic() {
        let w1 = web();
        let w2 = web();
        let cfg = PopulationConfig {
            urls: 10,
            hosts: 2,
            ..PopulationConfig::default()
        };
        let a = population(&w1, 9, &cfg);
        let b = population(&w2, 9, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.page, y.page);
            assert_eq!(x.url, y.url);
        }
    }
}
