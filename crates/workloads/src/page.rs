//! A structured page model that renders to 1995-flavoured HTML.
//!
//! Edits operate on this structure (insert a news item, rewrite a
//! sentence, turn a paragraph into a list) and the page re-renders, which
//! keeps the generated HTML well-formed while producing exactly the edit
//! patterns the differencing experiments need.

use crate::rng::Rng;
use crate::textgen::{natural_sentence, title};

/// One block-level element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// `<H2>` heading.
    Heading(String),
    /// `<P>` paragraph of sentences.
    Para(Vec<String>),
    /// `<UL>` of items.
    List(Vec<String>),
    /// `<HR>`.
    Rule,
    /// An anchor line: `<P><A HREF=url>text</A>`.
    Link {
        /// Target URL.
        href: String,
        /// Anchor text.
        text: String,
    },
    /// An inline image on its own line.
    Image {
        /// Image URL.
        src: String,
    },
}

/// A structured page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// `<TITLE>` text.
    pub title: String,
    /// Body blocks.
    pub blocks: Vec<Block>,
}

impl Page {
    /// Renders to HTML.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("<HTML>\n<HEAD><TITLE>");
        out.push_str(&self.title);
        out.push_str("</TITLE></HEAD>\n<BODY>\n<H1>");
        out.push_str(&self.title);
        out.push_str("</H1>\n");
        for b in &self.blocks {
            match b {
                Block::Heading(h) => out.push_str(&format!("<H2>{h}</H2>\n")),
                Block::Para(sentences) => {
                    out.push_str("<P>");
                    out.push_str(&sentences.join(" "));
                    out.push('\n');
                }
                Block::List(items) => {
                    out.push_str("<UL>\n");
                    for item in items {
                        out.push_str(&format!("<LI>{item}\n"));
                    }
                    out.push_str("</UL>\n");
                }
                Block::Rule => out.push_str("<HR>\n"),
                Block::Link { href, text } => {
                    out.push_str(&format!("<P><A HREF=\"{href}\">{text}</A>\n"));
                }
                Block::Image { src } => out.push_str(&format!("<P><IMG SRC=\"{src}\">\n")),
            }
        }
        out.push_str("</BODY>\n</HTML>\n");
        out
    }

    /// Approximate rendered size in bytes.
    pub fn byte_size(&self) -> usize {
        self.render().len()
    }

    /// Generates a page with roughly `target_bytes` of content.
    pub fn generate(rng: &mut Rng, target_bytes: usize) -> Page {
        let mut page = Page {
            title: title(rng),
            blocks: Vec::new(),
        };
        while page.byte_size() < target_bytes {
            match rng.below(10) {
                0 => page.blocks.push(Block::Heading(title(rng))),
                1 => {
                    let items = (0..rng.range(2, 6))
                        .map(|_| natural_sentence(rng))
                        .collect();
                    page.blocks.push(Block::List(items));
                }
                2 => page.blocks.push(Block::Rule),
                3 => page.blocks.push(Block::Link {
                    href: format!(
                        "http://www.site{}.com/page{}.html",
                        rng.below(40),
                        rng.below(200)
                    ),
                    text: title(rng),
                }),
                4 => page.blocks.push(Block::Image {
                    src: format!("/icons/pic{}.gif", rng.below(30)),
                }),
                _ => {
                    let sentences = (0..rng.range(2, 6))
                        .map(|_| natural_sentence(rng))
                        .collect();
                    page.blocks.push(Block::Para(sentences));
                }
            }
        }
        page
    }

    /// Indices of paragraph blocks.
    pub fn para_indices(&self) -> Vec<usize> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, Block::Para(_)))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_wellformed_html() {
        let mut rng = Rng::new(1);
        let p = Page::generate(&mut rng, 2000);
        let html = p.render();
        assert!(html.starts_with("<HTML>"));
        assert!(html.contains("<TITLE>"));
        assert!(html.ends_with("</HTML>\n"));
        assert_eq!(html.matches("<UL>").count(), html.matches("</UL>").count());
    }

    #[test]
    fn generate_hits_target_size() {
        let mut rng = Rng::new(2);
        for target in [500usize, 5_000, 20_000] {
            let p = Page::generate(&mut rng, target);
            let size = p.byte_size();
            assert!(size >= target, "size {size} under target {target}");
            assert!(
                size < target + 2_000,
                "size {size} far over target {target}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Page::generate(&mut Rng::new(7), 3000);
        let b = Page::generate(&mut Rng::new(7), 3000);
        assert_eq!(a, b);
    }

    #[test]
    fn render_parses_with_htmlkit() {
        let mut rng = Rng::new(3);
        let p = Page::generate(&mut rng, 4000);
        let tokens = aide_htmlkit::lexer::lex(&p.render());
        assert!(tokens.len() > 10);
        // Round-trips through the lexer+serializer.
        let round = aide_htmlkit::lexer::serialize(&tokens);
        let again = aide_htmlkit::lexer::serialize(&aide_htmlkit::lexer::lex(&round));
        assert_eq!(round, again);
    }

    #[test]
    fn para_indices_finds_paragraphs() {
        let p = Page {
            title: "T".to_string(),
            blocks: vec![
                Block::Heading("h".to_string()),
                Block::Para(vec!["One.".to_string()]),
                Block::Rule,
                Block::Para(vec!["Two.".to_string()]),
            ],
        };
        assert_eq!(p.para_indices(), vec![1, 3]);
    }
}
