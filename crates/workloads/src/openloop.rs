//! Deterministic open-loop load generation (SiteStory-style).
//!
//! An *open-loop* load generator issues requests on a fixed arrival
//! schedule regardless of how fast the server answers — the
//! ApacheBench/SiteStory methodology (Brunelle & Nelson, PAPERS.md) —
//! so when the offered rate exceeds capacity, queueing delay grows
//! without bound instead of the generator politely slowing down. That
//! makes the knee of the latency-vs-rate curve *the* capacity number.
//!
//! Everything here is virtual-time: arrivals are sampled from a seeded
//! [`Rng`] (Poisson, exponential inter-arrival gaps), service times are
//! supplied by the caller in deterministic work units, and the queue is
//! simulated analytically. Two runs with the same seed and the same
//! service-time model produce byte-identical results — no wall clock
//! anywhere — which is what lets ci.sh double-run the capacity
//! experiment and `cmp` the outputs.
//!
//! The module is deliberately engine-agnostic: it produces a schedule
//! ([`schedule`]) and turns per-request service times into per-request
//! latencies ([`simulate_queue`]). Driving real engine paths (poll /
//! check-in / diff) and costing them belongs to the capacity experiment
//! binary in `aide-bench`, which owns the service-time model.

use crate::rng::Rng;

/// What a simulated client asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Fetch the current stored head of a page (the tracker's poll /
    /// "view" path).
    Poll,
    /// Check in a (possibly changed) page body (`remember`).
    CheckIn,
    /// Render the changes since the user's last-seen revision
    /// (`diff_since_last` — check-in plus HtmlDiff plus cache).
    Diff,
}

/// Relative frequencies of the three request kinds.
#[derive(Debug, Clone, Copy)]
pub struct RequestMix {
    /// Weight of [`RequestKind::Poll`].
    pub poll: u32,
    /// Weight of [`RequestKind::CheckIn`].
    pub checkin: u32,
    /// Weight of [`RequestKind::Diff`].
    pub diff: u32,
}

impl Default for RequestMix {
    /// The tracking steady state: mostly polls, a fair number of
    /// check-ins (changed pages being remembered), diffs when a user
    /// actually looks.
    fn default() -> Self {
        RequestMix {
            poll: 6,
            checkin: 3,
            diff: 1,
        }
    }
}

/// One scheduled request.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Arrival time in virtual microseconds from the start of the run.
    pub at_us: u64,
    /// Which engine path the request exercises.
    pub kind: RequestKind,
    /// Index of the target page in the experiment's URL population.
    pub url: usize,
    /// Index of the requesting user.
    pub user: usize,
}

/// Configuration for one open-loop run at one offered rate.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Seed for the arrival process (gaps, kinds, targets).
    pub seed: u64,
    /// Number of requests to schedule.
    pub requests: usize,
    /// Offered rate in requests per virtual second.
    pub rate_per_sec: u64,
    /// Size of the URL population; targets are Zipf-distributed over it
    /// (a few hot pages, a long tail — the §7 access pattern).
    pub urls: usize,
    /// Number of distinct users issuing requests (uniform).
    pub users: usize,
    /// Request-kind mix.
    pub mix: RequestMix,
}

/// Builds the deterministic arrival schedule for `cfg`.
///
/// Inter-arrival gaps are exponential with mean `1e6 / rate_per_sec`
/// microseconds (a Poisson arrival process — the standard open-loop
/// model), quantized to whole microseconds. Kinds are drawn from the
/// mix, URLs from a Zipf over the population, users uniformly; all four
/// streams come from one seeded [`Rng`], so the schedule is a pure
/// function of `cfg`.
///
/// # Examples
///
/// ```
/// use aide_workloads::openloop::{schedule, OpenLoopConfig, RequestMix};
///
/// let cfg = OpenLoopConfig {
///     seed: 7,
///     requests: 100,
///     rate_per_sec: 50,
///     urls: 10,
///     users: 4,
///     mix: RequestMix::default(),
/// };
/// let a = schedule(&cfg);
/// let b = schedule(&cfg);
/// assert_eq!(a.len(), 100);
/// assert!(a.iter().zip(&b).all(|(x, y)| x.at_us == y.at_us));
/// ```
pub fn schedule(cfg: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(cfg.rate_per_sec > 0, "offered rate must be positive");
    assert!(cfg.urls > 0 && cfg.users > 0, "need at least one target");
    let total = cfg.mix.poll + cfg.mix.checkin + cfg.mix.diff;
    assert!(total > 0, "request mix must have positive total weight");
    let mut rng = Rng::new(cfg.seed);
    let mean_gap_us = 1_000_000.0 / cfg.rate_per_sec as f64;
    let mut now_us = 0u64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        // Exponential gap via inverse transform; clamp the uniform away
        // from 1.0 so ln never sees zero.
        let u = rng.f64().min(0.999_999_999);
        let gap = (-(1.0 - u).ln() * mean_gap_us).round() as u64;
        now_us += gap;
        let pick = rng.below(u64::from(total)) as u32;
        let kind = if pick < cfg.mix.poll {
            RequestKind::Poll
        } else if pick < cfg.mix.poll + cfg.mix.checkin {
            RequestKind::CheckIn
        } else {
            RequestKind::Diff
        };
        out.push(Arrival {
            at_us: now_us,
            kind,
            url: rng.zipf(cfg.urls),
            user: rng.index(cfg.users),
        });
    }
    out
}

/// What a simulated HTTP client asks the serving layer for.
///
/// The serving-layer mix is distinct from the tracker mix
/// ([`RequestKind`]): these are read-side page requests against
/// `aide-serve`, not engine mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// `GET /report?user=…` — the §5 what's-new report (uncacheable).
    Report,
    /// `GET /history?url=…&user=…` — the per-URL revision table.
    History,
    /// `GET /diff?url=…&from=…&to=…` — a rendered HtmlDiff page.
    DiffPage,
    /// `GET /timegate/<url>` with `Accept-Datetime` — Memento
    /// negotiation plus the redirected memento fetch.
    TimeGate,
}

/// Relative frequencies of the four serving-layer request kinds.
#[derive(Debug, Clone, Copy)]
pub struct ServeMix {
    /// Weight of [`ServeKind::Report`].
    pub report: u32,
    /// Weight of [`ServeKind::History`].
    pub history: u32,
    /// Weight of [`ServeKind::DiffPage`].
    pub diff_page: u32,
    /// Weight of [`ServeKind::TimeGate`].
    pub timegate: u32,
}

impl Default for ServeMix {
    /// Browsing steady state: histories and diff pages dominate, the
    /// report is consulted occasionally, time-travel is the long tail.
    fn default() -> Self {
        ServeMix {
            report: 2,
            history: 4,
            diff_page: 3,
            timegate: 1,
        }
    }
}

/// One scheduled serving-layer request.
#[derive(Debug, Clone, Copy)]
pub struct ServeArrival {
    /// Arrival time in virtual microseconds from the start of the run.
    pub at_us: u64,
    /// Which route the request hits.
    pub kind: ServeKind,
    /// Index of the target page in the experiment's URL population
    /// (Zipf: the same few hot pages keep being re-requested, which is
    /// exactly what a conditional-GET client turns into 304s).
    pub url: usize,
    /// Index of the requesting user.
    pub user: usize,
}

/// Builds the deterministic arrival schedule for a serving-layer run.
///
/// Same arrival process and draw order as [`schedule`] (exponential gap,
/// kind, Zipf URL, uniform user — one seeded [`Rng`]) so the two
/// generators share calibration; only the kind alphabet differs. The
/// schedule is a pure function of `(cfg, mix)`.
///
/// # Examples
///
/// ```
/// use aide_workloads::openloop::{serve_schedule, OpenLoopConfig, RequestMix, ServeMix};
///
/// let cfg = OpenLoopConfig {
///     seed: 7,
///     requests: 100,
///     rate_per_sec: 50,
///     urls: 10,
///     users: 4,
///     mix: RequestMix::default(), // unused by serve_schedule
/// };
/// let a = serve_schedule(&cfg, ServeMix::default());
/// let b = serve_schedule(&cfg, ServeMix::default());
/// assert_eq!(a.len(), 100);
/// assert!(a.iter().zip(&b).all(|(x, y)| x.at_us == y.at_us && x.kind == y.kind));
/// ```
pub fn serve_schedule(cfg: &OpenLoopConfig, mix: ServeMix) -> Vec<ServeArrival> {
    assert!(cfg.rate_per_sec > 0, "offered rate must be positive");
    assert!(cfg.urls > 0 && cfg.users > 0, "need at least one target");
    let total = mix.report + mix.history + mix.diff_page + mix.timegate;
    assert!(total > 0, "serve mix must have positive total weight");
    let mut rng = Rng::new(cfg.seed);
    let mean_gap_us = 1_000_000.0 / cfg.rate_per_sec as f64;
    let mut now_us = 0u64;
    let mut out = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let u = rng.f64().min(0.999_999_999);
        let gap = (-(1.0 - u).ln() * mean_gap_us).round() as u64;
        now_us += gap;
        let pick = rng.below(u64::from(total)) as u32;
        let kind = if pick < mix.report {
            ServeKind::Report
        } else if pick < mix.report + mix.history {
            ServeKind::History
        } else if pick < mix.report + mix.history + mix.diff_page {
            ServeKind::DiffPage
        } else {
            ServeKind::TimeGate
        };
        out.push(ServeArrival {
            at_us: now_us,
            kind,
            url: rng.zipf(cfg.urls),
            user: rng.index(cfg.users),
        });
    }
    out
}

/// Simulates a FIFO queue with `servers` identical workers over an
/// open-loop arrival schedule, returning each request's latency
/// (queueing delay + service time) in microseconds.
///
/// `arrival_us[i]` must be non-decreasing; `service_us[i]` is request
/// `i`'s service time. A request begins service at the later of its
/// arrival and the earliest server-free time; with the open loop,
/// arrivals never wait to be *issued*, so past saturation the queue —
/// and the reported latency — grows without bound. Pure integer
/// arithmetic: byte-identical across runs and platforms.
///
/// # Examples
///
/// ```
/// use aide_workloads::openloop::simulate_queue;
///
/// // Two requests, 100µs service, arriving together on one server:
/// // the second waits for the first.
/// let lat = simulate_queue(&[0, 0], &[100, 100], 1);
/// assert_eq!(lat, vec![100, 200]);
/// ```
pub fn simulate_queue(arrival_us: &[u64], service_us: &[u64], servers: usize) -> Vec<u64> {
    assert_eq!(arrival_us.len(), service_us.len());
    assert!(servers > 0, "need at least one server");
    assert!(
        arrival_us.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be sorted"
    );
    // Earliest-free-server selection; ties broken by server index so
    // the simulation is deterministic.
    let mut free_at = vec![0u64; servers];
    let mut out = Vec::with_capacity(arrival_us.len());
    for (&at, &svc) in arrival_us.iter().zip(service_us) {
        let slot = free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .map_or(0, |(i, _)| i);
        let start = at.max(free_at[slot]);
        let finish = start + svc;
        free_at[slot] = finish;
        out.push(finish - at);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: u64) -> OpenLoopConfig {
        OpenLoopConfig {
            seed: 42,
            requests: 2_000,
            rate_per_sec: rate,
            urls: 20,
            users: 8,
            mix: RequestMix::default(),
        }
    }

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let a = schedule(&cfg(100));
        let b = schedule(&cfg(100));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_us, y.at_us);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.url, y.url);
            assert_eq!(x.user, y.user);
        }
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn schedule_rate_matches_offered_rate() {
        let a = schedule(&cfg(100));
        let span_s = a.last().unwrap().at_us as f64 / 1e6;
        let rate = a.len() as f64 / span_s;
        // Poisson with n = 2000: the empirical rate is within a few
        // percent of the offered one.
        assert!((rate - 100.0).abs() < 10.0, "empirical rate {rate}");
    }

    #[test]
    fn mix_respects_weights() {
        let a = schedule(&cfg(100));
        let polls = a.iter().filter(|r| r.kind == RequestKind::Poll).count() as f64;
        let frac = polls / a.len() as f64;
        assert!((frac - 0.6).abs() < 0.1, "poll fraction {frac}");
    }

    #[test]
    fn serve_schedule_is_deterministic_and_matches_timing() {
        let a = serve_schedule(&cfg(100), ServeMix::default());
        let b = serve_schedule(&cfg(100), ServeMix::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_us, y.at_us);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.url, y.url);
            assert_eq!(x.user, y.user);
        }
        // Same seed, same draw order: the serve schedule's arrival
        // instants and targets coincide with the tracker schedule's —
        // only the kind alphabet differs.
        let t = schedule(&cfg(100));
        for (s, t) in a.iter().zip(&t) {
            assert_eq!(s.at_us, t.at_us);
            assert_eq!(s.url, t.url);
            assert_eq!(s.user, t.user);
        }
    }

    #[test]
    fn serve_mix_respects_weights() {
        let a = serve_schedule(&cfg(100), ServeMix::default());
        let hist = a.iter().filter(|r| r.kind == ServeKind::History).count() as f64;
        let frac = hist / a.len() as f64;
        assert!((frac - 0.4).abs() < 0.1, "history fraction {frac}");
    }

    #[test]
    fn queue_is_empty_below_capacity_and_grows_past_it() {
        // 1000 requests at 10µs spacing. 5µs service: no queueing, every
        // latency equals the service time. 20µs service (2× capacity):
        // the open loop piles up and the last latency dwarfs the first.
        let arrivals: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        let light = simulate_queue(&arrivals, &vec![5; 1000], 1);
        assert!(light.iter().all(|&l| l == 5));
        let heavy = simulate_queue(&arrivals, &vec![20; 1000], 1);
        assert!(heavy.last().unwrap() > &(heavy[0] * 100));
    }

    #[test]
    fn extra_servers_absorb_load() {
        let arrivals: Vec<u64> = (0..1000u64).map(|i| i * 10).collect();
        let two = simulate_queue(&arrivals, &vec![20; 1000], 2);
        assert!(two.iter().all(|&l| l == 20));
    }
}
