//! Crash-recovery suite: kill the store at **every** durability point.
//!
//! A fixed workload runs over [`FaultVfs`]; an honest pass counts the
//! durability ops (appends, truncates, removes, fsyncs) it performs —
//! WAL commits, checkpoints, compactions, all of it. Then, for every
//! op index `i`, the workload reruns on a fresh filesystem scripted to
//! die at op `i` (once plainly, once with the dying append torn), the
//! "machine" power-cycles via `crash_and_revive`, the store reopens,
//! and the recovered observables must equal the model state after
//! applying either all acknowledged operations or at most one more —
//! the op whose WAL frame became durable before its trigger work died.
//! That is the prefix-consistency invariant of DESIGN.md §4i: no torn
//! record ever surfaces, no acknowledged write is ever lost, no removed
//! key is ever resurrected.
//!
//! Two companion properties run the softer fault models: short reads
//! must be invisible (read loops), and a lying disk (`fsync_loss`) may
//! lose writes but recovery must still produce an internally consistent
//! store that serves every indexed key.
//!
//! Setting `AIDE_STORE_DUMP=<path>` writes one line per kill point
//! (matched model index + state hash); ci.sh runs the suite twice and
//! `cmp`s the dumps to pin recovery determinism.

use aide_rcs::archive::Archive;
use aide_rcs::format::emit;
use aide_rcs::repo::Repository;
use aide_store::{DiskRepository, StoreOptions, STORE_SHARDS};
use aide_util::checksum::fnv1a64;
use aide_util::time::Timestamp;
use aide_util::vfs::{FaultScript, FaultVfs, Vfs};
use std::collections::BTreeMap;
use std::sync::Arc;

const SEED: u64 = 0xA1DE_570E;

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        checkpoint_wal_bytes: 500,
        compact_min_dead_bytes: 250,
        max_segments: 2,
        cache_entries: 2,
    }
}

/// One step of the fixed workload.
#[derive(Debug, Clone, Copy)]
enum WorkOp {
    Store(u8, u8),
    Remove(u8),
    Checkpoint,
    CompactAll,
}

/// The deterministic workload: enough stores to force checkpoints at
/// the tiny thresholds, overwrites to create dead segment bytes,
/// removes (including of segment-resident keys) to exercise tombstones,
/// and explicit maintenance so kill points land inside checkpoint and
/// compaction too.
fn workload() -> Vec<WorkOp> {
    use WorkOp::*;
    vec![
        Store(0, 1),
        Store(1, 2),
        Store(2, 3),
        Store(3, 4),
        Checkpoint,
        Store(0, 5), // overwrite a segment-resident key
        Store(4, 6),
        Remove(1), // tombstone for a segment-resident key
        Store(5, 7),
        Store(2, 8),
        Checkpoint,
        CompactAll,
        Store(6, 9),
        Remove(0),
        Store(1, 10), // re-store a removed key
        Store(7, 11),
        Checkpoint,
        Store(3, 12),
        Remove(5),
        CompactAll,
        Store(0, 13),
    ]
}

fn key_for(k: u8) -> String {
    format!("http://site{}/doc/{}", k % 2, k)
}

fn archive_for(k: u8, seed: u8) -> Archive {
    let mut a = Archive::create(
        "tracked page",
        &format!("doc {k}\nversion seed {seed}\npadding so frames have some size\n"),
        "w3newer",
        "initial",
        Timestamp(500 + seed as u64),
    );
    if seed.is_multiple_of(2) {
        a.checkin(
            &format!("doc {k}\nversion seed {seed}\nedited body\n"),
            "w3newer",
            "update",
            Timestamp(900 + seed as u64),
        )
        .unwrap();
    }
    a
}

/// Model states: `snap[i]` is the key→`,v` map after the first `i` ops.
fn model_snapshots(ops: &[WorkOp]) -> Vec<BTreeMap<String, String>> {
    let mut snaps = vec![BTreeMap::new()];
    let mut cur: BTreeMap<String, String> = BTreeMap::new();
    for op in ops {
        match *op {
            WorkOp::Store(k, seed) => {
                cur.insert(key_for(k), emit(&archive_for(k, seed)));
            }
            WorkOp::Remove(k) => {
                cur.remove(&key_for(k));
            }
            WorkOp::Checkpoint | WorkOp::CompactAll => {}
        }
        snaps.push(cur.clone());
    }
    snaps
}

/// Applies the workload until the first error, returning how many ops
/// were fully acknowledged.
fn run_until_failure(repo: &DiskRepository, ops: &[WorkOp]) -> usize {
    for (i, op) in ops.iter().enumerate() {
        let result = match *op {
            WorkOp::Store(k, seed) => repo.store(&key_for(k), &archive_for(k, seed)).map(|_| ()),
            WorkOp::Remove(k) => repo.remove(&key_for(k)).map(|_| ()),
            WorkOp::Checkpoint => repo.checkpoint(),
            WorkOp::CompactAll => (0..STORE_SHARDS).try_for_each(|si| repo.compact_shard(si)),
        };
        if result.is_err() {
            return i;
        }
    }
    ops.len()
}

/// Reads the full observable state of a (recovered) repository and
/// checks its internal consistency: counters must match a recomputation
/// from the loaded archives.
fn recovered_state(repo: &DiskRepository) -> BTreeMap<String, String> {
    let keys = repo.keys().unwrap();
    let mut map = BTreeMap::new();
    for k in &keys {
        let a = repo
            .load(k)
            .unwrap()
            .expect("recovered index entry must load");
        map.insert(k.clone(), emit(&a));
    }
    let stats = repo.stats().unwrap();
    assert_eq!(stats.archives, map.len(), "archive count vs index");
    let bytes: usize = map.values().map(|t| t.len()).sum();
    assert_eq!(stats.bytes, bytes, "running byte counter vs emitted text");
    let sizes = repo.sizes().unwrap();
    assert_eq!(sizes.len(), map.len());
    for (k, sz) in &sizes {
        assert_eq!(*sz, map[k].len(), "size entry for {k}");
    }
    map
}

fn state_hash(map: &BTreeMap<String, String>) -> u64 {
    let mut blob = Vec::new();
    for (k, v) in map {
        blob.extend_from_slice(k.as_bytes());
        blob.push(0);
        blob.extend_from_slice(v.as_bytes());
        blob.push(0);
    }
    fnv1a64(&blob)
}

/// Counts the durability ops the full workload performs when nothing
/// fails — the kill-point enumeration space.
fn count_durability_ops() -> u64 {
    let vfs = FaultVfs::shared(FaultScript::honest(SEED));
    let repo = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
    let ops = workload();
    assert_eq!(
        run_until_failure(&repo, &ops),
        ops.len(),
        "honest run must succeed"
    );
    vfs.durability_ops()
}

#[test]
fn recovery_is_prefix_consistent_at_every_kill_point() {
    let ops = workload();
    let snaps = model_snapshots(&ops);
    let total = count_durability_ops();
    assert!(
        total > 40,
        "workload too small to be interesting: {total} ops"
    );

    let mut dump = String::new();
    for torn in [false, true] {
        for kill in 0..total {
            let script = if torn {
                FaultScript::honest(SEED).crash_after(kill).torn()
            } else {
                FaultScript::honest(SEED).crash_after(kill)
            };
            let vfs = FaultVfs::shared(script);
            let acked = {
                let repo =
                    DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
                run_until_failure(&repo, &ops)
            };
            assert!(acked < ops.len(), "kill point {kill} never fired");

            vfs.crash_and_revive();
            let repo =
                DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
            let state = recovered_state(&repo);

            // Prefix consistency: every acknowledged op survived, and at
            // most the single in-flight op may additionally have become
            // durable before its maintenance work died.
            let matched = if state == snaps[acked] {
                acked
            } else if state == snaps[acked + 1] {
                acked + 1
            } else {
                panic!(
                    "kill={kill} torn={torn}: recovered state matches neither \
                     model[{acked}] nor model[{}]\nrecovered: {:?}\nexpected: {:?}",
                    acked + 1,
                    state.keys().collect::<Vec<_>>(),
                    snaps[acked].keys().collect::<Vec<_>>(),
                );
            };
            dump.push_str(&format!(
                "kill={kill} torn={torn} acked={acked} matched={matched} hash={:016x}\n",
                state_hash(&state)
            ));
        }
    }

    if let Ok(path) = std::env::var("AIDE_STORE_DUMP") {
        if !path.is_empty() {
            std::fs::write(&path, &dump).expect("write AIDE_STORE_DUMP");
        }
    }
}

#[test]
fn short_reads_are_invisible_to_loads() {
    let vfs = FaultVfs::shared(FaultScript::honest(SEED ^ 1).short_reads(0.45));
    let repo = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
    let ops = workload();
    assert_eq!(run_until_failure(&repo, &ops), ops.len());
    let snaps = model_snapshots(&ops);
    let state = recovered_state(&repo);
    assert_eq!(&state, snaps.last().unwrap(), "short reads changed results");
    assert!(
        vfs.stats().short_reads > 0,
        "the script never actually injected a short read"
    );
}

#[test]
fn lying_fsync_still_recovers_to_a_consistent_store() {
    let vfs = FaultVfs::shared(FaultScript::honest(SEED ^ 2).fsync_loss(0.5));
    let ops = workload();
    {
        let repo = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
        assert_eq!(run_until_failure(&repo, &ops), ops.len());
    }
    assert!(vfs.stats().lost_syncs > 0, "no sync was ever lost");
    vfs.crash_and_revive();
    // A disk that acknowledges fsyncs it did not perform CAN lose
    // acknowledged writes — no storage engine can prevent that. What
    // recovery must still guarantee: the store opens, every indexed key
    // loads, and the counters agree with the data (recovered_state
    // asserts all of this internally).
    let repo = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "st", tiny_opts()).unwrap();
    let _ = recovered_state(&repo);
}
