//! Backend equivalence: `DiskRepository` must be observationally
//! identical to `MemRepository`.
//!
//! The property: apply one random operation sequence — stores,
//! removes, explicit checkpoints and compactions — to both backends
//! (the disk one over `MemVfs` with thresholds shrunk so checkpoints
//! and compactions actually fire mid-sequence), then compare every
//! observable the `Repository` trait exposes: `keys`, `stats`, `sizes`,
//! and the emitted `,v` text of every loaded archive. Afterwards,
//! reopen the disk backend from its files alone (recovery path) and
//! require the same observables again.

use aide_rcs::archive::Archive;
use aide_rcs::format::emit;
use aide_rcs::repo::{MemRepository, Repository};
use aide_store::{DiskRepository, StoreOptions, STORE_SHARDS};
use aide_util::time::Timestamp;
use aide_util::vfs::{MemVfs, Vfs};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn tiny_opts() -> StoreOptions {
    StoreOptions {
        checkpoint_wal_bytes: 600,
        compact_min_dead_bytes: 300,
        max_segments: 2,
        cache_entries: 3,
    }
}

fn key_for(k: u8) -> String {
    format!("http://host{}/page/{}", k % 3, k)
}

/// A deterministic archive whose shape varies with `seed`: one to three
/// revisions, content a function of `(k, seed)`.
fn archive_for(k: u8, seed: u8) -> Archive {
    let mut a = Archive::create(
        "tracked page",
        &format!("page {k}\nseed {seed}\nbody line one\n"),
        "tracker",
        "initial fetch",
        Timestamp(1_000 + seed as u64),
    );
    for r in 0..(seed % 3) {
        a.checkin(
            &format!("page {k}\nseed {seed}\nrevision {r}\nbody line one\n"),
            "tracker",
            "changed",
            Timestamp(2_000 + seed as u64 * 10 + r as u64),
        )
        .unwrap();
    }
    a
}

/// The full observable fingerprint of a repository: sorted keys, stats
/// debug text, sizes, and each key's emitted `,v` text.
type Fingerprint = (
    Vec<String>,
    String,
    Vec<(String, usize)>,
    BTreeMap<String, String>,
);

fn observe(repo: &dyn Repository) -> Fingerprint {
    let keys = repo.keys().unwrap();
    let stats = format!("{:?}", repo.stats().unwrap());
    let sizes = repo.sizes().unwrap();
    let mut texts = BTreeMap::new();
    for k in &keys {
        let a = repo.load(k).unwrap().expect("indexed key must load");
        texts.insert(k.clone(), emit(&a));
    }
    (keys, stats, sizes, texts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn disk_and_mem_backends_are_observationally_identical(
        ops in proptest::collection::vec((0u8..6, 0u8..8, 0u8..16), 1..40)
    ) {
        let vfs = MemVfs::shared();
        let disk = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "repo", tiny_opts()).unwrap();
        let mem = MemRepository::new();

        for (kind, k, seed) in ops {
            match kind {
                // Weight stores heaviest: they drive checkpoints.
                0..=2 => {
                    let a = archive_for(k, seed);
                    disk.store(&key_for(k), &a).unwrap();
                    mem.store(&key_for(k), &a).unwrap();
                }
                3 => {
                    let d = disk.remove(&key_for(k)).unwrap();
                    let m = mem.remove(&key_for(k)).unwrap();
                    prop_assert_eq!(d, m, "remove acknowledgements diverged");
                }
                4 => disk.checkpoint().unwrap(),
                _ => {
                    disk.compact_shard(seed as usize % STORE_SHARDS).unwrap();
                }
            }
        }

        prop_assert_eq!(observe(&disk), observe(&mem), "live observables diverged");

        // Recovery equivalence: everything must survive a reopen from
        // the files alone.
        drop(disk);
        let reopened =
            DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "repo", tiny_opts()).unwrap();
        prop_assert_eq!(observe(&reopened), observe(&mem), "recovered observables diverged");
    }
}
