//! The crash-safe on-disk [`Repository`]: WAL + immutable segments.
//!
//! # Layout
//!
//! ```text
//! <root>/wal                 the write-ahead log (all shards)
//! <root>/shard_00/seg_00000001
//! <root>/shard_00/seg_00000002   append-once, then immutable
//! ...
//! <root>/shard_15/seg_00000007
//! ```
//!
//! Keys hash into [`STORE_SHARDS`] shards (FNV-1a, the same function
//! `MemRepository` buckets with). Each shard owns an in-memory index —
//! key → (file, offset, length, emit bytes, revisions) — guarded by one
//! mutex registered as the `store` lock class (rank 25): callers hold
//! the per-URL named lock (rank 10) across read-modify-write, the store
//! lock nests inside it, and the VFS's own structure guards (rank 30)
//! nest inside that.
//!
//! # Write path
//!
//! A mutation is one checksummed frame (see [`frame`])
//! committed to the WAL with group commit (see [`Wal`]) *before* the
//! index is updated. Once the WAL crosses a size threshold, a
//! *checkpoint* relocates every WAL-resident record into a fresh
//! per-shard segment file (fsynced), then truncates the log. Segments
//! are immutable once written; superseded records make a segment
//! partially dead, and *compaction* rewrites a shard's live records into
//! one new segment and deletes the old ones — **oldest-first**, which is
//! what makes tombstones safe: a tombstone always lives in a
//! higher-numbered segment (or the WAL) than the record it masks, so no
//! crash point can delete a tombstone while leaving the masked record.
//!
//! # Recovery invariant
//!
//! On open, segments replay in ascending id order, then the WAL; within
//! a file, later frames win. Every file may carry a torn tail (a crash
//! mid-append); recovery truncates each file at the first undecodable
//! frame. Because frames are appended in operation order and fsynced
//! before the operation is acknowledged, the recovered state is always
//! a *prefix* of acknowledged history: every acknowledged store/remove
//! either fully survives or (if the crash landed inside its commit,
//! unacknowledged) fully disappears — never a half-applied record.
//!
//! # Serving
//!
//! `load` reads one frame by exact location, re-verifies its checksum,
//! parses the `,v` text, and keeps a small per-shard archive cache.
//! Stats are O(shards) running counters, byte-identical to
//! `MemRepository`'s accounting: both count `emit(&archive).len()`.

use crate::frame::{self, Frame};
use crate::wal::Wal;
use aide_rcs::archive::Archive;
use aide_rcs::format::{emit, parse};
use aide_rcs::repo::{RepoError, Repository, StorageStats};
use aide_util::checksum::fnv1a64;
use aide_util::sync::{lockrank, Condvar, Mutex, MutexGuard};
use aide_util::vfs::{read_exact, Vfs, VfsError};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Number of storage shards (directories). Kept modest: each shard costs
/// a directory and an open segment chain.
pub const STORE_SHARDS: usize = 16;

/// Tuning knobs for [`DiskRepository`]. `Default` suits production-sized
/// archives; tests shrink the thresholds to exercise checkpoints and
/// compaction with small data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Checkpoint (relocate WAL records to segments, truncate the log)
    /// once the WAL exceeds this many bytes.
    pub checkpoint_wal_bytes: u64,
    /// Compact a shard once its dead segment bytes exceed this *and*
    /// make up at least half the shard's segment bytes.
    pub compact_min_dead_bytes: u64,
    /// Compact a shard regardless of dead ratio once it has more than
    /// this many segment files.
    pub max_segments: usize,
    /// Parsed-archive cache entries per shard (0 disables caching).
    pub cache_entries: usize,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            checkpoint_wal_bytes: 1 << 20,
            compact_min_dead_bytes: 256 << 10,
            max_segments: 8,
            cache_entries: 64,
        }
    }
}

/// Where a key's newest record currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// In the WAL (not yet checkpointed).
    Wal,
    /// In segment file `seg_<id>` of the key's shard.
    Seg(u32),
}

/// One live key's index entry.
#[derive(Debug, Clone)]
struct Entry {
    loc: Loc,
    /// Byte offset of the frame inside its file.
    off: u64,
    /// Total frame length in bytes.
    len: u32,
    /// Length of the archive's `,v` serialization — the accounted size,
    /// identical to `MemRepository`'s `emit().len()`.
    emit_len: u32,
    /// Revision count, recorded in the frame header so recovery can
    /// account stats without parsing archive bodies.
    revisions: u32,
    /// True if some segment still holds an older record for this key
    /// while the newest lives in the WAL — a remove must then write a
    /// tombstone at the next checkpoint.
    prior_seg: bool,
}

struct CacheSlot {
    tick: u64,
    archive: Arc<Archive>,
}

#[derive(Default)]
struct Shard {
    index: BTreeMap<String, Entry>,
    /// Running totals over live entries (O(shards) stats).
    bytes: u64,
    revisions: u64,
    /// Segment id → file length.
    seg_lens: BTreeMap<u32, u64>,
    /// Sum of frame lengths of live entries located in segments; the
    /// difference against `seg_lens` totals is the dead-byte count that
    /// triggers compaction.
    live_seg_bytes: u64,
    next_seg: u32,
    /// Keys removed since the last checkpoint whose records still exist
    /// in some segment: the next checkpoint must write tombstones.
    wal_tombstones: BTreeSet<String>,
    cache: BTreeMap<String, CacheSlot>,
    cache_tick: u64,
    /// Bumped whenever entry locations move (checkpoint, compaction) so
    /// lock-free readers can detect staleness and retry.
    version: u64,
}

struct MaintState {
    pending: bool,
    attached: bool,
    shutdown: bool,
}

/// The on-disk repository. See the module docs for the design.
pub struct DiskRepository {
    vfs: Arc<dyn Vfs>,
    root: String,
    opts: StoreOptions,
    wal: Wal,
    shards: Vec<Mutex<Shard>>,
    maint: Mutex<MaintState>,
    maint_cv: Condvar,
}

fn join_path(root: &str, name: &str) -> String {
    if root.is_empty() {
        name.to_string()
    } else {
        format!("{root}/{name}")
    }
}

fn shard_of(key: &str) -> usize {
    fnv1a64(key.as_bytes()) as usize % STORE_SHARDS
}

/// What a single record-read attempt reported.
enum ReadFail {
    Vfs(VfsError),
    Corrupt(String),
}

impl DiskRepository {
    /// Opens (creating or recovering) a repository under `root` inside
    /// `vfs`. Recovery replays segments then the WAL, truncating torn
    /// tails, and rebuilds every shard's index and running counters.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        root: &str,
        opts: StoreOptions,
    ) -> Result<DiskRepository, RepoError> {
        vfs.create_dir_all(root)?;
        let mut shards: Vec<Shard> = (0..STORE_SHARDS).map(|_| Shard::default()).collect();
        let mut frames_replayed = 0u64;
        let mut torn_frames = 0u64;
        let mut truncated_bytes = 0u64;

        // Pass 1: segments, ascending id per shard.
        for (si, shard) in shards.iter_mut().enumerate() {
            let dir = join_path(root, &format!("shard_{si:02}"));
            vfs.create_dir_all(&dir)?;
            let mut seg_ids: Vec<u32> = Vec::new();
            for name in vfs.list(&dir)? {
                if let Some(id) = name
                    .strip_prefix("seg_")
                    .and_then(|s| s.parse::<u32>().ok())
                {
                    seg_ids.push(id);
                }
            }
            seg_ids.sort_unstable();
            shard.next_seg = seg_ids.last().map(|&m| m + 1).unwrap_or(1);
            for id in seg_ids {
                let path = join_path(&dir, &format!("seg_{id:08}"));
                let buf = vfs.read(&path)?;
                let (frames, clean_len, err) = frame::scan(&buf);
                if err.is_some() && clean_len < buf.len() {
                    torn_frames += 1;
                    truncated_bytes += (buf.len() - clean_len) as u64;
                    vfs.truncate(&path, clean_len as u64)?;
                    vfs.sync(&path)?;
                }
                frames_replayed += frames.len() as u64;
                for (off, f) in frames {
                    Self::replay(shard, Loc::Seg(id), off, f);
                }
                shard.seg_lens.insert(id, clean_len as u64);
            }
        }

        // Pass 2: the WAL — newest records, replayed last.
        let wal_path = join_path(root, "wal");
        let wal_len = match vfs.len(&wal_path)? {
            None => 0u64,
            Some(_) => {
                let buf = vfs.read(&wal_path)?;
                let (frames, clean_len, err) = frame::scan(&buf);
                if err.is_some() && clean_len < buf.len() {
                    torn_frames += 1;
                    truncated_bytes += (buf.len() - clean_len) as u64;
                    vfs.truncate(&wal_path, clean_len as u64)?;
                    vfs.sync(&wal_path)?;
                }
                frames_replayed += frames.len() as u64;
                for (off, f) in frames {
                    let shard = &mut shards[shard_of(&f.key)];
                    Self::replay(shard, Loc::Wal, off, f);
                }
                clean_len as u64
            }
        };

        // Pass 3: running counters from the rebuilt indexes.
        for shard in shards.iter_mut() {
            for e in shard.index.values() {
                shard.bytes += e.emit_len as u64;
                shard.revisions += e.revisions as u64;
                if matches!(e.loc, Loc::Seg(_)) {
                    shard.live_seg_bytes += e.len as u64;
                }
            }
        }

        aide_obs::counter("store.recovery", 1);
        aide_obs::counter("store.recovery.frames", frames_replayed);
        aide_obs::counter("store.recovery.torn_frames", torn_frames);
        aide_obs::counter("store.recovery.truncated_bytes", truncated_bytes);

        Ok(DiskRepository {
            wal: Wal::new(vfs.clone(), wal_path, wal_len),
            vfs,
            root: root.to_string(),
            opts,
            shards: shards.into_iter().map(Mutex::new).collect(),
            maint: Mutex::new(MaintState {
                pending: false,
                attached: false,
                shutdown: false,
            }),
            maint_cv: Condvar::new(),
        })
    }

    /// Opens a repository on the real filesystem at `dir` with default
    /// options.
    pub fn open_dir(dir: impl AsRef<std::path::Path>) -> Result<DiskRepository, RepoError> {
        let vfs = Arc::new(crate::vfs::RealVfs::new(dir));
        DiskRepository::open(vfs, "", StoreOptions::default())
    }

    /// Applies one recovered frame to a shard index (replay semantics:
    /// later frames win, tombstones erase).
    fn replay(shard: &mut Shard, loc: Loc, off: u64, f: Frame) {
        match f.op {
            frame::OP_STORE => {
                let (revisions, emit_len) = match frame::split_payload(&f.data) {
                    Ok((r, text)) => (r, text.len() as u32),
                    // CRC-valid but malformed payload: index it so the
                    // key surfaces as Corrupt at load, not silently gone.
                    Err(_) => (0, 0),
                };
                let prior_seg = match loc {
                    Loc::Seg(_) => false,
                    Loc::Wal => {
                        shard.wal_tombstones.remove(&f.key)
                            || shard
                                .index
                                .get(&f.key)
                                .map(|e| matches!(e.loc, Loc::Seg(_)) || e.prior_seg)
                                .unwrap_or(false)
                    }
                };
                shard.index.insert(
                    f.key,
                    Entry {
                        loc,
                        off,
                        len: f.len as u32,
                        emit_len,
                        revisions,
                        prior_seg,
                    },
                );
            }
            _ => {
                if let Some(old) = shard.index.remove(&f.key) {
                    if matches!(loc, Loc::Wal) && (matches!(old.loc, Loc::Seg(_)) || old.prior_seg)
                    {
                        shard.wal_tombstones.insert(f.key);
                    }
                }
            }
        }
    }

    fn shard_dir(&self, si: usize) -> String {
        join_path(&self.root, &format!("shard_{si:02}"))
    }

    fn seg_path(&self, si: usize, id: u32) -> String {
        join_path(&self.shard_dir(si), &format!("seg_{id:08}"))
    }

    fn wal_path(&self) -> String {
        join_path(&self.root, "wal")
    }

    /// Acquires shard `si`'s index lock under the `store` lock class
    /// (rank 25: inside url/user named locks, outside structure guards).
    fn lock_shard(&self, si: usize) -> (lockrank::Held, MutexGuard<'_, Shard>) {
        let held = lockrank::acquire("store", &format!("store:shard:{si}"));
        (held, self.shards[si].lock())
    }

    fn cache_insert(opts: &StoreOptions, sh: &mut Shard, key: &str, archive: Arc<Archive>) {
        if opts.cache_entries == 0 {
            return;
        }
        sh.cache_tick += 1;
        let tick = sh.cache_tick;
        sh.cache
            .insert(key.to_string(), CacheSlot { tick, archive });
        while sh.cache.len() > opts.cache_entries {
            let oldest = sh
                .cache
                .iter()
                .min_by_key(|(_, slot)| slot.tick)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => {
                    sh.cache.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Reads, verifies and parses one record. Failures distinguish VFS
    /// errors (possibly-stale locations) from true corruption.
    fn read_archive(&self, path: &str, off: u64, len: u32, key: &str) -> Result<Archive, ReadFail> {
        let buf = read_exact(self.vfs.as_ref(), path, off, len as usize).map_err(ReadFail::Vfs)?;
        let f = frame::decode(&buf)
            .map_err(|e| ReadFail::Corrupt(format!("frame at {path}+{off}: {e}")))?;
        if f.op != frame::OP_STORE || f.key != key {
            return Err(ReadFail::Corrupt(format!(
                "frame at {path}+{off} is not a store record for this key"
            )));
        }
        let (_revs, text) = frame::split_payload(&f.data)
            .map_err(|e| ReadFail::Corrupt(format!("payload at {path}+{off}: {e}")))?;
        parse(text).map_err(|e| ReadFail::Corrupt(format!("archive text: {e}")))
    }

    /// Relocates every WAL-resident record into fresh per-shard segment
    /// files, then truncates the WAL. Safe at any crash point: segments
    /// are synced before the truncate, and replay order (segments, then
    /// WAL, later-file-wins) makes the duplicated window idempotent.
    pub fn checkpoint(&self) -> Result<(), RepoError> {
        let pause = self.wal.pause_commits();
        if self.wal.is_empty() {
            return Ok(());
        }
        let mut moved_bytes = 0u64;
        let wal_path = self.wal_path();
        for si in 0..STORE_SHARDS {
            let (_held, mut sh) = self.lock_shard(si);
            let wal_entries: Vec<(String, u64, u32)> = sh
                .index
                .iter()
                .filter(|(_, e)| matches!(e.loc, Loc::Wal))
                .map(|(k, e)| (k.clone(), e.off, e.len))
                .collect();
            if wal_entries.is_empty() && sh.wal_tombstones.is_empty() {
                continue;
            }
            let seg_id = sh.next_seg;
            let seg_path = self.seg_path(si, seg_id);
            let mut out: Vec<u8> = Vec::new();
            let mut relocated: Vec<(String, u64, u32)> = Vec::new();
            for (key, off, len) in wal_entries {
                let bytes = read_exact(self.vfs.as_ref(), &wal_path, off, len as usize)?;
                relocated.push((key, out.len() as u64, len));
                out.extend_from_slice(&bytes);
            }
            for key in sh.wal_tombstones.iter() {
                out.extend_from_slice(&frame::encode(frame::OP_REMOVE, key, &[]));
            }
            self.vfs.append(&seg_path, &out)?;
            // aide-lint: allow(blocking-while-locked): checkpoint must
            // sync the new segment before repointing index entries at
            // it, and the repoint must be atomic under the shard lock
            self.vfs.sync(&seg_path)?;
            sh.next_seg += 1;
            sh.seg_lens.insert(seg_id, out.len() as u64);
            moved_bytes += out.len() as u64;
            for (key, off, len) in relocated {
                if let Some(e) = sh.index.get_mut(&key) {
                    e.loc = Loc::Seg(seg_id);
                    e.off = off;
                    e.prior_seg = false;
                    sh.live_seg_bytes += len as u64;
                }
            }
            sh.wal_tombstones.clear();
            sh.version += 1;
        }
        self.wal.reset(&pause)?;
        aide_obs::counter("store.checkpoint", 1);
        aide_obs::counter("store.checkpoint.bytes_moved", moved_bytes);
        Ok(())
    }

    fn needs_compaction(opts: &StoreOptions, sh: &Shard) -> bool {
        if sh.seg_lens.len() > opts.max_segments {
            return true;
        }
        let total: u64 = sh.seg_lens.values().sum();
        let dead = total.saturating_sub(sh.live_seg_bytes);
        dead >= opts.compact_min_dead_bytes && dead * 2 >= total
    }

    /// Rewrites shard `si`'s live segment records into one fresh segment
    /// and deletes the old segments oldest-first (the tombstone-safety
    /// order — see module docs).
    pub fn compact_shard(&self, si: usize) -> Result<(), RepoError> {
        let (_held, mut sh) = self.lock_shard(si);
        let old_ids: Vec<u32> = sh.seg_lens.keys().copied().collect();
        if old_ids.is_empty() {
            return Ok(());
        }
        let old_total: u64 = sh.seg_lens.values().sum();
        let live: Vec<(String, u32, u64, u32)> = sh
            .index
            .iter()
            .filter_map(|(k, e)| match e.loc {
                Loc::Seg(id) => Some((k.clone(), id, e.off, e.len)),
                Loc::Wal => None,
            })
            .collect();
        let new_id = sh.next_seg;
        sh.next_seg += 1;
        let mut out: Vec<u8> = Vec::new();
        let mut relocated: Vec<(String, u64)> = Vec::new();
        for (key, seg, off, len) in &live {
            let bytes = read_exact(
                self.vfs.as_ref(),
                &self.seg_path(si, *seg),
                *off,
                *len as usize,
            )?;
            relocated.push((key.clone(), out.len() as u64));
            out.extend_from_slice(&bytes);
        }
        if !out.is_empty() {
            let new_path = self.seg_path(si, new_id);
            self.vfs.append(&new_path, &out)?;
            // aide-lint: allow(blocking-while-locked): compaction must
            // sync the fresh segment before deleting the ones it
            // replaces, and holds the shard lock so readers never see a
            // half-moved index
            self.vfs.sync(&new_path)?;
        }
        sh.seg_lens.clear();
        if !out.is_empty() {
            sh.seg_lens.insert(new_id, out.len() as u64);
        }
        sh.live_seg_bytes = out.len() as u64;
        for (key, off) in relocated {
            if let Some(e) = sh.index.get_mut(&key) {
                e.loc = Loc::Seg(new_id);
                e.off = off;
            }
        }
        sh.version += 1;
        // Oldest-first deletion: if we crash partway, every surviving
        // record's tombstone (always in a later file) also survives.
        for id in old_ids {
            self.vfs.remove(&self.seg_path(si, id))?;
        }
        // With the old segments gone, pending tombstones have nothing
        // left to mask.
        sh.wal_tombstones.clear();
        for e in sh.index.values_mut() {
            e.prior_seg = false;
        }
        aide_obs::counter("store.compaction", 1);
        aide_obs::counter(
            "store.compaction.reclaimed_bytes",
            old_total.saturating_sub(out.len() as u64),
        );
        Ok(())
    }

    /// Runs any due maintenance: a checkpoint if the WAL is over its
    /// threshold, then compaction of any shard over its dead-byte or
    /// segment-count threshold. Called inline after writes when no
    /// background compactor is attached, or by the compactor thread.
    pub fn maintenance(&self) -> Result<(), RepoError> {
        if self.wal.len() >= self.opts.checkpoint_wal_bytes {
            self.checkpoint()?;
        }
        for si in 0..STORE_SHARDS {
            let due = {
                let (_held, sh) = self.lock_shard(si);
                Self::needs_compaction(&self.opts, &sh)
            };
            if due {
                self.compact_shard(si)?;
            }
        }
        Ok(())
    }

    /// Post-write trigger: hand maintenance to the background compactor
    /// if one is attached, else run it inline.
    fn after_write(&self, si: usize) -> Result<(), RepoError> {
        let need_ckpt = self.wal.len() >= self.opts.checkpoint_wal_bytes;
        let need_compact = {
            let (_held, sh) = self.lock_shard(si);
            Self::needs_compaction(&self.opts, &sh)
        };
        if !need_ckpt && !need_compact {
            return Ok(());
        }
        {
            let mut m = self.maint.lock();
            if m.attached {
                m.pending = true;
                drop(m);
                self.maint_cv.notify_all();
                return Ok(());
            }
        }
        if need_ckpt {
            self.checkpoint()?;
        }
        if need_compact {
            self.compact_shard(si)?;
        }
        Ok(())
    }

    /// Total segment files across all shards (observability for tests
    /// and benches).
    pub fn segment_count(&self) -> usize {
        (0..STORE_SHARDS)
            .map(|si| {
                let (_held, sh) = self.lock_shard(si);
                sh.seg_lens.len()
            })
            .sum()
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }
}

impl Repository for DiskRepository {
    fn load(&self, key: &str) -> Result<Option<Arc<Archive>>, RepoError> {
        let si = shard_of(key);
        let mut last_fail: Option<ReadFail> = None;
        for _attempt in 0..4 {
            let (ver, loc, off, len) = {
                let (_held, mut sh) = self.lock_shard(si);
                let e = match sh.index.get(key) {
                    None => return Ok(None),
                    Some(e) => e.clone(),
                };
                sh.cache_tick += 1;
                let tick = sh.cache_tick;
                if let Some(slot) = sh.cache.get_mut(key) {
                    slot.tick = tick;
                    return Ok(Some(slot.archive.clone()));
                }
                (sh.version, e.loc, e.off, e.len)
            };
            let path = match loc {
                Loc::Wal => self.wal_path(),
                Loc::Seg(id) => self.seg_path(si, id),
            };
            match self.read_archive(&path, off, len, key) {
                Ok(archive) => {
                    let handle = Arc::new(archive);
                    let (_held, mut sh) = self.lock_shard(si);
                    if sh.version == ver && sh.index.contains_key(key) {
                        Self::cache_insert(&self.opts, &mut sh, key, handle.clone());
                    }
                    return Ok(Some(handle));
                }
                Err(fail) => {
                    // A checkpoint or compaction may have moved the
                    // record mid-read; retry against the fresh location.
                    let moved = {
                        let (_held, sh) = self.lock_shard(si);
                        sh.version != ver
                    };
                    if moved {
                        last_fail = Some(fail);
                        continue;
                    }
                    return match fail {
                        ReadFail::Vfs(e) => Err(RepoError::Storage(e)),
                        ReadFail::Corrupt(detail) => {
                            aide_obs::counter("store.load.corrupt", 1);
                            Err(RepoError::corrupt(key, detail))
                        }
                    };
                }
            }
        }
        let detail = match last_fail {
            Some(ReadFail::Vfs(e)) => format!("record kept moving; last error: {e}"),
            Some(ReadFail::Corrupt(d)) => format!("record kept moving; last error: {d}"),
            None => "record kept moving".to_string(),
        };
        Err(RepoError::corrupt(key, detail))
    }

    fn store(&self, key: &str, archive: &Archive) -> Result<(), RepoError> {
        let emitted = emit(archive);
        let revisions = archive.len() as u32;
        let payload = frame::store_payload(revisions, &emitted);
        let buf = frame::encode(frame::OP_STORE, key, &payload);
        let flen = buf.len() as u32;
        let si = shard_of(key);
        {
            let permit = self.wal.begin_commit();
            let off = self.wal.commit(&permit, &buf)?;
            let (_held, mut sh) = self.lock_shard(si);
            let mut prior_seg = sh.wal_tombstones.remove(key);
            if let Some(old) = sh.index.get(key).cloned() {
                sh.bytes -= old.emit_len as u64;
                sh.revisions -= old.revisions as u64;
                match old.loc {
                    Loc::Seg(_) => {
                        sh.live_seg_bytes -= old.len as u64;
                        prior_seg = true;
                    }
                    Loc::Wal => prior_seg = prior_seg || old.prior_seg,
                }
            }
            sh.bytes += emitted.len() as u64;
            sh.revisions += revisions as u64;
            sh.index.insert(
                key.to_string(),
                Entry {
                    loc: Loc::Wal,
                    off,
                    len: flen,
                    emit_len: emitted.len() as u32,
                    revisions,
                    prior_seg,
                },
            );
            Self::cache_insert(&self.opts, &mut sh, key, Arc::new(archive.clone()));
        }
        aide_obs::counter("store.append", 1);
        aide_obs::counter("store.append.bytes", flen as u64);
        self.after_write(si)
    }

    fn remove(&self, key: &str) -> Result<bool, RepoError> {
        let si = shard_of(key);
        {
            let (_held, sh) = self.lock_shard(si);
            if !sh.index.contains_key(key) {
                return Ok(false);
            }
        }
        let buf = frame::encode(frame::OP_REMOVE, key, &[]);
        {
            let permit = self.wal.begin_commit();
            self.wal.commit(&permit, &buf)?;
            let (_held, mut sh) = self.lock_shard(si);
            if let Some(old) = sh.index.remove(key) {
                sh.bytes -= old.emit_len as u64;
                sh.revisions -= old.revisions as u64;
                let had_seg = matches!(old.loc, Loc::Seg(_)) || old.prior_seg;
                if let Loc::Seg(_) = old.loc {
                    sh.live_seg_bytes -= old.len as u64;
                }
                if had_seg {
                    sh.wal_tombstones.insert(key.to_string());
                }
            }
            sh.cache.remove(key);
        }
        aide_obs::counter("store.remove", 1);
        self.after_write(si)?;
        Ok(true)
    }

    fn keys(&self) -> Result<Vec<String>, RepoError> {
        let mut all: Vec<String> = Vec::new();
        for si in 0..STORE_SHARDS {
            let (_held, sh) = self.lock_shard(si);
            all.extend(sh.index.keys().cloned());
        }
        all.sort();
        Ok(all)
    }

    fn stats(&self) -> Result<StorageStats, RepoError> {
        let mut s = StorageStats::default();
        for si in 0..STORE_SHARDS {
            let (_held, sh) = self.lock_shard(si);
            s.archives += sh.index.len();
            s.revisions += sh.revisions as usize;
            s.bytes += sh.bytes as usize;
        }
        Ok(s)
    }

    fn sizes(&self) -> Result<Vec<(String, usize)>, RepoError> {
        let mut v: Vec<(String, usize)> = Vec::new();
        for si in 0..STORE_SHARDS {
            let (_held, sh) = self.lock_shard(si);
            v.extend(
                sh.index
                    .iter()
                    .map(|(k, e)| (k.clone(), e.emit_len as usize)),
            );
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Ok(v)
    }
}

impl std::fmt::Debug for DiskRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskRepository")
            .field("root", &self.root)
            .field("wal_len", &self.wal.len())
            .finish()
    }
}

/// Owns the background compaction thread; dropping it shuts the thread
/// down (signaled via condvar — no wall-clock polling, so simulations
/// stay deterministic in their observables).
pub struct CompactorHandle {
    repo: Arc<DiskRepository>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Spawns the background maintenance thread for `repo`: write paths
/// signal it instead of checkpointing/compacting inline.
pub fn spawn_compactor(repo: &Arc<DiskRepository>) -> CompactorHandle {
    {
        let mut m = repo.maint.lock();
        m.attached = true;
        m.shutdown = false;
    }
    let r = Arc::clone(repo);
    let thread = std::thread::spawn(move || loop {
        {
            let guard = r.maint.lock();
            // aide-lint: allow(blocking-while-locked): the condvar wait
            // atomically releases the coordination mutex it parks under
            let mut guard = r.maint_cv.wait_while(guard, |m| !m.pending && !m.shutdown);
            if guard.shutdown {
                break;
            }
            guard.pending = false;
        }
        if r.maintenance().is_err() {
            aide_obs::counter("store.maintenance.errors", 1);
        }
    });
    CompactorHandle {
        repo: Arc::clone(repo),
        thread: Some(thread),
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        {
            let mut m = self.repo.maint.lock();
            m.shutdown = true;
            m.attached = false;
        }
        self.maint_notify();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl CompactorHandle {
    fn maint_notify(&self) {
        self.repo.maint_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aide_util::time::Timestamp;
    use aide_util::vfs::MemVfs;

    fn tiny_opts() -> StoreOptions {
        StoreOptions {
            checkpoint_wal_bytes: 512,
            compact_min_dead_bytes: 256,
            max_segments: 3,
            cache_entries: 4,
        }
    }

    fn archive(text: &str) -> Archive {
        Archive::create("desc", text, "me", "init", Timestamp(100))
    }

    fn open_mem(vfs: &Arc<MemVfs>) -> DiskRepository {
        DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "store", tiny_opts()).unwrap()
    }

    #[test]
    fn store_load_remove_roundtrip() {
        let vfs = MemVfs::shared();
        let r = open_mem(&vfs);
        assert!(r.load("http://x/").unwrap().is_none());
        r.store("http://x/", &archive("body\n")).unwrap();
        assert_eq!(r.load("http://x/").unwrap().unwrap().head_text(), "body\n");
        assert!(r.remove("http://x/").unwrap());
        assert!(!r.remove("http://x/").unwrap());
        assert!(r.load("http://x/").unwrap().is_none());
    }

    #[test]
    fn reopen_recovers_everything() {
        let vfs = MemVfs::shared();
        {
            let r = open_mem(&vfs);
            for i in 0..30 {
                let mut a = archive(&format!("page {i}\nbody line\n"));
                a.checkin(&format!("page {i}\nedited\n"), "me", "edit", Timestamp(200))
                    .unwrap();
                r.store(&format!("http://h{}/p{i}", i % 5), &a).unwrap();
            }
            r.remove("http://h0/p0").unwrap();
        }
        let r2 = open_mem(&vfs);
        let stats = r2.stats().unwrap();
        assert_eq!(stats.archives, 29);
        assert_eq!(stats.revisions, 58);
        assert!(r2.load("http://h0/p0").unwrap().is_none());
        let a = r2.load("http://h1/p1").unwrap().unwrap();
        assert_eq!(a.head_text(), "page 1\nedited\n");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn checkpoint_moves_wal_to_segments_and_preserves_reads() {
        let vfs = MemVfs::shared();
        let r = open_mem(&vfs);
        for i in 0..10 {
            r.store(&format!("k{i}"), &archive(&format!("text {i}\n")))
                .unwrap();
        }
        // Tiny thresholds: the WAL has certainly been checkpointed at
        // least once along the way.
        assert!(r.segment_count() > 0);
        for i in 0..10 {
            let a = r.load(&format!("k{i}")).unwrap().unwrap();
            assert_eq!(a.head_text(), format!("text {i}\n"));
        }
        // Force one more and verify the WAL empties.
        r.checkpoint().unwrap();
        assert_eq!(r.wal_len(), 0);
        assert_eq!(r.stats().unwrap().archives, 10);
    }

    #[test]
    fn compaction_reclaims_dead_bytes_and_keeps_state() {
        let vfs = MemVfs::shared();
        let r = open_mem(&vfs);
        // Overwrite the same keys repeatedly: most segment bytes die.
        for round in 0..12 {
            for i in 0..4 {
                r.store(
                    &format!("k{i}"),
                    &archive(&format!("round {round} body {i}\npadding padding\n")),
                )
                .unwrap();
            }
        }
        r.checkpoint().unwrap();
        for si in 0..STORE_SHARDS {
            r.compact_shard(si).unwrap();
        }
        // After compaction every shard holds at most one segment.
        assert!(r.segment_count() <= STORE_SHARDS);
        for i in 0..4 {
            let a = r.load(&format!("k{i}")).unwrap().unwrap();
            assert_eq!(
                a.head_text(),
                format!("round 11 body {i}\npadding padding\n")
            );
        }
        // And a reopen agrees.
        let r2 = open_mem(&vfs);
        assert_eq!(r2.stats().unwrap(), r.stats().unwrap());
    }

    #[test]
    fn removed_keys_stay_removed_across_checkpoint_compact_reopen() {
        let vfs = MemVfs::shared();
        let r = open_mem(&vfs);
        r.store("victim", &archive("doomed\n")).unwrap();
        r.checkpoint().unwrap(); // record now in a segment
        r.remove("victim").unwrap(); // tombstone pending in WAL
        r.checkpoint().unwrap(); // tombstone now in a segment
        let r2 = open_mem(&vfs);
        assert!(r2.load("victim").unwrap().is_none(), "tombstone replayed");
        for si in 0..STORE_SHARDS {
            r2.compact_shard(si).unwrap();
        }
        let r3 = open_mem(&vfs);
        assert!(
            r3.load("victim").unwrap().is_none(),
            "compaction kept removal"
        );
        assert_eq!(r3.stats().unwrap().archives, 0);
    }

    #[test]
    fn stats_match_mem_repository_accounting() {
        use aide_rcs::repo::MemRepository;
        let vfs = MemVfs::shared();
        let disk = open_mem(&vfs);
        let mem = MemRepository::new();
        for i in 0..12 {
            let mut a = archive(&format!("content {i}\nwith lines\n"));
            if i % 2 == 0 {
                a.checkin(
                    &format!("content {i}\nrevised\n"),
                    "me",
                    "r",
                    Timestamp(300),
                )
                .unwrap();
            }
            disk.store(&format!("http://h/p{i}"), &a).unwrap();
            mem.store(&format!("http://h/p{i}"), &a).unwrap();
        }
        disk.remove("http://h/p3").unwrap();
        mem.remove("http://h/p3").unwrap();
        assert_eq!(disk.stats().unwrap(), mem.stats().unwrap());
        assert_eq!(disk.sizes().unwrap(), mem.sizes().unwrap());
        assert_eq!(disk.keys().unwrap(), mem.keys().unwrap());
    }

    #[test]
    fn background_compactor_keeps_up() {
        let vfs = MemVfs::shared();
        let r = Arc::new(open_mem(&vfs));
        let handle = spawn_compactor(&r);
        for round in 0..20 {
            for i in 0..6 {
                r.store(
                    &format!("k{i}"),
                    &archive(&format!("r{round} i{i}\nbody\n")),
                )
                .unwrap();
            }
        }
        drop(handle); // joins the thread; all signaled work done or dropped
                      // Whatever maintenance ran, the data is intact.
        for i in 0..6 {
            assert_eq!(
                r.load(&format!("k{i}")).unwrap().unwrap().head_text(),
                format!("r19 i{i}\nbody\n")
            );
        }
        let r2 = open_mem(&vfs);
        assert_eq!(r2.stats().unwrap(), r.stats().unwrap());
    }

    #[test]
    fn corrupt_segment_byte_surfaces_as_corrupt_error() {
        let vfs = MemVfs::shared();
        // Cache disabled so the load below actually reads the damaged
        // bytes instead of serving the archive stored moments ago.
        let opts = StoreOptions {
            cache_entries: 0,
            ..tiny_opts()
        };
        let r = DiskRepository::open(vfs.clone() as Arc<dyn Vfs>, "store", opts).unwrap();
        r.store("k", &archive("body\n")).unwrap();
        r.checkpoint().unwrap();
        // Flip one byte inside the (only) segment record's payload.
        let mut seg_file = None;
        for si in 0..STORE_SHARDS {
            for name in vfs.list(&format!("store/shard_{si:02}")).unwrap() {
                seg_file = Some(format!("store/shard_{si:02}/{name}"));
            }
        }
        let path = seg_file.unwrap();
        let mut bytes = vfs.read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        vfs.remove(&path).unwrap();
        vfs.append(&path, &bytes).unwrap();
        match r.load("k") {
            Err(RepoError::Corrupt { key, .. }) => assert_eq!(key, "k"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The store itself keeps serving other keys.
        r.store("other", &archive("fine\n")).unwrap();
        assert!(r.load("other").unwrap().is_some());
    }
}
