//! The checksummed record framing shared by the WAL and segment files.
//!
//! Every durable record — a stored archive or a tombstone — is one
//! frame:
//!
//! ```text
//! +------+----+---------+----------+-----------+-----------+---------+
//! | 0xA5 | op | key_len | data_len | key bytes | data ...  |  crc64  |
//! | 1 B  | 1B | u32 LE  | u32 LE   | key_len B | data_len B| u64 LE  |
//! +------+----+---------+----------+-----------+-----------+---------+
//! ```
//!
//! For a store record (`op = 1`) the data is a 4-byte little-endian
//! revision count followed by the archive's `,v` serialization (the
//! revision count lets recovery account stats without parsing every
//! archive body). A tombstone (`op = 2`) carries no data. The trailing
//! checksum is FNV-1a over everything between the magic byte and the
//! checksum itself, so a torn append — the only in-file damage a
//! crashed append-only writer can produce — is detected at the exact
//! frame where the tear begins, and recovery truncates from there
//! (the prefix-consistency invariant, DESIGN.md §4i).

use aide_util::checksum::fnv1a64;

/// Frame magic byte: catches scans that drift off frame boundaries.
pub const MAGIC: u8 = 0xA5;
/// Op code: the frame's data is an archive record.
pub const OP_STORE: u8 = 1;
/// Op code: the key was removed; the frame masks any older record.
pub const OP_REMOVE: u8 = 2;

/// Fixed bytes before the key: magic, op, key_len, data_len.
pub const HEADER_LEN: usize = 1 + 1 + 4 + 4;
/// Fixed bytes after the data: the FNV-1a checksum.
pub const TRAILER_LEN: usize = 8;

/// Sanity cap on key length: no URL is this long; a larger value in a
/// header means we are reading garbage.
const MAX_KEY_LEN: u32 = 1 << 20;
/// Sanity cap on record payloads (256 MiB per archive).
const MAX_DATA_LEN: u32 = 1 << 28;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// [`OP_STORE`] or [`OP_REMOVE`].
    pub op: u8,
    /// The repository key.
    pub key: String,
    /// Payload (revision count + `,v` text for stores, empty for
    /// tombstones).
    pub data: Vec<u8>,
    /// Total encoded length of this frame in bytes.
    pub len: usize,
}

/// Why a frame failed to decode. Any variant at offset `o` of a file
/// means bytes `o..` are a torn tail (or corruption) — nothing beyond
/// the failure point can be trusted, because lengths come from the
/// frame itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a complete frame.
    Truncated,
    /// First byte is not [`MAGIC`].
    BadMagic,
    /// Unknown op code.
    BadOp,
    /// A length field exceeds its sanity cap.
    BadLength,
    /// The checksum does not match the bytes.
    BadCrc,
    /// The key bytes are not UTF-8.
    BadKey,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::Truncated => "truncated frame",
            FrameError::BadMagic => "bad frame magic",
            FrameError::BadOp => "bad frame op",
            FrameError::BadLength => "frame length exceeds sanity cap",
            FrameError::BadCrc => "frame checksum mismatch",
            FrameError::BadKey => "frame key is not UTF-8",
        };
        f.write_str(s)
    }
}

/// Encodes one frame.
pub fn encode(op: u8, key: &str, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + key.len() + data.len() + TRAILER_LEN);
    out.push(MAGIC);
    out.push(op);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(data);
    let crc = fnv1a64(&out[1..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Total encoded size of a frame for `key` with `data_len` payload bytes.
pub fn encoded_len(key: &str, data_len: usize) -> usize {
    HEADER_LEN + key.len() + data_len + TRAILER_LEN
}

fn read_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

/// Decodes the frame starting at the beginning of `buf`.
pub fn decode(buf: &[u8]) -> Result<Frame, FrameError> {
    if buf.len() < HEADER_LEN + TRAILER_LEN {
        return Err(FrameError::Truncated);
    }
    if buf[0] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let op = buf[1];
    if op != OP_STORE && op != OP_REMOVE {
        return Err(FrameError::BadOp);
    }
    let key_len = read_u32(buf, 2);
    let data_len = read_u32(buf, 6);
    if key_len > MAX_KEY_LEN || data_len > MAX_DATA_LEN {
        return Err(FrameError::BadLength);
    }
    let total = HEADER_LEN + key_len as usize + data_len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let crc_off = total - TRAILER_LEN;
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&buf[crc_off..total]);
    if fnv1a64(&buf[1..crc_off]) != u64::from_le_bytes(crc_bytes) {
        return Err(FrameError::BadCrc);
    }
    let key = std::str::from_utf8(&buf[HEADER_LEN..HEADER_LEN + key_len as usize])
        .map_err(|_| FrameError::BadKey)?
        .to_string();
    let data = buf[HEADER_LEN + key_len as usize..crc_off].to_vec();
    Ok(Frame {
        op,
        key,
        data,
        len: total,
    })
}

/// Iterates the frames of a whole file image, yielding each frame with
/// its byte offset; stops at the first undecodable byte and reports the
/// clean prefix length (`== buf.len()` when the file is whole).
pub fn scan(buf: &[u8]) -> (Vec<(u64, Frame)>, usize, Option<FrameError>) {
    let mut frames = Vec::new();
    let mut off = 0usize;
    while off < buf.len() {
        match decode(&buf[off..]) {
            Ok(f) => {
                let len = f.len;
                frames.push((off as u64, f));
                off += len;
            }
            Err(e) => return (frames, off, Some(e)),
        }
    }
    (frames, off, None)
}

/// Builds the payload of a store frame: revision count + `,v` text.
pub fn store_payload(revisions: u32, emitted: &str) -> Vec<u8> {
    let mut data = Vec::with_capacity(4 + emitted.len());
    data.extend_from_slice(&revisions.to_le_bytes());
    data.extend_from_slice(emitted.as_bytes());
    data
}

/// Splits a store frame's payload back into (revisions, `,v` text).
pub fn split_payload(data: &[u8]) -> Result<(u32, &str), FrameError> {
    if data.len() < 4 {
        return Err(FrameError::Truncated);
    }
    let revisions = read_u32(data, 0);
    let text = std::str::from_utf8(&data[4..]).map_err(|_| FrameError::BadKey)?;
    Ok((revisions, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_store_and_tombstone() {
        let payload = store_payload(3, "head 1.3\ntext\n");
        let buf = encode(OP_STORE, "http://h/p", &payload);
        let f = decode(&buf).unwrap();
        assert_eq!(f.op, OP_STORE);
        assert_eq!(f.key, "http://h/p");
        assert_eq!(f.len, buf.len());
        assert_eq!(f.len, encoded_len("http://h/p", payload.len()));
        let (revs, text) = split_payload(&f.data).unwrap();
        assert_eq!(revs, 3);
        assert_eq!(text, "head 1.3\ntext\n");

        let t = decode(&encode(OP_REMOVE, "k", &[])).unwrap();
        assert_eq!(t.op, OP_REMOVE);
        assert!(t.data.is_empty());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let buf = encode(OP_STORE, "key", &store_payload(1, "body\n"));
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                decode(&bad).is_err(),
                "flip at byte {i} must not decode cleanly"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let buf = encode(OP_STORE, "key", &store_payload(1, "body\n"));
        for keep in 0..buf.len() {
            assert!(decode(&buf[..keep]).is_err(), "prefix {keep} decoded");
        }
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut buf = encode(OP_STORE, "a", &store_payload(1, "x\n"));
        let first = buf.len();
        buf.extend_from_slice(&encode(OP_REMOVE, "b", &[]));
        let whole = buf.len();
        let (frames, clean, err) = scan(&buf);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].0, first as u64);
        assert_eq!(clean, whole);
        assert!(err.is_none());

        // Tear the second frame: scan keeps the first, reports the tear.
        let torn = &buf[..whole - 3];
        let (frames, clean, err) = scan(torn);
        assert_eq!(frames.len(), 1);
        assert_eq!(clean, first);
        assert_eq!(err, Some(FrameError::Truncated));
    }

    #[test]
    fn insane_lengths_are_rejected_not_allocated() {
        let mut buf = encode(OP_STORE, "k", &store_payload(1, "x\n"));
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&buf), Err(FrameError::BadLength));
    }
}
